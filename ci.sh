#!/usr/bin/env bash
# Offline CI gate for the hlts workspace. No network access is assumed
# (or possible): every dependency is an in-tree path crate, so the
# whole gate runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> fault-injection suites (test-faults feature)"
cargo test -q -p hlts-core --features test-faults --offline
cargo test -q -p hlts-dse --features test-faults --offline
cargo test -q -p hlts-jobs --features test-faults --offline
cargo test -q -p hlts-tcov --features test-faults --offline

echo "==> conformance harness meta-test (broken engine must be caught)"
cargo test -q -p hlts-gen --features test-faults --offline

echo "==> conformance smoke: 32 generated graphs x 5 engine pairs (release)"
cargo test -q --release --offline --test conformance -- --ignored conformance_ci_smoke

echo "==> conformance full sweep: 128 generated graphs (release)"
cargo test -q --release --offline --test conformance -- --ignored conformance_full_sweep

echo "==> tcov conformance matrix: 4 paper benchmarks + 32 generated graphs (release)"
cargo test -q --release --offline --test tcov_conformance -- --ignored

echo "==> bench smoke: testability solvers + speedup gate"
cargo bench -q --bench testability --offline

echo "==> bench smoke: merge-loop txn-vs-clone + arena speedup gates"
cargo bench -q --bench merge_loop --offline

echo "==> zero-allocation gate: steady-state trial merges (count-allocs)"
cargo test -q --release --offline --features count-allocs --test zero_alloc

echo "==> bench smoke: dse parallel-explore gate"
cargo bench -q --bench dse --offline

echo "==> bench smoke: warm-start replay gate (bit-identity + nonzero replay + speedup)"
cargo bench -q --bench warmstart --offline

echo "==> serve smoke: 3 jobs (one cancelled) over stdin, clean shutdown"
# One worker: job 1 (a multi-second ewf sweep) is claimed first, so
# jobs 2 and 3 are deterministically still queued when the cancel for
# job 2 arrives (-> dequeued). After a one-second pause — enough for
# the worker to be mid-sweep, far from done — shutdown lets the
# running sweep finish and cancels the still-queued job 3: the
# graceful-drain contract, asserted line by line below.
SERVE_OUT=$(
  {
    printf '%s\n' \
      '{"op":"submit","id":"s1","job":{"kind":"explore","sources":["bench:ewf"],"ks":[1,2,3,4,5,6],"weights":[[2,1],[10,1],[1,10]]}}' \
      '{"op":"submit","id":"s2","job":{"kind":"run","source":"bench:ex"}}' \
      '{"op":"submit","id":"s3","job":{"kind":"gen","seed":7}}' \
      '{"op":"cancel","job":2}' \
      '{"op":"status","id":"health"}'
    sleep 1
    printf '%s\n' '{"op":"shutdown","id":"bye"}'
  } | ./target/release/hlts serve --workers 1 --queue 8
)
for want in \
  '"id": "s1", "job": 1' \
  '"id": "s2", "job": 2' \
  '"id": "s3", "job": 3' \
  '"cancel": "dequeued"' \
  '"id": "health"' \
  '"event": "done", "job": 1' \
  '"event": "cancelled", "job": 2' \
  '"event": "cancelled", "job": 3' \
  '"shutdown": true'
do
  if ! grep -qF "$want" <<<"$SERVE_OUT"; then
    echo "serve smoke: missing '$want' in daemon output:" >&2
    echo "$SERVE_OUT" >&2
    exit 1
  fi
done

echo "==> bench smoke: serve warm-vs-cold request gate"
cargo bench -q --bench serve --offline

echo "==> bench smoke: tcov parallel-grade gate (bit-identity + speedup)"
cargo bench -q --bench tcov --offline

echo "==> explore --atpg smoke: graded front, journaled coverage, resume identity"
TCOV_JOURNAL=$(mktemp)
GRADED_1=$(./target/release/hlts explore bench:ex --k 1,2 --bits 4 --atpg \
  --fault-sample 300 --journal "$TCOV_JOURNAL" --quiet)
if ! grep -qF ' cov=' "$TCOV_JOURNAL"; then
  echo "explore --atpg smoke: journal has no coverage pair:" >&2
  cat "$TCOV_JOURNAL" >&2
  exit 1
fi
GRADED_2=$(./target/release/hlts explore bench:ex --k 1,2 --bits 4 --atpg \
  --fault-sample 300 --resume "$TCOV_JOURNAL" --quiet)
if ! grep -qF ' (0 computed' <<<"$GRADED_2"; then
  echo "explore --atpg smoke: resume recomputed journaled points: $GRADED_2" >&2
  exit 1
fi
if [ "${GRADED_1##*front: }" != "${GRADED_2##*front: }" ]; then
  echo "explore --atpg smoke: resumed front diverged:" >&2
  echo "  fresh:   $GRADED_1" >&2
  echo "  resumed: $GRADED_2" >&2
  exit 1
fi
GRADED_JSON=$(./target/release/hlts explore bench:ex --k 1,2 --bits 4 --atpg \
  --fault-sample 300 --resume "$TCOV_JOURNAL" --json)
if ! grep -qF '"coverage":' <<<"$GRADED_JSON"; then
  echo "explore --atpg smoke: JSON front has no coverage objective" >&2
  exit 1
fi
rm -f "$TCOV_JOURNAL"

echo "==> warm-start identity sweep: 4 paper benchmarks + 32 generated graphs, --jobs 1 and 4"
# The acceptance criterion verbatim: --warm-start on reports the same
# front signature as off, at any worker count and on every source —
# paper benchmarks and generated workloads alike.
WARM_DIR=$(mktemp -d)
warm_identity() {
  local source=$1 label=$2
  local cold warm1 warm4
  cold=$(./target/release/hlts explore "$source" --k 2 \
    --weights 2:1,2:1.05,1:10 --quiet --warm-start off)
  warm1=$(./target/release/hlts explore "$source" --k 2 \
    --weights 2:1,2:1.05,1:10 --quiet --warm-start on --jobs 1)
  warm4=$(./target/release/hlts explore "$source" --k 2 \
    --weights 2:1,2:1.05,1:10 --quiet --warm-start on --jobs 4)
  if [ "${cold##*front: }" != "${warm1##*front: }" ] \
    || [ "${cold##*front: }" != "${warm4##*front: }" ]; then
    echo "warm-start identity: $label diverged:" >&2
    echo "  cold:         $cold" >&2
    echo "  warm --jobs 1: $warm1" >&2
    echo "  warm --jobs 4: $warm4" >&2
    exit 1
  fi
}
for b in ex dct diffeq tseng; do
  warm_identity "bench:$b" "bench:$b"
done
for seed in $(seq 0 31); do
  ./target/release/hlts gen --seed "$seed" --out "$WARM_DIR/g$seed.dfg"
  warm_identity "$WARM_DIR/g$seed.dfg" "generated seed $seed"
done
rm -rf "$WARM_DIR"

echo "==> OK: build + tests + clippy + bench smoke all green"
