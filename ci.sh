#!/usr/bin/env bash
# Offline CI gate for the hlts workspace. No network access is assumed
# (or possible): every dependency is an in-tree path crate, so the
# whole gate runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> fault-injection suites (test-faults feature)"
cargo test -q -p hlts-core --features test-faults --offline
cargo test -q -p hlts-dse --features test-faults --offline

echo "==> conformance harness meta-test (broken engine must be caught)"
cargo test -q -p hlts-gen --features test-faults --offline

echo "==> conformance smoke: 32 generated graphs x 5 engine pairs (release)"
cargo test -q --release --offline --test conformance -- --ignored conformance_ci_smoke

echo "==> conformance full sweep: 128 generated graphs (release)"
cargo test -q --release --offline --test conformance -- --ignored conformance_full_sweep

echo "==> bench smoke: testability solvers + speedup gate"
cargo bench -q --bench testability --offline

echo "==> bench smoke: merge-loop txn-vs-clone + arena speedup gates"
cargo bench -q --bench merge_loop --offline

echo "==> zero-allocation gate: steady-state trial merges (count-allocs)"
cargo test -q --release --offline --features count-allocs --test zero_alloc

echo "==> bench smoke: dse parallel-explore gate"
cargo bench -q --bench dse --offline

echo "==> OK: build + tests + clippy + bench smoke all green"
