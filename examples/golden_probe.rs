//! Prints the (control steps, modules, registers) triple of the
//! integrated synthesizer under each of the paper's parameter sets, for
//! pinning in `tests/paper_claims.rs`.

use hlts::core::{IntegratedSynthesizer, SynthesisParams};

fn main() {
    for (name, dfg) in [
        ("ex", hlts::benchmarks::ex()),
        ("dct", hlts::benchmarks::dct()),
        ("diffeq", hlts::benchmarks::diffeq()),
    ] {
        for bits in [4u32, 8, 16] {
            let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(bits))
                .run(&dfg)
                .expect("synthesis");
            println!(
                "(\"{name}\", {bits}, {}, {}, {}),",
                r.metrics.execution_time,
                r.allocation.num_modules(),
                r.allocation.num_registers()
            );
        }
    }
}
