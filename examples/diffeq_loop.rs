//! Looping behaviors in the ETPN representation: the Diffeq benchmark's
//! integration loop, its condition-guarded Petri-net control part, the
//! reachability tree behind the ΔE estimate, and the effect of
//! loop-carried register sharing on self-loops and testability.
//!
//! Run with `cargo run --example diffeq_loop`.

use hlts::alloc::Allocation;
use hlts::core::{IntegratedSynthesizer, SynthesisParams};
use hlts::etpn::Etpn;
use hlts::sched::{list_schedule, ListPriority};
use hlts::testability::TestabilityAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = hlts::benchmarks::diffeq();
    println!("loop-carried pairs:");
    for &(src, dst) in dfg.loop_carried() {
        println!(
            "  {} -> {} (next iteration)",
            dfg.value(src).name(),
            dfg.value(dst).name()
        );
    }

    // The default design: one unit per operation, ASAP schedule.
    let schedule = list_schedule(&dfg, &[], ListPriority::CriticalPath)?;
    let allocation = Allocation::one_to_one(&dfg);
    let etpn = Etpn::from_parts(&dfg, &schedule, &allocation)?;
    let reach = etpn.control().reachability();
    println!(
        "\ncontrol part: {} places, {} transitions; reachability graph has {} markings; \
         critical path E = {} steps (one loop iteration)",
        etpn.control().num_places(),
        etpn.control().num_transitions(),
        reach.num_markings(),
        etpn.execution_time()
    );

    // Synthesize: the loop-carried pairs make register sharing between
    // x1/x (etc.) free of copy arcs, and the testability analysis sees
    // the resulting feedback structure.
    let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8)).run(&dfg)?;
    println!("\nsynthesized design:\n{}", r.render());
    let etpn2 = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation)?;
    let analysis = TestabilityAnalysis::analyze(etpn2.data_path());
    println!(
        "fixpoint sweeps used by the testability analysis (loops converge): {}",
        analysis.sweeps_used()
    );
    println!(
        "register-module self-loops in the final design: {}",
        r.metrics.self_loops
    );
    Ok(())
}
