//! The paper's headline experiment in miniature: synthesize the Ex
//! benchmark with all four flows, elaborate each result to gates, run
//! the two-phase ATPG, and compare fault coverage and effort.
//!
//! Run with `cargo run --release --example ex_test_synthesis`
//! (release strongly recommended — fault simulation is hot).

use hlts::atpg::{AtpgConfig, TestGenerator};
use hlts::core::{baselines, IntegratedSynthesizer, SynthesisParams};
use hlts::etpn::Etpn;
use hlts::netlist::elaborate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 8;
    let dfg = hlts::benchmarks::ex();
    let p = SynthesisParams::paper_defaults(bits);

    let camad_params = SynthesisParams {
        alpha: 0.1,
        beta: 10.0,
        ..p.clone()
    };
    let flows = vec![
        ("CAMAD", baselines::camad(&dfg, &camad_params)?),
        ("Approach 1", baselines::approach1(&dfg, &p)?),
        ("Approach 2", baselines::approach2(&dfg, &p)?),
        ("Ours", IntegratedSynthesizer::new(p.clone()).run(&dfg)?),
    ];

    println!(
        "{:<11} {:>3} {:>4} {:>4} {:>5} {:>7} {:>9} {:>9} {:>7}",
        "flow", "E", "mod", "reg", "mux", "gates", "coverage", "effort", "cycles"
    );
    for (name, r) in flows {
        let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation)?;
        let nl = elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, bits)?;
        let cfg = AtpgConfig {
            sequence_cycles: (r.schedule.num_steps() + 1) * 2,
            random_sequences: 12,
            frames: r.schedule.num_steps() + 3,
            fault_sample: Some(1000),
            max_deterministic_targets: 50,
            ..AtpgConfig::default()
        };
        let rep = TestGenerator::new(cfg).run(&nl);
        println!(
            "{:<11} {:>3} {:>4} {:>4} {:>5} {:>7} {:>8.2}% {:>9.0} {:>7}",
            name,
            r.metrics.execution_time,
            r.metrics.num_modules,
            r.metrics.num_registers,
            r.metrics.mux_count,
            nl.num_gates(),
            rep.coverage(),
            rep.effort(),
            rep.test_cycles,
        );
    }
    Ok(())
}
