//! Design-space exploration on the Dct benchmark: how the paper's user
//! parameters k (testability-emphasis shortlist size) and α/β (time vs
//! area weighting) shape the synthesized design.
//!
//! Run with `cargo run --release --example dct_design_space`.

use hlts::core::{IntegratedSynthesizer, SynthesisParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = hlts::benchmarks::dct();
    println!(
        "{:>3} {:>6} {:>6}   {:>2} {:>4} {:>4} {:>4} {:>7} {:>6} {:>6} {:>7}",
        "k", "alpha", "beta", "E", "mod", "reg", "mux", "H", "avgC", "avgO", "depth"
    );
    for k in [1usize, 2, 3, 5, 8] {
        for (alpha, beta) in [(2.0, 1.0), (10.0, 1.0), (1.0, 10.0), (0.1, 10.0)] {
            let params = SynthesisParams {
                k,
                alpha,
                beta,
                bits: 8,
                ..SynthesisParams::default()
            };
            let r = IntegratedSynthesizer::new(params).run(&dfg)?;
            println!(
                "{:>3} {:>6.1} {:>6.1}   {:>2} {:>4} {:>4} {:>4} {:>7.3} {:>6.2} {:>6.2} {:>7.1}",
                k,
                alpha,
                beta,
                r.metrics.execution_time,
                r.metrics.num_modules,
                r.metrics.num_registers,
                r.metrics.mux_count,
                r.metrics.hardware.total(),
                r.metrics.avg_controllability,
                r.metrics.avg_observability,
                r.metrics.co_depth,
            );
        }
    }
    println!(
        "\nNote the plateau around the paper's settings — its observation that\n\
         \"the chosen parameters do not influence so much the final results\"."
    );
    Ok(())
}
