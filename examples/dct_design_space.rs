//! Design-space exploration on the Dct benchmark: how the paper's user
//! parameters k (testability-emphasis shortlist size) and α/β (time vs
//! area weighting) shape the synthesized design.
//!
//! Built on the `hlts-dse` engine: the 20-point grid runs on a worker
//! pool with shared testability/critical-path caches, and the Pareto
//! front over (E, H, avg C, avg O, C→O depth) falls out of the sweep.
//!
//! Run with `cargo run --release --example dct_design_space`.

use hlts::dse::{explore, ExploreConfig, SweepSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = SweepSpec::new(vec![("dct".to_owned(), hlts::benchmarks::dct())]);
    spec.ks = vec![1, 2, 3, 5, 8];
    spec.weights = vec![(2.0, 1.0), (10.0, 1.0), (1.0, 10.0), (0.1, 10.0)];

    let cfg = ExploreConfig {
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..ExploreConfig::default()
    };
    let outcome = explore(&spec, &cfg)?;
    print!("{}", outcome.render());

    println!(
        "\nNote the plateau around the paper's settings — its observation that\n\
         \"the chosen parameters do not influence so much the final results\":\n\
         many grid points collapse onto the same few Pareto-front designs."
    );
    Ok(())
}
