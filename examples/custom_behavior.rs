//! Bring your own behavior: write it in the textual DFG format, pick a
//! synthesis flow, elaborate to gates and measure testability — the
//! full downstream-user workflow in one file.
//!
//! Run with `cargo run --release --example custom_behavior`.

use hlts::atpg::{AtpgConfig, TestGenerator};
use hlts::core::{IntegratedSynthesizer, SynthesisParams};
use hlts::etpn::Etpn;
use hlts::netlist::elaborate;

const BEHAVIOR: &str = "
dfg fir4 {
    # a 4-tap FIR step: y = k0*s0 + k1*s1 + k2*s2 + k3*s3, state shift
    input s0, s1, s2, s3, k0, k1, k2, k3;
    M0: p0 = k0 * s0;
    M1: p1 = k1 * s1;
    M2: p2 = k2 * s2;
    M3: p3 = k3 * s3;
    A0: t0 = p0 + p1;
    A1: t1 = p2 + p3;
    A2: y  = t0 + t1;
    output y;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = hlts::dfg::parse(BEHAVIOR)?;
    let params = SynthesisParams {
        bits: 8,
        ..SynthesisParams::paper_defaults(8)
    };
    let result = IntegratedSynthesizer::new(params).run(&dfg)?;
    println!("synthesized FIR step:\n{}", result.render());

    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)?;
    let nl = elaborate(&result.dfg, &result.schedule, &result.allocation, &etpn, 8)?;
    println!(
        "gate netlist: {} gates, {} flip-flops",
        nl.num_gates(),
        nl.dffs().len()
    );

    let cfg = AtpgConfig {
        sequence_cycles: (result.schedule.num_steps() + 1) * 2,
        random_sequences: 10,
        frames: result.schedule.num_steps() + 3,
        fault_sample: Some(800),
        max_deterministic_targets: 40,
        ..AtpgConfig::default()
    };
    let report = TestGenerator::new(cfg).run(&nl);
    println!(
        "fault coverage {:.2}% ({} random + {} deterministic of {} faults), \
         {} test cycles, effort {:.0}",
        report.coverage(),
        report.detected_random,
        report.detected_deterministic,
        report.total_faults,
        report.test_cycles,
        report.effort(),
    );
    Ok(())
}
