//! Quickstart: describe a behavior, synthesize it with the integrated
//! test-synthesis algorithm, and inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use hlts::core::{IntegratedSynthesizer, SynthesisParams};
use hlts::dfg::parse;
use hlts::etpn::Etpn;
use hlts::testability::{total_co_depth, NodeProfile, TestabilityAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small behavioral description (the role of the paper's VHDL
    // input): a multiply-accumulate kernel with a couple of reductions.
    let dfg = parse(
        "dfg mac {
            input a, b, c, d;
            N1: p = a * b;
            N2: q = c * d;
            N3: s = p + q;
            N4: t = s - a;
            N5: r = t + d;
            output r;
        }",
    )?;
    println!("behavior:\n{dfg}");

    // Synthesize with the paper's default parameters (k = 3, α = 2,
    // β = 1 at 4-bit costing).
    let params = SynthesisParams {
        k: 3,
        alpha: 2.0,
        beta: 1.0,
        bits: 8,
        ..SynthesisParams::default()
    };
    let result = IntegratedSynthesizer::new(params).run(&dfg)?;

    println!("merge decisions:");
    for m in &result.merge_log {
        println!("  {m}");
    }
    println!("\nfinal design:\n{}", result.render());

    // The testability view the algorithm optimizes: node C/O profiles
    // and the SR1 sequential-depth objective.
    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)?;
    let analysis = TestabilityAnalysis::analyze(etpn.data_path());
    println!("register C/O profiles:");
    for node in etpn.data_path().register_nodes() {
        let p = NodeProfile::of(&analysis, etpn.data_path(), node);
        println!(
            "  {:24} C = {:.2}  O = {:.2}",
            etpn.data_path().node(node).label(),
            p.c,
            p.o
        );
    }
    println!(
        "total controllable->observable depth (SR1 objective): {:.1}",
        total_co_depth(etpn.data_path(), &analysis)
    );
    Ok(())
}
