//! `hlts` — command-line front end to the test-synthesis system.
//!
//! ```text
//! hlts [run] <file.dfg | bench:NAME> [--flow ours|camad|approach1|approach2]
//!      [--bits N] [--k N] [--alpha X] [--beta X] [--atpg]
//!      [--fault-sample N] [--tcov-jobs N] [--audit] [--json] [--quiet]
//! hlts explore <source>... [--flow LIST] [--bits LIST] [--k LIST]
//!      [--weights A:B,...] [--jobs N] [--warm-start off|on] [--atpg]
//!      [--fault-sample N] [--journal PATH | --resume PATH] [--json] [--quiet]
//! hlts gen [--seed N] [--preset NAME] [--list-presets] [--out FILE]
//!      [--ops N] [--inputs N] [--const-ratio X] [--mul W] [--addsub W]
//!      [--logic W] [--cmp W] [--shift W] [--depth-bias X]
//!      [--fanout-skew X] [--loops N] [--name IDENT]
//! hlts serve [--tcp ADDR] [--workers N] [--queue N] [--warm N]
//! hlts submit <file.dfg | bench:NAME | -> --connect ADDR
//!      [--flow FLOW] [--bits N] [--k N] [--alpha X] [--beta X] [--atpg]
//! ```
//!
//! `run` (the default subcommand) reads a behavioral description in the
//! textual DFG format (or a built-in benchmark via `bench:ex`,
//! `bench:dct`, …, or stdin via `-`), synthesizes it with the requested
//! flow, prints the resulting schedule/allocation and metrics, and
//! optionally grades the elaborated netlist with the parallel two-phase
//! coverage engine (`hlts-tcov`): `--atpg` measures fault coverage,
//! `--fault-sample N` bounds the graded fault set (0 = the exhaustive
//! collapsed universe) and `--tcov-jobs N` picks the grading worker
//! count — reports are bit-identical at any worker count. When faults
//! are sampled, both the sampled and the total collapsed counts are
//! reported, so a sampled estimate is never mistaken for an exhaustive
//! grade.
//! `explore` sweeps the grid of k × (α, β) × bits × flow points over
//! one or more sources on a worker pool and reports the Pareto front
//! (see `hlts-dse`); with `--atpg` every point is additionally graded
//! and the front is Pareto over measured (coverage, test cycles) too; with `--journal` completed points checkpoint to a
//! plain-text file that `--resume` picks up without recomputing;
//! `--warm-start on` seeds each point from its nearest completed
//! neighbour's merge trace, replaying decisions instead of re-searching
//! them — the front is bit-identical to `--warm-start off` at any
//! worker count (see `hlts-dse`). `gen`
//! emits a random — but seed-reproducible — workload in the textual
//! DFG format (see `hlts-gen`), so `hlts gen --seed 7 | hlts run -`
//! synthesizes a fresh graph and a conformance failure's printed
//! `(seed, preset)` pair replays anywhere. `--json` switches `run` and
//! `explore` to machine-readable output. `--audit` runs the
//! cross-crate invariant auditor (`hlts-check`) over the synthesized
//! design and fails with a violation report if anything is
//! inconsistent. `serve` runs the job daemon (`hlts-jobs`): a bounded
//! worker pool answering line-delimited JSON requests on stdin or over
//! TCP, with warm per-behavior caches shared across submissions.
//! `submit` is its one-shot client: `hlts gen --seed 7 | hlts submit -
//! --connect HOST:PORT` ships the generated behavior to a daemon and
//! streams the job's events back. `run` and `explore` honour Ctrl-C:
//! an interrupt cancels at the next iteration/point boundary and an
//! interrupted sweep still reports its partial front (flagged
//! `degraded: cancelled`) with the journal intact.

use std::process::ExitCode;

use hlts::core::{DesignState, EvalMode, RunCtl, SynthesisParams, SynthesisResult};
use hlts::dse::{self, ExploreConfig, Flow, SweepSpec};
use hlts::jobs::{
    execute, proto, submit_once, AtpgRequest, ClientEnd, JobOutput, JobSpec, RunOutput,
    ServeConfig, WarmPool,
};
use hlts::tcov::CoverageReport;

/// Collapsed faults graded when `--atpg` is given without an explicit
/// `--fault-sample` (0 = exhaustive): enough for a stable coverage
/// estimate on every built-in benchmark while keeping one-shot runs
/// interactive.
const DEFAULT_FAULT_SAMPLE: usize = 2000;

/// Ctrl-C wiring: SIGINT fires the process-wide [`CancelToken`], so a
/// one-shot `hlts run`/`hlts explore` stops at the next clean boundary
/// (an interrupted sweep keeps its flushed journal and reports the
/// partial front with a `degraded: cancelled` line). The handler does
/// one relaxed atomic store — nothing non-signal-safe.
#[cfg(unix)]
mod sigint {
    use hlts::core::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install() -> CancelToken {
        let token = TOKEN.get_or_init(CancelToken::new).clone();
        const SIGINT: i32 = 2;
        // SAFETY: registering an async-signal-safe handler (one
        // relaxed atomic store) for SIGINT via the libc `signal`
        // symbol; both arguments are valid for the C signature.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        token
    }
}

#[cfg(not(unix))]
mod sigint {
    use hlts::core::CancelToken;

    /// No signal wiring off unix: the token simply never fires.
    pub fn install() -> CancelToken {
        CancelToken::new()
    }
}

struct RunOptions {
    source: String,
    flow: String,
    bits: u32,
    k: Option<usize>,
    alpha: Option<f64>,
    beta: Option<f64>,
    atpg: bool,
    /// `--fault-sample` (0 = exhaustive); `None` = flag absent, use
    /// the default sample.
    fault_sample: Option<usize>,
    /// `--tcov-jobs`; `None` = flag absent, grade single-threaded.
    tcov_jobs: Option<usize>,
    audit: bool,
    json: bool,
    quiet: bool,
}

struct ExploreOptions {
    sources: Vec<String>,
    flows: Vec<Flow>,
    ks: Vec<usize>,
    weights: Vec<(f64, f64)>,
    bits: Vec<u32>,
    jobs: usize,
    warm_start: bool,
    atpg: bool,
    fault_sample: Option<usize>,
    journal: Option<String>,
    resume: Option<String>,
    json: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: hlts [run] <file.dfg | bench:NAME | -> [--flow ours|camad|approach1|approach2]\n\
     \x20            [--bits N] [--k N] [--alpha X] [--beta X] [--atpg]\n\
     \x20            [--fault-sample N] [--tcov-jobs N] [--audit] [--json] [--quiet]\n\
     \x20      hlts explore <source>... [--flow LIST] [--bits LIST] [--k LIST]\n\
     \x20            [--weights A:B,...] [--jobs N] [--warm-start off|on] [--atpg]\n\
     \x20            [--fault-sample N] [--journal PATH | --resume PATH] [--json] [--quiet]\n\
     \x20      hlts gen [--seed N] [--preset NAME] [--list-presets] [--out FILE]\n\
     \x20            [--ops N] [--inputs N] [--const-ratio X] [--mul W] [--addsub W]\n\
     \x20            [--logic W] [--cmp W] [--shift W] [--depth-bias X]\n\
     \x20            [--fanout-skew X] [--loops N] [--name IDENT]\n\
     \x20      hlts serve [--tcp ADDR] [--workers N] [--queue N] [--warm N]\n\
     \x20      hlts submit <file.dfg | bench:NAME | -> --connect ADDR\n\
     \x20            [--flow FLOW] [--bits N] [--k N] [--alpha X] [--beta X] [--atpg]\n\
     built-in benchmarks: ex, dct, diffeq, ewf, paulin, tseng"
}

const RUN_FLAGS: &str = "--flow, --bits, --k, --alpha, --beta, --atpg, --fault-sample, \
    --tcov-jobs, --audit, --json, --quiet";
const EXPLORE_FLAGS: &str = "--flow, --bits, --k, --weights, --jobs, --warm-start, --atpg, \
    --fault-sample, --journal, --resume, --json, --quiet";
const SERVE_FLAGS: &str = "--tcp, --workers, --queue, --warm";
const SUBMIT_FLAGS: &str = "--connect, --flow, --bits, --k, --alpha, --beta, --atpg";
const GEN_FLAGS: &str = "--seed, --preset, --list-presets, --out, --ops, --inputs, \
    --const-ratio, --mul, --addsub, --logic, --cmp, --shift, --depth-bias, --fanout-skew, \
    --loops, --name";

fn unknown_flag(arg: &str, valid: &str) -> String {
    format!("unexpected argument `{arg}` (valid flags: {valid})\n{}", usage())
}

/// `--k` values must be positive: `k = 0` would make every iteration's
/// shortlist empty and the paper's parameter meaningless.
fn parse_k(text: &str) -> Result<usize, String> {
    let k: usize = text.parse().map_err(|e| format!("--k: {e}"))?;
    if k == 0 {
        return Err("--k must be >= 1 (the paper's shortlist size)".into());
    }
    Ok(k)
}

/// Weights must be finite and non-negative: a negative or NaN α/β
/// would invert or poison the ΔC = α·ΔE + β·ΔH acceptance rule.
fn parse_weight(flag: &str, text: &str) -> Result<f64, String> {
    let v: f64 = text.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "{flag} must be a finite non-negative number (got `{text}`)"
        ));
    }
    Ok(v)
}

/// `--fault-sample` must be a non-negative integer; `0` explicitly
/// requests the exhaustive collapsed fault universe.
fn parse_fault_sample(text: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|e| format!("--fault-sample: {e} (0 = exhaustive, N = sample size)"))
}

/// Worker/capacity counts must be positive — zero workers is a sweep
/// (or a grading pass, or a daemon) that can never make progress. One
/// validator serves every such flag (`--jobs`, `--tcov-jobs`,
/// `--workers`, `--queue`) so they all reject `0` through the same
/// typed error path with the same message shape.
fn parse_positive_count(flag: &str, text: &str) -> Result<usize, String> {
    let n: usize = text.parse().map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be >= 1"));
    }
    Ok(n)
}

/// `--warm-start` takes an explicit mode, not a bare switch: `off` is
/// the documented way to pin today's cold behavior in scripts, and an
/// explicit value keeps future modes (e.g. a trace-budget) additive.
fn parse_warm_start(text: &str) -> Result<bool, String> {
    match text {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("--warm-start: unknown mode `{other}` (expected off or on)")),
    }
}

fn take(args: &mut dyn Iterator<Item = String>, what: &str) -> Result<String, String> {
    args.next().ok_or(format!("missing value for {what}"))
}

fn parse_list<T, F: Fn(&str) -> Result<T, String>>(
    text: &str,
    flag: &str,
    parse: F,
) -> Result<Vec<T>, String> {
    let out: Vec<T> = text
        .split(',')
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect::<Result<_, _>>()?;
    if out.is_empty() {
        return Err(format!("{flag}: empty list"));
    }
    Ok(out)
}

fn parse_run_args(mut args: impl Iterator<Item = String>) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        source: String::new(),
        flow: "ours".into(),
        bits: 8,
        k: None,
        alpha: None,
        beta: None,
        atpg: false,
        fault_sample: None,
        tcov_jobs: None,
        audit: false,
        json: false,
        quiet: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flow" => opts.flow = take(&mut args, "--flow")?,
            "--bits" => {
                opts.bits = take(&mut args, "--bits")?
                    .parse()
                    .map_err(|e| format!("--bits: {e}"))?;
            }
            "--k" => opts.k = Some(parse_k(&take(&mut args, "--k")?)?),
            "--alpha" => opts.alpha = Some(parse_weight("--alpha", &take(&mut args, "--alpha")?)?),
            "--beta" => opts.beta = Some(parse_weight("--beta", &take(&mut args, "--beta")?)?),
            "--atpg" => opts.atpg = true,
            "--fault-sample" => {
                opts.fault_sample = Some(parse_fault_sample(&take(&mut args, "--fault-sample")?)?);
            }
            "--tcov-jobs" => {
                opts.tcov_jobs =
                    Some(parse_positive_count("--tcov-jobs", &take(&mut args, "--tcov-jobs")?)?);
            }
            "--audit" => opts.audit = true,
            "--json" => opts.json = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            // A bare `-` is the stdin source, not a flag.
            other if other.starts_with('-') && other != "-" => {
                return Err(unknown_flag(other, RUN_FLAGS))
            }
            other if opts.source.is_empty() => opts.source = other.to_owned(),
            other => return Err(unknown_flag(other, RUN_FLAGS)),
        }
    }
    if opts.source.is_empty() {
        return Err(usage().to_owned());
    }
    if !opts.atpg && (opts.fault_sample.is_some() || opts.tcov_jobs.is_some()) {
        return Err("--fault-sample/--tcov-jobs configure coverage grading; add --atpg".into());
    }
    Ok(opts)
}

fn parse_explore_args(mut args: impl Iterator<Item = String>) -> Result<ExploreOptions, String> {
    let mut opts = ExploreOptions {
        sources: Vec::new(),
        flows: vec![Flow::Ours],
        ks: vec![3],
        weights: vec![(2.0, 1.0), (10.0, 1.0), (1.0, 10.0)],
        bits: vec![8],
        jobs: 1,
        warm_start: false,
        atpg: false,
        fault_sample: None,
        journal: None,
        resume: None,
        json: false,
        quiet: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flow" => {
                opts.flows = parse_list(&take(&mut args, "--flow")?, "--flow", |s| {
                    Flow::parse(s).ok_or(format!(
                        "unknown flow `{s}` (expected ours, camad, approach1 or approach2)"
                    ))
                })?;
            }
            "--bits" => {
                opts.bits = parse_list(&take(&mut args, "--bits")?, "--bits", |s| {
                    s.parse().map_err(|e| format!("--bits: {e}"))
                })?;
            }
            "--k" => opts.ks = parse_list(&take(&mut args, "--k")?, "--k", parse_k)?,
            "--weights" => {
                opts.weights =
                    parse_list(&take(&mut args, "--weights")?, "--weights", |s| {
                        let (a, b) = s.split_once(':').ok_or(format!(
                            "--weights: `{s}` is not an alpha:beta pair"
                        ))?;
                        Ok((parse_weight("--weights", a)?, parse_weight("--weights", b)?))
                    })?;
            }
            "--jobs" => {
                opts.jobs = parse_positive_count("--jobs", &take(&mut args, "--jobs")?)?;
            }
            "--warm-start" => {
                opts.warm_start = parse_warm_start(&take(&mut args, "--warm-start")?)?;
            }
            "--atpg" => opts.atpg = true,
            "--fault-sample" => {
                opts.fault_sample = Some(parse_fault_sample(&take(&mut args, "--fault-sample")?)?);
            }
            "--journal" => opts.journal = Some(take(&mut args, "--journal")?),
            "--resume" => opts.resume = Some(take(&mut args, "--resume")?),
            "--json" => opts.json = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            // A bare `-` is the stdin source, not a flag.
            other if other.starts_with('-') && other != "-" => {
                return Err(unknown_flag(other, EXPLORE_FLAGS))
            }
            other => opts.sources.push(other.to_owned()),
        }
    }
    if opts.sources.is_empty() {
        return Err(usage().to_owned());
    }
    if opts.journal.is_some() && opts.resume.is_some() {
        return Err("use either --journal (start a checkpoint) or --resume (continue one)".into());
    }
    if !opts.atpg && opts.fault_sample.is_some() {
        return Err("--fault-sample configures coverage grading; add --atpg".into());
    }
    Ok(opts)
}

fn load(source: &str) -> Result<hlts::dfg::Dfg, String> {
    if let Some(name) = source.strip_prefix("bench:") {
        return hlts::benchmarks::by_name(name).ok_or(format!(
            "unknown benchmark `{name}` (have: {})",
            hlts::benchmarks::NAMES.join(", ")
        ));
    }
    let text = if source == "-" {
        // Read the behavior from stdin, so generated workloads pipe
        // straight through: `hlts gen --seed 7 | hlts run -`.
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?
    };
    hlts::dfg::parse(&text).map_err(|e| format!("{source}: {e}"))
}

/// The sweep name of a source: the benchmark name, the graph name for
/// stdin, or a file's stem.
fn source_name(source: &str) -> String {
    if let Some(name) = source.strip_prefix("bench:") {
        return name.to_owned();
    }
    if source == "-" {
        return "stdin".to_owned();
    }
    std::path::Path::new(source)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| source.to_owned())
}

/// One-shot synthesis through the same [`execute`] path the daemon's
/// workers use (same parameter derivation, same cancellation
/// boundaries), so `hlts run` and a served submission are
/// bit-identical by construction.
fn synthesize(
    opts: &RunOptions,
    dfg: &hlts::dfg::Dfg,
    ctl: &RunCtl<'_>,
) -> Result<RunOutput, String> {
    let Some(flow) = Flow::parse(&opts.flow) else {
        return Err(format!("unknown flow `{}`\n{}", opts.flow, usage()));
    };
    let mut params = SynthesisParams::paper_defaults(opts.bits);
    if flow == Flow::Camad {
        // The CAMAD baseline's historical default weights.
        params.alpha = 0.1;
        params.beta = 10.0;
    }
    if let Some(k) = opts.k {
        params.k = k;
    }
    if let Some(a) = opts.alpha {
        params.alpha = a;
    }
    if let Some(b) = opts.beta {
        params.beta = b;
    }
    // Coverage grading is part of the job spec, so `hlts run --atpg`
    // takes the same engine path (and the same cancellation token) as
    // a daemon submission carrying an `atpg` request.
    let atpg = opts.atpg.then(|| AtpgRequest {
        fault_sample: {
            let n = opts.fault_sample.unwrap_or(DEFAULT_FAULT_SAMPLE);
            (n > 0).then_some(n)
        },
        jobs: opts.tcov_jobs.unwrap_or(1),
    });
    let spec = JobSpec::Run {
        name: source_name(&opts.source),
        dfg: dfg.clone(),
        flow,
        params,
        mode: EvalMode::default(),
        warm: None,
        atpg,
    };
    match execute(&spec, ctl, &WarmPool::new(0)) {
        Ok(JobOutput::Run(out)) => Ok(*out),
        Ok(_) => Err("internal: run job produced a non-run output".into()),
        Err(e) => Err(e.to_string()),
    }
}

/// Hand-rolled machine-readable report of one synthesis run. The
/// `metrics` object is rendered by the daemon protocol's
/// [`proto::metrics_json`], so a served result and `hlts run --json`
/// agree byte-for-byte on that fragment.
fn run_json(opts: &RunOptions, result: &SynthesisResult, atpg: Option<&CoverageReport>) -> String {
    let mut out = format!(
        "{{\n  \"source\": {}, \"flow\": {},\n  \"metrics\": {},\n  \"merges\": [{}]",
        dse::json_string(&opts.source),
        dse::json_string(&opts.flow),
        proto::metrics_json(&result.metrics),
        result
            .merge_log
            .iter()
            .map(|s| dse::json_string(s))
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some(report) = atpg {
        // The daemon protocol's coverage object verbatim, so a served
        // graded result and `hlts run --atpg --json` agree
        // byte-for-byte on this fragment. `faults_graded` vs
        // `total_collapsed` makes a sampled estimate explicit.
        out.push_str(&format!(",\n  \"atpg\": {}", proto::coverage_json(report)));
    }
    out.push_str("\n}");
    out
}

fn run_main(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = parse_run_args(args)?;
    let dfg = load(&opts.source).map_err(|e| format!("error: {e}"))?;
    let ctl = RunCtl::cancel_only(sigint::install());
    let out = synthesize(&opts, &dfg, &ctl).map_err(|e| format!("error: {e}"))?;
    let result = out.result;
    if opts.audit {
        let state = DesignState::from_parts(
            &result.dfg,
            result.schedule.clone(),
            result.allocation.clone(),
        );
        let report = state.audit();
        if !report.is_clean() {
            return Err(format!("error: {report}"));
        }
        if !opts.json {
            println!("audit: clean");
        }
    }
    if opts.json {
        println!("{}", run_json(&opts, &result, out.coverage.as_ref()));
        return Ok(());
    }
    if !opts.quiet {
        println!("{}", result.render());
        for m in &result.merge_log {
            println!("  {m}");
        }
    }
    println!(
        "E = {} steps, modules = {}, registers = {}, muxes = {}, H = {:.3}, \
         avg C = {:.2}, avg O = {:.2}, C->O depth = {:.1}",
        result.metrics.execution_time,
        result.metrics.num_modules,
        result.metrics.num_registers,
        result.metrics.mux_count,
        result.metrics.hardware.total(),
        result.metrics.avg_controllability,
        result.metrics.avg_observability,
        result.metrics.co_depth,
    );
    if let Some(r) = &out.coverage {
        // When sampling, say so: a coverage percentage over a sample
        // must never read as an exhaustive grade.
        let universe = if r.faults_graded < r.total_collapsed {
            format!(
                "of {} sampled ({} collapsed total)",
                r.faults_graded, r.total_collapsed
            )
        } else {
            format!("of {} collapsed", r.total_collapsed)
        };
        println!(
            "gates = {}, fault coverage = {:.2}% ({} random + {} deterministic {universe}), \
             effort = {:.0}, test cycles = {}",
            r.gates,
            r.coverage(),
            r.detected_random,
            r.detected_deterministic,
            r.effort(),
            r.test_cycles,
        );
    }
    Ok(())
}

fn explore_main(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = parse_explore_args(args)?;
    let mut benches = Vec::new();
    for source in &opts.sources {
        benches.push((
            source_name(source),
            load(source).map_err(|e| format!("error: {e}"))?,
        ));
    }
    let spec = SweepSpec {
        benches,
        flows: opts.flows.clone(),
        ks: opts.ks.clone(),
        weights: opts.weights.clone(),
        bits: opts.bits.clone(),
        extra: Vec::new(),
        // `--atpg` grades every point: the front becomes Pareto over
        // measured (coverage, test cycles) as well. The sample size
        // joins the sweep fingerprint, so journals from plain and
        // graded sweeps never mix.
        tcov: opts.atpg.then(|| dse::TcovSweep {
            fault_sample: opts.fault_sample.unwrap_or(DEFAULT_FAULT_SAMPLE),
        }),
        // Warm-start joins the fingerprint too: a trace-bearing
        // journal cannot resume a legacy (cold) sweep or vice versa.
        warm_start: opts.warm_start,
    };
    let mut cfg = ExploreConfig {
        jobs: opts.jobs,
        ..ExploreConfig::default()
    };
    if let Some(path) = &opts.resume {
        let path = std::path::PathBuf::from(path);
        let scan = dse::load_journal(&path, &spec).map_err(|e| format!("error: {e}"))?;
        if scan.malformed > 0 {
            eprintln!(
                "warning: {}: skipped {} malformed journal line(s); \
                 the lost points will be recomputed",
                path.display(),
                scan.malformed
            );
        }
        if scan.torn_tail > 0 {
            eprintln!(
                "warning: {}: dropped a torn final line (interrupted write); \
                 that point will be recomputed",
                path.display()
            );
        }
        cfg.resume = scan.points;
        // Resumed traces re-seed the warm pool, so points computed
        // after the restart still replay their neighbours' merges.
        cfg.resume_traces = scan.traces;
        cfg.resume_malformed = scan.malformed;
        cfg.resume_torn_tail = scan.torn_tail;
        cfg.journal = Some(path);
    } else if let Some(path) = &opts.journal {
        // A fresh checkpoint: start the journal over (resuming an
        // existing one is what --resume is for).
        std::fs::write(path, "").map_err(|e| format!("error: {path}: {e}"))?;
        cfg.journal = Some(path.into());
    }
    // The sweep goes through the unified job executor under the
    // Ctrl-C token: an interrupt stops workers at the next point
    // boundary, the journal is already flushed per append, and the
    // report below carries the partial front plus a
    // `degraded: cancelled` line instead of dying mid-write.
    let ctl = RunCtl::cancel_only(sigint::install());
    let job = JobSpec::Explore { spec, cfg };
    let outcome = match execute(&job, &ctl, &WarmPool::new(0)) {
        Ok(JobOutput::Explore(outcome)) => *outcome,
        Ok(_) => return Err("internal: explore job produced a non-explore output".into()),
        Err(e) => return Err(format!("error: {e}")),
    };
    for f in &outcome.failures {
        eprintln!("warning: point {} failed: {}", f.id, f.message);
    }
    if opts.json {
        print!("{}", outcome.render_json());
        return Ok(());
    }
    if opts.quiet {
        let s = &outcome.stats;
        println!(
            "explored {} points ({} computed, {} resumed) on {} worker(s); front: {}",
            s.points_total,
            s.points_computed,
            s.points_resumed,
            s.workers,
            outcome.front_signature(),
        );
    } else {
        print!("{}", outcome.render());
    }
    Ok(())
}

struct GenOptions {
    seed: u64,
    preset: String,
    list_presets: bool,
    out: Option<String>,
    overrides: Vec<(String, String)>,
}

fn parse_gen_args(mut args: impl Iterator<Item = String>) -> Result<GenOptions, String> {
    let mut opts = GenOptions {
        seed: 0,
        preset: "balanced".into(),
        list_presets: false,
        out: None,
        overrides: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = take(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--preset" => opts.preset = take(&mut args, "--preset")?,
            "--list-presets" => opts.list_presets = true,
            "--out" => opts.out = Some(take(&mut args, "--out")?),
            // Knob overrides are collected as (flag, value) and applied
            // on top of the preset; hlts-gen validates the results.
            "--ops" | "--inputs" | "--const-ratio" | "--mul" | "--addsub" | "--logic"
            | "--cmp" | "--shift" | "--depth-bias" | "--fanout-skew" | "--loops" | "--name" => {
                let value = take(&mut args, &arg)?;
                opts.overrides.push((arg, value));
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(unknown_flag(other, GEN_FLAGS)),
        }
    }
    Ok(opts)
}

fn apply_gen_override(
    cfg: &mut hlts::gen::GenConfig,
    flag: &str,
    value: &str,
) -> Result<(), String> {
    let int = |v: &str| v.parse::<usize>().map_err(|e| format!("{flag}: {e}"));
    let weight = |v: &str| v.parse::<u32>().map_err(|e| format!("{flag}: {e}"));
    let ratio = |v: &str| v.parse::<f64>().map_err(|e| format!("{flag}: {e}"));
    match flag {
        "--ops" => cfg.ops = int(value)?,
        "--inputs" => cfg.inputs = int(value)?,
        "--const-ratio" => cfg.const_ratio = ratio(value)?,
        "--mul" => cfg.mul = weight(value)?,
        "--addsub" => cfg.addsub = weight(value)?,
        "--logic" => cfg.logic = weight(value)?,
        "--cmp" => cfg.cmp = weight(value)?,
        "--shift" => cfg.shift = weight(value)?,
        "--depth-bias" => cfg.depth_bias = ratio(value)?,
        "--fanout-skew" => cfg.fanout_skew = ratio(value)?,
        "--loops" => cfg.loop_pairs = int(value)?,
        "--name" => cfg.name = value.to_owned(),
        other => return Err(format!("unknown gen knob `{other}`")),
    }
    Ok(())
}

fn gen_main(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = parse_gen_args(args)?;
    if opts.list_presets {
        for name in hlts::gen::PRESET_NAMES {
            let cfg = hlts::gen::preset(name).ok_or(format!("missing preset `{name}`"))?;
            println!(
                "{name}: {} ops, {} inputs, mix */{} +-/{} logic/{} cmp/{} shift/{}, \
                 depth {:.1}, fanout {:.1}, {} loop pair(s)",
                cfg.ops,
                cfg.inputs,
                cfg.mul,
                cfg.addsub,
                cfg.logic,
                cfg.cmp,
                cfg.shift,
                cfg.depth_bias,
                cfg.fanout_skew,
                cfg.loop_pairs,
            );
        }
        return Ok(());
    }
    let mut cfg = hlts::gen::preset(&opts.preset).ok_or(format!(
        "unknown preset `{}` (have: {})",
        opts.preset,
        hlts::gen::PRESET_NAMES.join(", ")
    ))?;
    for (flag, value) in &opts.overrides {
        apply_gen_override(&mut cfg, flag, value)?;
    }
    let dfg = hlts::gen::generate(opts.seed, &cfg).map_err(|e| format!("error: {e}"))?;
    let text = hlts::dfg::emit(&dfg).map_err(|e| format!("error: {e}"))?;
    match &opts.out {
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("error: {path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(())
}

struct ServeOptions {
    tcp: Option<String>,
    cfg: ServeConfig,
}

fn parse_serve_args(mut args: impl Iterator<Item = String>) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        tcp: None,
        cfg: ServeConfig::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => opts.tcp = Some(take(&mut args, "--tcp")?),
            "--workers" => {
                opts.cfg.workers =
                    parse_positive_count("--workers", &take(&mut args, "--workers")?)?;
            }
            "--queue" => {
                opts.cfg.queue_capacity =
                    parse_positive_count("--queue", &take(&mut args, "--queue")?)?;
            }
            "--warm" => {
                // 0 is meaningful here: it disables warm-context reuse.
                opts.cfg.warm_capacity = take(&mut args, "--warm")?
                    .parse()
                    .map_err(|e| format!("--warm: {e}"))?;
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(unknown_flag(other, SERVE_FLAGS)),
        }
    }
    Ok(opts)
}

/// `hlts serve`: the job daemon. Default mode answers line-delimited
/// JSON requests on stdin/stdout (pipeline-friendly, exercised by the
/// CI smoke gate); `--tcp ADDR` serves concurrent clients over a
/// socket instead.
fn serve_main(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = parse_serve_args(args)?;
    match &opts.tcp {
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("error: {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| format!("error: {e}"))?;
            // Announce the bound address (ADDR may be `host:0`) before
            // serving, so scripts can wait for readiness.
            println!("listening on {local}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            hlts::jobs::serve_tcp(listener, opts.cfg).map_err(|e| format!("error: {e}"))
        }
        None => {
            hlts::jobs::serve_lines(
                std::io::stdin().lock(),
                Box::new(std::io::stdout()),
                opts.cfg,
            );
            Ok(())
        }
    }
}

struct SubmitOptions {
    source: String,
    connect: String,
    flow: Option<String>,
    bits: Option<u32>,
    k: Option<usize>,
    alpha: Option<f64>,
    beta: Option<f64>,
    atpg: bool,
}

fn parse_submit_args(mut args: impl Iterator<Item = String>) -> Result<SubmitOptions, String> {
    let mut opts = SubmitOptions {
        source: String::new(),
        connect: String::new(),
        flow: None,
        bits: None,
        k: None,
        alpha: None,
        beta: None,
        atpg: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => opts.connect = take(&mut args, "--connect")?,
            "--flow" => opts.flow = Some(take(&mut args, "--flow")?),
            "--bits" => {
                opts.bits = Some(
                    take(&mut args, "--bits")?
                        .parse()
                        .map_err(|e| format!("--bits: {e}"))?,
                );
            }
            "--k" => opts.k = Some(parse_k(&take(&mut args, "--k")?)?),
            "--alpha" => opts.alpha = Some(parse_weight("--alpha", &take(&mut args, "--alpha")?)?),
            "--beta" => opts.beta = Some(parse_weight("--beta", &take(&mut args, "--beta")?)?),
            "--atpg" => opts.atpg = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            // A bare `-` is the stdin source, not a flag.
            other if other.starts_with('-') && other != "-" => {
                return Err(unknown_flag(other, SUBMIT_FLAGS))
            }
            other if opts.source.is_empty() => opts.source = other.to_owned(),
            other => return Err(unknown_flag(other, SUBMIT_FLAGS)),
        }
    }
    if opts.source.is_empty() {
        return Err(usage().to_owned());
    }
    if opts.connect.is_empty() {
        return Err("submit needs --connect ADDR (a running `hlts serve --tcp` daemon)".into());
    }
    Ok(opts)
}

/// The submit request line for one run job. Benchmarks pass through as
/// `bench:NAME` references; files and stdin are shipped inline so the
/// daemon's filesystem never matters — `hlts gen | hlts submit -` works
/// against a daemon on another machine.
fn submit_request_line(opts: &SubmitOptions) -> Result<String, String> {
    let source = if opts.source.starts_with("bench:") {
        dse::json_string(&opts.source)
    } else {
        let text = if opts.source == "-" {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            buf
        } else {
            std::fs::read_to_string(&opts.source).map_err(|e| format!("{}: {e}", opts.source))?
        };
        format!(
            "{{\"name\": {}, \"dfg\": {}}}",
            dse::json_string(&source_name(&opts.source)),
            dse::json_string(&text)
        )
    };
    let mut job = format!("{{\"kind\": \"run\", \"source\": {source}");
    if let Some(flow) = &opts.flow {
        job.push_str(&format!(", \"flow\": {}", dse::json_string(flow)));
    }
    if let Some(bits) = opts.bits {
        job.push_str(&format!(", \"bits\": {bits}"));
    }
    if let Some(k) = opts.k {
        job.push_str(&format!(", \"k\": {k}"));
    }
    if let Some(alpha) = opts.alpha {
        job.push_str(&format!(", \"alpha\": {alpha}"));
    }
    if let Some(beta) = opts.beta {
        job.push_str(&format!(", \"beta\": {beta}"));
    }
    if opts.atpg {
        job.push_str(", \"atpg\": true");
    }
    job.push('}');
    Ok(format!("{{\"op\": \"submit\", \"id\": \"cli\", \"job\": {job}}}"))
}

/// `hlts submit`: one-shot client for a TCP daemon. Streams the job's
/// acknowledgement and event lines to stdout; the exit code reflects
/// how the job ended.
fn submit_main(args: impl Iterator<Item = String>) -> Result<(), String> {
    let opts = parse_submit_args(args)?;
    let line = submit_request_line(&opts)?;
    let mut stdout = std::io::stdout();
    match submit_once(&opts.connect, &line, &mut stdout).map_err(|e| format!("error: {e}"))? {
        ClientEnd::Done => Ok(()),
        ClientEnd::Failed => Err("error: job failed (see the failed event above)".into()),
        ClientEnd::Cancelled => Err("error: job was cancelled".into()),
        ClientEnd::Rejected => Err("error: daemon rejected the request".into()),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let outcome = match args.peek().map(String::as_str) {
        Some("explore") => explore_main(args.skip(1)),
        Some("gen") => gen_main(args.skip(1)),
        Some("serve") => serve_main(args.skip(1)),
        Some("submit") => submit_main(args.skip(1)),
        Some("run") => run_main(args.skip(1)),
        _ => run_main(args),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
