//! `hlts` — command-line front end to the test-synthesis system.
//!
//! ```text
//! hlts <file.dfg | bench:NAME> [--flow ours|camad|approach1|approach2]
//!      [--bits N] [--k N] [--alpha X] [--beta X] [--atpg] [--quiet]
//! ```
//!
//! Reads a behavioral description in the textual DFG format (or one of
//! the built-in benchmarks via `bench:ex`, `bench:dct`, …), synthesizes
//! it with the requested flow, prints the resulting schedule/allocation
//! and metrics, and optionally grades the elaborated netlist with the
//! two-phase ATPG.

use std::process::ExitCode;

use hlts::atpg::{AtpgConfig, TestGenerator};
use hlts::core::{baselines, IntegratedSynthesizer, SynthesisParams, SynthesisResult};
use hlts::etpn::Etpn;
use hlts::netlist::elaborate;

struct Options {
    source: String,
    flow: String,
    bits: u32,
    k: Option<usize>,
    alpha: Option<f64>,
    beta: Option<f64>,
    atpg: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: hlts <file.dfg | bench:NAME> [--flow ours|camad|approach1|approach2]\n\
     \x20            [--bits N] [--k N] [--alpha X] [--beta X] [--atpg] [--quiet]\n\
     built-in benchmarks: ex, dct, diffeq, ewf, paulin, tseng"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        source: String::new(),
        flow: "ours".into(),
        bits: 8,
        k: None,
        alpha: None,
        beta: None,
        atpg: false,
        quiet: false,
    };
    let take = |it: &mut dyn Iterator<Item = String>, what: &str| {
        it.next().ok_or(format!("missing value for {what}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flow" => opts.flow = take(&mut args, "--flow")?,
            "--bits" => {
                opts.bits = take(&mut args, "--bits")?
                    .parse()
                    .map_err(|e| format!("--bits: {e}"))?;
            }
            "--k" => {
                opts.k = Some(
                    take(&mut args, "--k")?
                        .parse()
                        .map_err(|e| format!("--k: {e}"))?,
                );
            }
            "--alpha" => {
                opts.alpha = Some(
                    take(&mut args, "--alpha")?
                        .parse()
                        .map_err(|e| format!("--alpha: {e}"))?,
                );
            }
            "--beta" => {
                opts.beta = Some(
                    take(&mut args, "--beta")?
                        .parse()
                        .map_err(|e| format!("--beta: {e}"))?,
                );
            }
            "--atpg" => opts.atpg = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other if opts.source.is_empty() => opts.source = other.to_owned(),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    if opts.source.is_empty() {
        return Err(usage().to_owned());
    }
    Ok(opts)
}

fn load(source: &str) -> Result<hlts::dfg::Dfg, String> {
    if let Some(name) = source.strip_prefix("bench:") {
        return match name {
            "ex" => Ok(hlts::benchmarks::ex()),
            "dct" => Ok(hlts::benchmarks::dct()),
            "diffeq" => Ok(hlts::benchmarks::diffeq()),
            "ewf" => Ok(hlts::benchmarks::ewf()),
            "paulin" => Ok(hlts::benchmarks::paulin()),
            "tseng" => Ok(hlts::benchmarks::tseng()),
            other => Err(format!("unknown benchmark `{other}`")),
        };
    }
    let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
    hlts::dfg::parse(&text).map_err(|e| format!("{source}: {e}"))
}

fn synthesize(opts: &Options, dfg: &hlts::dfg::Dfg) -> Result<SynthesisResult, String> {
    let mut params = SynthesisParams::paper_defaults(opts.bits);
    if let Some(k) = opts.k {
        params.k = k;
    }
    if let Some(a) = opts.alpha {
        params.alpha = a;
    }
    if let Some(b) = opts.beta {
        params.beta = b;
    }
    let run = match opts.flow.as_str() {
        "ours" => IntegratedSynthesizer::new(params).run(dfg),
        "camad" => baselines::camad(
            dfg,
            &SynthesisParams {
                alpha: opts.alpha.unwrap_or(0.1),
                beta: opts.beta.unwrap_or(10.0),
                ..params
            },
        ),
        "approach1" => baselines::approach1(dfg, &params),
        "approach2" => baselines::approach2(dfg, &params),
        other => return Err(format!("unknown flow `{other}`\n{}", usage())),
    };
    run.map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let dfg = match load(&opts.source) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match synthesize(&opts, &dfg) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !opts.quiet {
        println!("{}", result.render());
        for m in &result.merge_log {
            println!("  {m}");
        }
    }
    println!(
        "E = {} steps, modules = {}, registers = {}, muxes = {}, H = {:.3}, \
         avg C = {:.2}, avg O = {:.2}, C->O depth = {:.1}",
        result.metrics.execution_time,
        result.metrics.num_modules,
        result.metrics.num_registers,
        result.metrics.mux_count,
        result.metrics.hardware.total(),
        result.metrics.avg_controllability,
        result.metrics.avg_observability,
        result.metrics.co_depth,
    );
    if opts.atpg {
        let etpn = match Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let nl = match elaborate(
            &result.dfg,
            &result.schedule,
            &result.allocation,
            &etpn,
            opts.bits,
        ) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cfg = AtpgConfig {
            sequence_cycles: (result.schedule.num_steps() + 1) * 2,
            frames: result.schedule.num_steps() + 3,
            fault_sample: Some(2000),
            ..AtpgConfig::default()
        };
        let rep = TestGenerator::new(cfg).run(&nl);
        println!(
            "gates = {}, fault coverage = {:.2}% ({} random + {} deterministic of {}), \
             effort = {:.0}, test cycles = {}, wall = {:?}",
            nl.num_gates(),
            rep.coverage(),
            rep.detected_random,
            rep.detected_deterministic,
            rep.total_faults,
            rep.effort(),
            rep.test_cycles,
            rep.wall,
        );
    }
    ExitCode::SUCCESS
}
