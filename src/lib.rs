//! # hlts — high-level test synthesis with integrated scheduling and allocation
//!
//! Facade crate for the `hlts` workspace, a from-scratch reproduction of
//! *Yang & Peng, "An Efficient Algorithm to Integrate Scheduling and
//! Allocation in High-Level Test Synthesis", DATE 1998*.
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short module name:
//!
//! * [`dfg`] — behavioral data-flow graph IR and parser;
//! * [`sched`] — scheduling substrate (list, force-directed, mobility-path);
//! * [`alloc`] — allocation substrate (left-edge, compatibility, bindings);
//! * [`etpn`] — the Extended Timed Petri Net design representation;
//! * [`testability`] — CC/SC/CO/SO testability analysis;
//! * [`cost`] — module library, floorplanning, area estimation;
//! * [`core`] — the integrated synthesis algorithm and the three baselines;
//! * [`netlist`] — RTL-to-gate elaboration;
//! * [`atpg`] — stuck-at fault simulation and test generation;
//! * [`tcov`] — parallel fault-coverage grading (fault-partitioned
//!   fault sim + PODEM, deterministic merge, coverage memo);
//! * [`benchmarks`] — the six DATE'98 benchmark graphs;
//! * [`dse`] — parallel Pareto design-space exploration over
//!   parameter sweeps, with checkpoint/resume;
//! * [`gen`] — seeded random DFG workload generator and the
//!   differential conformance harness over the engine matrix;
//! * [`jobs`] — the job-oriented execution engine (bounded queue,
//!   worker pool, cancellation, warm contexts) and the `hlts serve`
//!   daemon protocol.
//!
//! # Quickstart
//!
//! ```
//! use hlts::benchmarks;
//! use hlts::core::{IntegratedSynthesizer, SynthesisParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = benchmarks::ex();
//! let params = SynthesisParams { k: 3, alpha: 2.0, beta: 1.0, ..Default::default() };
//! let result = IntegratedSynthesizer::new(params).run(&dfg)?;
//! println!("modules: {}, registers: {}, steps: {}",
//!          result.allocation.num_modules(),
//!          result.allocation.num_registers(),
//!          result.schedule.num_steps());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use hlts_alloc as alloc;
pub use hlts_atpg as atpg;
pub use hlts_benchmarks as benchmarks;
pub use hlts_core as core;
pub use hlts_cost as cost;
pub use hlts_dfg as dfg;
pub use hlts_dse as dse;
pub use hlts_etpn as etpn;
pub use hlts_gen as gen;
pub use hlts_jobs as jobs;
pub use hlts_netlist as netlist;
pub use hlts_sched as sched;
pub use hlts_tcov as tcov;
pub use hlts_testability as testability;
