//! Connectivity-driven constructive floorplanning.
//!
//! "To make a more accurate estimation, we follow the floorplanning
//! algorithm proposed by Peng et al. to estimate the hardware cost which
//! takes into account the geometrical information. This algorithm
//! basically makes use of a simple heuristics based on the connectivity
//! between the data path vertices." (paper §4.2)
//!
//! Nodes are placed one at a time on an integer grid: the next node is
//! always the unplaced node with the most connections to already-placed
//! nodes; it lands on the free cell minimizing total Manhattan distance
//! to its placed neighbors. Wire lengths are measured between cell
//! centers.

use std::collections::HashMap;

use hlts_etpn::{DataPath, DpNodeId};

/// A placement of every data-path node on an integer grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    pos: Vec<(i32, i32)>,
}

impl Floorplan {
    /// Place the nodes of `dp` by the constructive connectivity
    /// heuristic. Deterministic for a given data path.
    #[must_use]
    pub fn place(dp: &DataPath) -> Self {
        let n = dp.num_nodes();
        let mut pos: Vec<Option<(i32, i32)>> = vec![None; n];
        if n == 0 {
            return Floorplan { pos: Vec::new() };
        }
        // connection counts (parallel arcs each count)
        let mut degree = vec![0usize; n];
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for arc in dp.arcs() {
            let (a, b) = (arc.from().index(), arc.to().index());
            if a == b {
                continue;
            }
            degree[a] += 1;
            degree[b] += 1;
            neighbors[a].push(b);
            neighbors[b].push(a);
        }

        let mut occupied: HashMap<(i32, i32), usize> = HashMap::new();
        // seed: the most connected node at the origin
        let seed = (0..n)
            .max_by_key(|&i| (degree[i], usize::MAX - i))
            .unwrap_or(0);
        pos[seed] = Some((0, 0));
        occupied.insert((0, 0), seed);

        for _ in 1..n {
            // next: unplaced node with most placed neighbors; ties by
            // total degree then id
            let next = (0..n)
                .filter(|&i| pos[i].is_none())
                .max_by_key(|&i| {
                    let placed = neighbors[i].iter().filter(|&&j| pos[j].is_some()).count();
                    (placed, degree[i], usize::MAX - i)
                })
                .expect("an unplaced node remains");
            let anchors: Vec<(i32, i32)> = neighbors[next].iter().filter_map(|&j| pos[j]).collect();
            let target = best_free_cell(&occupied, &anchors);
            pos[next] = Some(target);
            occupied.insert(target, next);
        }

        Floorplan {
            pos: pos.into_iter().map(|p| p.expect("all placed")).collect(),
        }
    }

    /// Grid position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the placed data path.
    #[must_use]
    pub fn position(&self, node: DpNodeId) -> (i32, i32) {
        self.pos[node.index()]
    }

    /// Manhattan wire length between two nodes, in grid units.
    #[must_use]
    pub fn wire_len(&self, a: DpNodeId, b: DpNodeId) -> f64 {
        let (xa, ya) = self.pos[a.index()];
        let (xb, yb) = self.pos[b.index()];
        f64::from((xa - xb).abs() + (ya - yb).abs())
    }

    /// Bounding-box half-perimeter of the whole plan (a chip-size
    /// indicator used in diagnostics).
    #[must_use]
    pub fn half_perimeter(&self) -> i32 {
        if self.pos.is_empty() {
            return 0;
        }
        let xs: Vec<i32> = self.pos.iter().map(|p| p.0).collect();
        let ys: Vec<i32> = self.pos.iter().map(|p| p.1).collect();
        (xs.iter().max().unwrap() - xs.iter().min().unwrap())
            + (ys.iter().max().unwrap() - ys.iter().min().unwrap())
    }
}

/// The free cell minimizing total Manhattan distance to `anchors`
/// (spiral search around the anchors' centroid; origin when no anchor).
fn best_free_cell(occupied: &HashMap<(i32, i32), usize>, anchors: &[(i32, i32)]) -> (i32, i32) {
    let (cx, cy) = if anchors.is_empty() {
        (0, 0)
    } else {
        (
            anchors.iter().map(|p| p.0).sum::<i32>() / anchors.len() as i32,
            anchors.iter().map(|p| p.1).sum::<i32>() / anchors.len() as i32,
        )
    };
    let cost = |x: i32, y: i32| -> i64 {
        anchors
            .iter()
            .map(|&(ax, ay)| i64::from((x - ax).abs() + (y - ay).abs()))
            .sum()
    };
    let mut best: Option<((i32, i32), i64)> = None;
    for radius in 0.. {
        // scan the square ring at `radius`
        for dx in -radius..=radius {
            for dy in [-radius, radius] {
                for (x, y) in [(cx + dx, cy + dy), (cx + dy, cy + dx)] {
                    if occupied.contains_key(&(x, y)) {
                        continue;
                    }
                    let c = cost(x, y);
                    if best.is_none_or(|(_, bc)| {
                        c < bc || (c == bc && (y, x) < (best.unwrap().0 .1, best.unwrap().0 .0))
                    }) {
                        best = Some(((x, y), c));
                    }
                }
            }
        }
        // Once a candidate exists and the ring is beyond any possible
        // improvement, stop: distance to centroid grows with radius.
        if let Some((_, bc)) = best {
            let lower_bound = anchors
                .iter()
                .map(|&(ax, ay)| i64::from((radius - (cx - ax).abs() - (cy - ay).abs()).max(0)))
                .sum::<i64>();
            if i64::from(radius) > bc || lower_bound > bc {
                break;
            }
        }
        if radius > 512 {
            break; // safety bound for degenerate inputs
        }
    }
    best.expect("grid has free cells").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority};

    fn sample_dp() -> DataPath {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        let alloc = Allocation::one_to_one(&d);
        Etpn::from_parts(&d, &s, &alloc)
            .unwrap()
            .data_path()
            .clone()
    }

    #[test]
    fn every_node_gets_unique_cell() {
        let dp = sample_dp();
        let fp = Floorplan::place(&dp);
        let mut seen = std::collections::HashSet::new();
        for node in dp.nodes() {
            assert!(seen.insert(fp.position(node.id())), "cell reused");
        }
    }

    #[test]
    fn connected_nodes_are_close() {
        let dp = sample_dp();
        let fp = Floorplan::place(&dp);
        // average arc length should be small on a 9-node plan
        let total: f64 = dp
            .arcs()
            .iter()
            .map(|arc| fp.wire_len(arc.from(), arc.to()))
            .sum();
        let avg = total / dp.num_arcs() as f64;
        assert!(avg <= 3.0, "avg wire length {avg}");
    }

    #[test]
    fn deterministic() {
        let dp = sample_dp();
        assert_eq!(Floorplan::place(&dp), Floorplan::place(&dp));
    }

    #[test]
    fn empty_datapath() {
        let dp = DataPath::new();
        let fp = Floorplan::place(&dp);
        assert_eq!(fp.half_perimeter(), 0);
    }

    #[test]
    fn wire_len_is_manhattan() {
        let dp = sample_dp();
        let fp = Floorplan::place(&dp);
        let a = dp.nodes()[0].id();
        let b = dp.nodes()[1].id();
        let (xa, ya) = fp.position(a);
        let (xb, yb) = fp.position(b);
        assert_eq!(
            fp.wire_len(a, b),
            f64::from((xa - xb).abs() + (ya - yb).abs())
        );
    }
}
