//! The paper's hardware-cost estimate over a floorplanned data path:
//! `H = Σ Area(V_i) + Σ Len(A_j) × Wid(A_j)`.

use hlts_etpn::{DataPath, DpNodeKind};

use crate::{Floorplan, ModuleLibrary};

/// Itemized hardware cost of a data path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Functional-unit area.
    pub modules: f64,
    /// Register area.
    pub registers: f64,
    /// Multiplexer area (2-to-1 equivalents at fan-in points).
    pub muxes: f64,
    /// Wiring area from the floorplan.
    pub wires: f64,
}

impl CostBreakdown {
    /// Total area `H`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.modules + self.registers + self.muxes + self.wires
    }
}

/// Estimate the hardware cost of `dp` at `bits` data width: floorplans
/// the data path and applies the paper's formula. Ports, constants and
/// condition outputs occupy no area (pads are not counted); their wires
/// are.
///
/// # Example
///
/// ```
/// use hlts_cost::{estimate_cost, ModuleLibrary};
/// use hlts_etpn::DataPath;
///
/// let lib = ModuleLibrary::new();
/// let empty = estimate_cost(&DataPath::new(), 8, &lib);
/// assert_eq!(empty.total(), 0.0);
/// ```
#[must_use]
pub fn estimate_cost(dp: &DataPath, bits: u32, lib: &ModuleLibrary) -> CostBreakdown {
    let fp = Floorplan::place(dp);
    let mut cost = CostBreakdown::default();
    for node in dp.nodes() {
        match node.kind() {
            DpNodeKind::Module { kinds, .. } => {
                cost.modules += lib.fu_area(kinds, bits);
            }
            DpNodeKind::Register(_) => {
                cost.registers += lib.register_area(bits);
            }
            _ => {}
        }
    }
    cost.muxes = lib.mux_area(dp.mux_count(), bits);
    for arc in dp.arcs() {
        // condition wires are single-bit
        let w = if matches!(dp.node(arc.to()).kind(), DpNodeKind::ConditionOut(_)) {
            1
        } else {
            bits
        };
        cost.wires += lib.wire_area(fp.wire_len(arc.from(), arc.to()), w);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_alloc::Allocation;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};
    use hlts_etpn::Etpn;
    use hlts_sched::{list_schedule, ListPriority};

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    fn lower(d: &Dfg, alloc: &Allocation) -> DataPath {
        let s = list_schedule(d, &alloc.conflict_groups(), ListPriority::CriticalPath).unwrap();
        Etpn::from_parts(d, &s, alloc).unwrap().data_path().clone()
    }

    #[test]
    fn cost_grows_with_bits() {
        let d = small();
        let alloc = Allocation::one_to_one(&d);
        let dp = lower(&d, &alloc);
        let lib = ModuleLibrary::new();
        let c4 = estimate_cost(&dp, 4, &lib).total();
        let c8 = estimate_cost(&dp, 8, &lib).total();
        let c16 = estimate_cost(&dp, 16, &lib).total();
        assert!(c4 < c8 && c8 < c16);
        // multiplier quadratic term: 16-bit more than 2x the 8-bit cost
        assert!(c16 > 2.0 * c8);
    }

    #[test]
    fn register_merging_reduces_cost() {
        let d = small();
        let alloc = Allocation::one_to_one(&d);
        let dp1 = lower(&d, &alloc);
        let lib = ModuleLibrary::new();
        let base = estimate_cost(&dp1, 8, &lib);

        let mut merged = Allocation::one_to_one(&d);
        let va = d.value_by_name("a").unwrap();
        let vy = d.value_by_name("y").unwrap();
        merged
            .merge_registers(
                merged.register_of(va).unwrap(),
                merged.register_of(vy).unwrap(),
            )
            .unwrap();
        let dp2 = lower(&d, &merged);
        let after = estimate_cost(&dp2, 8, &lib);
        assert!(after.registers < base.registers);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let d = small();
        let alloc = Allocation::one_to_one(&d);
        let dp = lower(&d, &alloc);
        let lib = ModuleLibrary::new();
        let c = estimate_cost(&dp, 8, &lib);
        assert!((c.total() - (c.modules + c.registers + c.muxes + c.wires)).abs() < 1e-12);
        assert!(c.modules > 0.0 && c.registers > 0.0 && c.wires > 0.0);
    }

    #[test]
    fn condition_wires_are_single_bit() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let _f = b.op("N1", OpKind::Lt, &[a, c], "f").unwrap();
        let d = b.finish().unwrap();
        let alloc = Allocation::one_to_one(&d);
        let dp = lower(&d, &alloc);
        let lib = ModuleLibrary::new();
        let w16 = estimate_cost(&dp, 16, &lib);
        let w4 = estimate_cost(&dp, 4, &lib);
        // wires scale less than 4x because the condition wire stays 1-bit
        assert!(w16.wires < 4.0 * w4.wires);
    }
}
