//! The module library: area parameters per operation kind and bit width.

use std::collections::BTreeSet;

use hlts_dfg::{FuClass, OpKind};

/// Area parameters for data-path components.
///
/// All areas are in abstract units (≈ mm² for a mid-1990s process, to
/// keep the paper's reported magnitudes recognizable). Functional units
/// scale linearly with bit width except the array multiplier, which
/// scales quadratically.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleLibrary {
    /// Register area per bit.
    pub register_per_bit: f64,
    /// Ripple adder/subtractor area per bit.
    pub addsub_per_bit: f64,
    /// Extra per-bit area when one unit supports both add and sub (or
    /// more ALU functions).
    pub alu_extra_per_bit: f64,
    /// Array multiplier area per bit².
    pub mul_per_bit2: f64,
    /// Comparator area per bit.
    pub cmp_per_bit: f64,
    /// Logic unit area per bit.
    pub logic_per_bit: f64,
    /// Shifter area per bit.
    pub shift_per_bit: f64,
    /// 2-to-1 multiplexer area per bit.
    pub mux_per_bit: f64,
    /// Wire area per grid-unit length per bit.
    pub wire_per_unit_bit: f64,
}

impl Default for ModuleLibrary {
    fn default() -> Self {
        ModuleLibrary {
            register_per_bit: 0.0045,
            addsub_per_bit: 0.006,
            alu_extra_per_bit: 0.002,
            mul_per_bit2: 0.002,
            cmp_per_bit: 0.004,
            logic_per_bit: 0.003,
            shift_per_bit: 0.002,
            mux_per_bit: 0.001,
            // wires are a fine-grained tie-breaking term: small enough not
            // to drown the component areas in floorplan noise
            wire_per_unit_bit: 0.00005,
        }
    }
}

impl ModuleLibrary {
    /// The default 1990s-calibrated library.
    #[must_use]
    pub fn new() -> Self {
        ModuleLibrary::default()
    }

    /// Area of a functional unit supporting the given operation kinds at
    /// `bits` data width. Multi-function ALUs pay the dominant function
    /// plus an upgrade term per extra supported class.
    #[must_use]
    pub fn fu_area(&self, kinds: &BTreeSet<OpKind>, bits: u32) -> f64 {
        let b = f64::from(bits);
        let classes: BTreeSet<FuClass> = kinds.iter().map(|k| k.fu_class()).collect();
        let mut area: f64 = 0.0;
        for class in &classes {
            area = area.max(match class {
                FuClass::Multiplier => self.mul_per_bit2 * b * b,
                FuClass::AddSub => self.addsub_per_bit * b,
                FuClass::Compare => self.cmp_per_bit * b,
                FuClass::Logic => self.logic_per_bit * b,
                FuClass::Shift => self.shift_per_bit * b,
                FuClass::Move => 0.0,
                // future classes: price like an ALU slice
                _ => self.addsub_per_bit * b,
            });
        }
        // distinct operations beyond the first on one unit cost control
        // and datapath upgrades (e.g. add+sub ALU, added comparator mode)
        let extra = kinds.len().saturating_sub(1) as f64;
        area + extra * self.alu_extra_per_bit * b
    }

    /// Area of one register at `bits` width.
    #[must_use]
    pub fn register_area(&self, bits: u32) -> f64 {
        self.register_per_bit * f64::from(bits)
    }

    /// Area of `n` 2-to-1 multiplexer equivalents at `bits` width.
    #[must_use]
    pub fn mux_area(&self, n: usize, bits: u32) -> f64 {
        self.mux_per_bit * f64::from(bits) * n as f64
    }

    /// Wire area of a connection of `len` grid units at `bits` width
    /// (the paper's `Len(A_j) × Wid(A_j)` with the width factor folded
    /// in).
    #[must_use]
    pub fn wire_area(&self, len: f64, bits: u32) -> f64 {
        self.wire_per_unit_bit * f64::from(bits) * len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_scales_quadratically() {
        let lib = ModuleLibrary::new();
        let mul = BTreeSet::from([OpKind::Mul]);
        let a4 = lib.fu_area(&mul, 4);
        let a8 = lib.fu_area(&mul, 8);
        let a16 = lib.fu_area(&mul, 16);
        assert!((a8 / a4 - 4.0).abs() < 1e-9);
        assert!((a16 / a8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn adder_scales_linearly() {
        let lib = ModuleLibrary::new();
        let add = BTreeSet::from([OpKind::Add]);
        assert!((lib.fu_area(&add, 16) / lib.fu_area(&add, 4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn alu_costs_more_than_adder() {
        let lib = ModuleLibrary::new();
        let add = BTreeSet::from([OpKind::Add]);
        let addsub = BTreeSet::from([OpKind::Add, OpKind::Sub]);
        assert!(lib.fu_area(&addsub, 8) > lib.fu_area(&add, 8));
    }

    #[test]
    fn multiplier_dominates_16bit_register_file() {
        // at 16 bits one multiplier outweighs several registers —
        // matching the paper's area profile where 16-bit areas are
        // multiplier-dominated
        let lib = ModuleLibrary::new();
        let mul = BTreeSet::from([OpKind::Mul]);
        assert!(lib.fu_area(&mul, 16) > 7.0 * lib.register_area(16));
    }

    #[test]
    fn mux_and_wire_scale_with_count_and_length() {
        let lib = ModuleLibrary::new();
        assert!((lib.mux_area(4, 8) - 4.0 * lib.mux_area(1, 8)).abs() < 1e-12);
        assert!((lib.wire_area(10.0, 8) - 10.0 * lib.wire_area(1.0, 8)).abs() < 1e-12);
    }
}
