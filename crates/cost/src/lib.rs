//! # hlts-cost — module library, floorplanning and area estimation
//!
//! The hardware-cost half of the paper's ΔC = α·ΔE + β·ΔH objective:
//!
//! * [`ModuleLibrary`] — per-bit-width area parameters for functional
//!   units, registers, multiplexers and wiring (the "module parameters
//!   stored in the module library" of §4.2);
//! * [`Floorplan`] — the connectivity-driven constructive placement of
//!   Peng & Kuchcinski (TCAD 1994) §4.2: data-path nodes are placed on a
//!   grid, each next to the already-placed nodes it connects to most;
//! * [`estimate_cost`] — the paper's estimate
//!   `H = Σ Area(V_i) + Σ Len(A_j) × Wid(A_j)` over a floorplanned data
//!   path.
//!
//! Areas are in abstract mm²-like units calibrated so that the Dct
//! benchmark's CAMAD-style 4-bit implementation lands near the paper's
//! 0.607 mm² (see `DESIGN.md` §2); only relative values drive synthesis
//! decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod floorplan;
mod library;

pub use estimate::{estimate_cost, CostBreakdown};
pub use floorplan::Floorplan;
pub use library::ModuleLibrary;
