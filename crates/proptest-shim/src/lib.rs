//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! crate provides the subset of the proptest API that hlts's property
//! tests use, under the same paths: the [`proptest!`] macro, the
//! [`Strategy`] trait, [`any`], range and tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the panic message instead of being minimized. Tests are seeded
//!   deterministically from the test's name, so a failure reproduces
//!   exactly on re-run.
//! * **`prop_assert*` panics** (like `assert!`) instead of returning a
//!   `TestCaseError`, which is indistinguishable for `#[test]` usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values — the (non-shrinking) core of
/// proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, spanning several magnitudes.
        let m: f64 = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.gen::<u64>() % 64) as i32 - 32;
        let sign = if rng.gen::<u64>() & 1 == 1 { -1.0 } else { 1.0 };
        sign * m * (exp as f64).exp2()
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The unconstrained strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait UniformRange: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn uniform(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn uniform(lo: Self, hi: Self, rng: &mut StdRng) -> Self {
                let span = (hi as i128) - (lo as i128);
                assert!(span > 0, "empty range strategy");
                let off = (rng.gen::<u64>() as i128).rem_euclid(span);
                ((lo as i128) + off) as $t
            }
        }
    )*};
}
impl_uniform_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformRange> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::uniform(self.start, self.end, rng)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let u = (rng.gen::<u64>() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, UniformRange};
    use rand::rngs::StdRng;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: a vector of `element` draws whose
    /// length is uniform in `len_range`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                usize::uniform(self.size.start, self.size.end, rng)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic 64-bit seed from a test's name (FNV-1a).
#[must_use]
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fresh RNG for one property run.
#[must_use]
pub fn runner_rng(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_of(name))
}

/// The proptest test-block macro: each `#[test] fn name(x in strat, ..)`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` with proptest's name (panics instead of returning an error).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::runner_rng("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::runner_rng("vec");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(any::<u8>(), 2..9), &mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn seeding_is_stable() {
        let mut a = crate::runner_rng("x");
        let mut b = crate::runner_rng("x");
        let va = Strategy::generate(&prop::collection::vec(any::<u64>(), 4..5), &mut a);
        let vb = Strategy::generate(&prop::collection::vec(any::<u64>(), 4..5), &mut b);
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, and trailing commas.
        #[test]
        fn macro_binds_tuples(pair in (any::<u8>(), 1u8..5), flag in any::<bool>(),) {
            let (x, k) = pair;
            prop_assert!((1..5).contains(&k), "k={k} x={x} flag={flag}");
        }
    }
}
