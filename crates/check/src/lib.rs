//! # hlts-check — cross-crate invariant auditing and fault injection
//!
//! The synthesis kernel mutates one shared design state in place
//! through a transaction journal and fans it out across worker pools;
//! a single bad rollback or poisoned mutex no longer loses one cloned
//! trial, it corrupts the whole run. This crate is the validation and
//! recovery layer that makes that architecture safe to evolve:
//!
//! * [`audit_design`] — a structural invariant auditor over the
//!   (graph, schedule, allocation) triple that collects **every**
//!   violation into an [`AuditReport`] instead of stopping at the
//!   first: binding consistency (each operation bound to a live module
//!   whose roster lists it back, each register-occupying value bound to
//!   a live register), schedule legality under sharing constraints
//!   (module-sharing operations in pairwise distinct control steps,
//!   register-sharing values with disjoint lifetimes, precedence arcs
//!   respected), and arc-overlay well-formedness (in-range endpoints,
//!   no strict self-arcs, no duplicates, acyclic);
//! * [`audit_txn_balance`] — the transaction-journal balance check:
//!   the monotone counters can never show more closed transactions
//!   than opened ones or more undo operations replayed than recorded;
//! * [`faults`] — deliberately armed failure points ([`FaultPlan`])
//!   behind the `test-faults` feature, used by the fault-injection
//!   suites to kill workers mid-sweep, corrupt journal lines and force
//!   rollbacks, asserting graceful degradation.
//!
//! The crate sits **below** `hlts-core`: it depends only on the graph,
//! schedule and allocation layers, so the core's merge loop (and the
//! DSE runner above it) can call the auditor after every rollback
//! without a dependency cycle.
//!
//! [`FaultPlan`]: faults::FaultPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod audit;
pub mod faults;

pub use audit::{audit_design, audit_txn_balance, AuditReport, AuditViolation};
