//! Deliberately armed failure points for the fault-injection suites.
//!
//! Production code calls [`fire`] at a handful of named sites (worker
//! loops, journal appends, the trial-merge rollback path). Without the
//! `test-faults` feature the call is a constant-`false` inline stub —
//! no global state, no branches worth measuring. With the feature, a
//! test arms a [`FaultPlan`] and holds the returned [`FaultGuard`]:
//! each armed site then fires a bounded number of times, and dropping
//! the guard disarms everything, so tests cannot leak faults into each
//! other.
//!
//! The plan lives behind one process-wide lock that fault tests also
//! serialize on by holding the guard — two concurrently armed plans
//! would otherwise race for the same sites.

/// Canonical site names, so tests and call sites cannot drift apart.
pub mod sites {
    /// A DSE worker thread dies before claiming its next point.
    pub const DSE_WORKER_KILL: &str = "dse::worker::kill";
    /// Panic inside the journal append while the sink lock is held
    /// (poisons the sink mutex).
    pub const DSE_SINK_PANIC: &str = "dse::sink::panic";
    /// Corrupt the bytes of one journal point line as it is written.
    pub const DSE_SINK_CORRUPT: &str = "dse::sink::corrupt";
    /// Force a trial merge to roll back after a successful apply,
    /// before pricing.
    pub const CORE_FORCE_ROLLBACK: &str = "core::trial_merge::force_rollback";
    /// A job-engine worker thread dies right after claiming a job from
    /// the queue (the job is reported failed; the thread is gone).
    pub const JOBS_WORKER_KILL: &str = "jobs::worker::kill";
    /// A tcov grading worker dies before claiming its next fault
    /// partition / PODEM target (the merge pass recomputes what the
    /// dead worker never delivered, so the report stays correct).
    pub const TCOV_WORKER_KILL: &str = "tcov::worker::kill";
}

#[cfg(feature = "test-faults")]
mod armed {
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// One armed site: fires `remaining` more times.
    #[derive(Debug, Clone)]
    struct Armed {
        site: &'static str,
        remaining: u64,
    }

    #[derive(Debug, Default)]
    struct PlanState {
        armed: Vec<Armed>,
        fired: Vec<&'static str>,
    }

    fn plan() -> MutexGuard<'static, PlanState> {
        static PLAN: OnceLock<Mutex<PlanState>> = OnceLock::new();
        // Fault tests panic on purpose while the lock may be held by a
        // `fire` call on the panicking thread's stack — recover instead
        // of cascading the poison into unrelated tests.
        PLAN.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// A builder of armed failure points.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        armed: Vec<Armed>,
    }

    impl FaultPlan {
        /// An empty plan.
        #[must_use]
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Arm `site` to fire on its next `times` queries.
        #[must_use]
        pub fn arm(mut self, site: &'static str, times: u64) -> Self {
            self.armed.push(Armed {
                site,
                remaining: times,
            });
            self
        }

        /// Install the plan process-wide, replacing any previous one.
        /// The returned guard disarms everything when dropped.
        #[must_use]
        pub fn install(self) -> FaultGuard {
            let mut state = plan();
            state.armed = self.armed;
            state.fired.clear();
            FaultGuard { _private: () }
        }
    }

    /// Keeps a [`FaultPlan`] armed; dropping it disarms all sites.
    #[derive(Debug)]
    pub struct FaultGuard {
        _private: (),
    }

    impl FaultGuard {
        /// The sites that actually fired since installation, in order.
        #[must_use]
        pub fn fired(&self) -> Vec<&'static str> {
            plan().fired.clone()
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            let mut state = plan();
            state.armed.clear();
            state.fired.clear();
        }
    }

    /// Whether the named site should fail now. Consumes one charge of
    /// the site's arming.
    pub fn fire(site: &'static str) -> bool {
        let mut state = plan();
        let Some(entry) = state
            .armed
            .iter_mut()
            .find(|a| a.site == site && a.remaining > 0)
        else {
            return false;
        };
        entry.remaining -= 1;
        state.fired.push(site);
        true
    }
}

#[cfg(feature = "test-faults")]
pub use armed::{fire, FaultGuard, FaultPlan};

/// Whether the named site should fail now. Without the `test-faults`
/// feature this is a constant-`false` stub the optimizer removes.
#[cfg(not(feature = "test-faults"))]
#[inline(always)]
#[must_use]
pub fn fire(_site: &'static str) -> bool {
    false
}

#[cfg(all(test, feature = "test-faults"))]
mod tests {
    use super::*;

    #[test]
    fn charges_deplete_and_guard_disarms() {
        let guard = FaultPlan::new().arm(sites::DSE_WORKER_KILL, 2).install();
        assert!(fire(sites::DSE_WORKER_KILL));
        assert!(fire(sites::DSE_WORKER_KILL));
        assert!(!fire(sites::DSE_WORKER_KILL), "charges are bounded");
        assert!(!fire(sites::DSE_SINK_PANIC), "unarmed sites never fire");
        assert_eq!(
            guard.fired(),
            vec![sites::DSE_WORKER_KILL, sites::DSE_WORKER_KILL]
        );
        drop(guard);
        let guard2 = FaultPlan::new().arm(sites::DSE_WORKER_KILL, 1).install();
        assert!(fire(sites::DSE_WORKER_KILL));
        drop(guard2);
        assert!(!fire(sites::DSE_WORKER_KILL), "dropped guard disarms");
    }
}
