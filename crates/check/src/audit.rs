//! The structural invariant auditor over a design triple.
//!
//! [`audit_design`] re-derives, from first principles, every invariant
//! the synthesis kernel is supposed to maintain and reports **all**
//! violations it finds. It deliberately shares no code with the
//! incremental machinery it checks: the binding roster is walked in
//! both directions, schedule legality is recomputed from the raw arc
//! lists, and lifetime disjointness is recomputed from a fresh
//! [`Lifetimes`] analysis — so a bug in the journaled undo path cannot
//! hide behind the same bug in the checker.

use std::fmt;

use hlts_alloc::Allocation;
use hlts_dfg::{Dfg, OpId, ValueId};
use hlts_sched::{Lifetimes, Schedule};

/// One violated invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditViolation {
    /// The binding's op/value tables do not cover the graph.
    BindingShape {
        /// Human-readable description of the shape mismatch.
        detail: String,
    },
    /// An operation's module binding names a dead (absorbed) module.
    OpBoundToDeadModule {
        /// The operation.
        op: String,
    },
    /// A live module's roster and the per-op binding disagree.
    ModuleRosterMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A register-occupying value is bound to no register, or to a dead
    /// one.
    ValueUnbound {
        /// The value.
        value: String,
    },
    /// A live register's roster and the per-value binding disagree.
    RegisterRosterMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A hardwired value (constant or condition flag) is bound to a
    /// register.
    NeedlessRegister {
        /// The value.
        value: String,
    },
    /// A precedence relation (data edge or merge-imposed arc) is not
    /// respected by the schedule.
    PrecedenceViolated {
        /// Source operation.
        from: String,
        /// Target operation.
        to: String,
        /// Whether the arc is weak (`<=`) rather than strict (`<`).
        weak: bool,
        /// The two scheduled steps, source first.
        steps: (usize, usize),
    },
    /// An operation is scheduled at or past the schedule's latency.
    StepOutOfRange {
        /// The operation.
        op: String,
        /// Its step.
        step: usize,
        /// The schedule's latency.
        latency: usize,
    },
    /// Two operations sharing one module occupy the same control step.
    ModuleStepConflict {
        /// The module.
        module: String,
        /// The clashing operations.
        ops: (String, String),
        /// The shared step.
        step: usize,
    },
    /// Two values sharing one register have overlapping lifetimes.
    LifetimeOverlap {
        /// The register.
        register: String,
        /// The clashing values.
        values: (String, String),
    },
    /// An overlay arc references an operation outside the graph.
    ArcOutOfRange {
        /// Human-readable description of the offending arc.
        detail: String,
    },
    /// A strict overlay arc loops an operation onto itself.
    SelfArc {
        /// The operation.
        op: String,
    },
    /// The same arc appears twice in one overlay.
    DuplicateArc {
        /// Human-readable description of the duplicated arc.
        detail: String,
    },
    /// The strict precedence relation (data edges plus overlay) is
    /// cyclic.
    PrecedenceCycle {
        /// The cycle detector's message.
        detail: String,
    },
    /// The transaction counters are impossible: more transactions
    /// closed than opened, or more undo operations replayed than
    /// recorded.
    TxnImbalance {
        /// Human-readable description of the imbalance.
        detail: String,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::BindingShape { detail } => {
                write!(f, "binding shape: {detail}")
            }
            AuditViolation::OpBoundToDeadModule { op } => {
                write!(f, "op `{op}` is bound to a dead module")
            }
            AuditViolation::ModuleRosterMismatch { detail } => {
                write!(f, "module roster: {detail}")
            }
            AuditViolation::ValueUnbound { value } => {
                write!(f, "value `{value}` occupies no live register")
            }
            AuditViolation::RegisterRosterMismatch { detail } => {
                write!(f, "register roster: {detail}")
            }
            AuditViolation::NeedlessRegister { value } => {
                write!(f, "hardwired value `{value}` is bound to a register")
            }
            AuditViolation::PrecedenceViolated {
                from,
                to,
                weak,
                steps,
            } => write!(
                f,
                "precedence `{from}` {} `{to}` violated (steps {} and {})",
                if *weak { "<=" } else { "<" },
                steps.0,
                steps.1
            ),
            AuditViolation::StepOutOfRange { op, step, latency } => {
                write!(f, "op `{op}` scheduled at step {step} >= latency {latency}")
            }
            AuditViolation::ModuleStepConflict { module, ops, step } => write!(
                f,
                "module {module}: ops `{}` and `{}` share step {step}",
                ops.0, ops.1
            ),
            AuditViolation::LifetimeOverlap { register, values } => write!(
                f,
                "register {register}: lifetimes of `{}` and `{}` overlap",
                values.0, values.1
            ),
            AuditViolation::ArcOutOfRange { detail } => {
                write!(f, "overlay arc out of range: {detail}")
            }
            AuditViolation::SelfArc { op } => {
                write!(f, "strict overlay arc loops `{op}` onto itself")
            }
            AuditViolation::DuplicateArc { detail } => {
                write!(f, "duplicate overlay arc: {detail}")
            }
            AuditViolation::PrecedenceCycle { detail } => {
                write!(f, "precedence relation is cyclic: {detail}")
            }
            AuditViolation::TxnImbalance { detail } => {
                write!(f, "transaction counters imbalanced: {detail}")
            }
        }
    }
}

/// Every violation [`audit_design`] found, in discovery order.
///
/// Renders (via [`fmt::Display`]) as the failed-audit report the CLI's
/// `--audit` flag prints: a headline count followed by one indented
/// line per violation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the audit found nothing wrong.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, in discovery order.
    #[must_use]
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Record a violation.
    pub fn push(&mut self, v: AuditViolation) {
        self.violations.push(v);
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit: clean");
        }
        writeln!(f, "audit: {} violation(s)", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Whether `value` occupies a register (mirrors the allocation layer's
/// convention: constants are hardwired, condition flags feed the
/// controller).
fn needs_register(dfg: &Dfg, value: ValueId) -> bool {
    let v = dfg.value(value);
    !v.kind().is_const() && !v.is_condition()
}

/// Audit the structural invariants of a (graph, schedule, allocation)
/// triple, collecting every violation.
///
/// Checks, in order: binding consistency in both directions, schedule
/// legality (precedence arcs, step ranges, module-sharing step
/// disjointness, register-sharing lifetime disjointness) and the
/// graph's arc-overlay well-formedness.
#[must_use]
pub fn audit_design(dfg: &Dfg, schedule: &Schedule, allocation: &Allocation) -> AuditReport {
    let mut report = AuditReport::default();
    audit_binding(dfg, allocation, &mut report);
    audit_schedule(dfg, schedule, &mut report);
    audit_sharing(dfg, schedule, allocation, &mut report);
    audit_overlay(dfg, &mut report);
    report
}

/// Binding consistency: the op→module and value→register maps cover
/// the graph, point at live entries, and agree with the live entries'
/// rosters in both directions.
fn audit_binding(dfg: &Dfg, allocation: &Allocation, report: &mut AuditReport) {
    if !allocation.covers(dfg) {
        report.push(AuditViolation::BindingShape {
            detail: format!(
                "binding tables sized for another graph ({} ops, {} values expected)",
                dfg.num_ops(),
                dfg.num_values()
            ),
        });
        return; // indices below would be meaningless
    }

    // Ops → modules, and back through the roster.
    for op in dfg.ops() {
        let m = allocation.module_of(op.id());
        match allocation.module(m) {
            None => report.push(AuditViolation::OpBoundToDeadModule {
                op: op.name().to_owned(),
            }),
            Some(module) if !module.ops().contains(&op.id()) => {
                report.push(AuditViolation::ModuleRosterMismatch {
                    detail: format!("op `{}` bound to {m} but absent from its roster", op.name()),
                });
            }
            Some(_) => {}
        }
    }
    // Modules → ops: every rostered op must be bound right back.
    for module in allocation.modules() {
        for &o in module.ops() {
            if o.index() >= dfg.num_ops() {
                report.push(AuditViolation::ModuleRosterMismatch {
                    detail: format!("{} lists out-of-range op index {}", module.id(), o.index()),
                });
            } else if allocation.module_of(o) != module.id() {
                report.push(AuditViolation::ModuleRosterMismatch {
                    detail: format!(
                        "{} lists op `{}` bound elsewhere",
                        module.id(),
                        dfg.op(o).name()
                    ),
                });
            }
        }
    }

    // Values → registers, and back.
    for v in dfg.values() {
        let binding = allocation.register_of(v.id());
        if needs_register(dfg, v.id()) {
            match binding.and_then(|r| allocation.register(r)) {
                None => report.push(AuditViolation::ValueUnbound {
                    value: v.name().to_owned(),
                }),
                Some(register) if !register.values().contains(&v.id()) => {
                    report.push(AuditViolation::RegisterRosterMismatch {
                        detail: format!(
                            "value `{}` bound to {} but absent from its roster",
                            v.name(),
                            register.id()
                        ),
                    });
                }
                Some(_) => {}
            }
        } else if binding.is_some() {
            report.push(AuditViolation::NeedlessRegister {
                value: v.name().to_owned(),
            });
        }
    }
    for register in allocation.registers() {
        for &val in register.values() {
            if val.index() >= dfg.num_values() {
                report.push(AuditViolation::RegisterRosterMismatch {
                    detail: format!(
                        "{} lists out-of-range value index {}",
                        register.id(),
                        val.index()
                    ),
                });
            } else if allocation.register_of(val) != Some(register.id()) {
                report.push(AuditViolation::RegisterRosterMismatch {
                    detail: format!(
                        "{} lists value `{}` bound elsewhere",
                        register.id(),
                        dfg.value(val).name()
                    ),
                });
            }
        }
    }
}

/// Schedule legality against the raw precedence relation: data edges
/// and strict overlay arcs need `step(from) < step(to)`, weak arcs
/// allow equality, and every step lies inside the latency.
fn audit_schedule(dfg: &Dfg, schedule: &Schedule, report: &mut AuditReport) {
    let latency = schedule.num_steps();
    for op in dfg.ops() {
        let step = schedule.step_of(op.id());
        if step >= latency {
            report.push(AuditViolation::StepOutOfRange {
                op: op.name().to_owned(),
                step,
                latency,
            });
        }
        // Data edges: each input defined strictly earlier.
        for &v in op.inputs() {
            if let Some(def) = dfg.def_of(v) {
                check_arc(dfg, schedule, def, op.id(), false, report);
            }
        }
    }
    for &(from, to) in dfg.extra_precedence() {
        if from.index() < dfg.num_ops() && to.index() < dfg.num_ops() {
            check_arc(dfg, schedule, from, to, false, report);
        }
    }
    for &(from, to) in dfg.weak_precedence() {
        if from.index() < dfg.num_ops() && to.index() < dfg.num_ops() {
            check_arc(dfg, schedule, from, to, true, report);
        }
    }
}

fn check_arc(
    dfg: &Dfg,
    schedule: &Schedule,
    from: OpId,
    to: OpId,
    weak: bool,
    report: &mut AuditReport,
) {
    let (sf, st) = (schedule.step_of(from), schedule.step_of(to));
    let ok = if weak { sf <= st } else { sf < st };
    if !ok {
        report.push(AuditViolation::PrecedenceViolated {
            from: dfg.op(from).name().to_owned(),
            to: dfg.op(to).name().to_owned(),
            weak,
            steps: (sf, st),
        });
    }
}

/// Sharing legality: module-sharing operations in pairwise distinct
/// steps, register-sharing values with disjoint lifetimes (recomputed
/// from a fresh analysis).
fn audit_sharing(dfg: &Dfg, schedule: &Schedule, allocation: &Allocation, report: &mut AuditReport) {
    if !allocation.covers(dfg) {
        return; // already reported as a shape violation
    }
    for module in allocation.modules() {
        let ops = module.ops();
        for (i, &a) in ops.iter().enumerate() {
            for &b in &ops[i + 1..] {
                if a.index() >= dfg.num_ops() || b.index() >= dfg.num_ops() {
                    continue; // roster mismatch already reported
                }
                let step = schedule.step_of(a);
                if step == schedule.step_of(b) {
                    report.push(AuditViolation::ModuleStepConflict {
                        module: module.id().to_string(),
                        ops: (dfg.op(a).name().to_owned(), dfg.op(b).name().to_owned()),
                        step,
                    });
                }
            }
        }
    }
    let lifetimes = Lifetimes::compute(dfg, schedule);
    for register in allocation.registers() {
        let values = register.values();
        for (i, &a) in values.iter().enumerate() {
            for &b in &values[i + 1..] {
                if a.index() >= dfg.num_values() || b.index() >= dfg.num_values() {
                    continue;
                }
                if !lifetimes.disjoint(a, b) {
                    report.push(AuditViolation::LifetimeOverlap {
                        register: register.id().to_string(),
                        values: (
                            dfg.value(a).name().to_owned(),
                            dfg.value(b).name().to_owned(),
                        ),
                    });
                }
            }
        }
    }
}

/// Arc-overlay well-formedness: in-range endpoints, no strict
/// self-arcs, no duplicates within an overlay, and an acyclic strict
/// relation.
fn audit_overlay(dfg: &Dfg, report: &mut AuditReport) {
    let n = dfg.num_ops();
    for (weak, arcs) in [(false, dfg.extra_precedence()), (true, dfg.weak_precedence())] {
        let label = if weak { "weak" } else { "strict" };
        for (i, &(from, to)) in arcs.iter().enumerate() {
            if from.index() >= n || to.index() >= n {
                report.push(AuditViolation::ArcOutOfRange {
                    detail: format!(
                        "{label} arc ({}, {}) in a graph of {n} ops",
                        from.index(),
                        to.index()
                    ),
                });
                continue;
            }
            if !weak && from == to {
                report.push(AuditViolation::SelfArc {
                    op: dfg.op(from).name().to_owned(),
                });
            }
            if arcs[..i].contains(&(from, to)) {
                report.push(AuditViolation::DuplicateArc {
                    detail: format!(
                        "{label} arc `{}` -> `{}`",
                        dfg.op(from).name(),
                        dfg.op(to).name()
                    ),
                });
            }
        }
    }
    if let Err(e) = dfg.topo_order() {
        report.push(AuditViolation::PrecedenceCycle {
            detail: e.to_string(),
        });
    }
}

/// Audit the transaction-layer counters for impossible balances.
///
/// The counters are cumulative and may be read while transactions are
/// open elsewhere (the counter block is shared across forks and
/// threads), so the check only asserts the relations that hold at
/// **every** instant: transactions cannot close (commit or roll back)
/// more often than they were opened, and undo operations cannot be
/// replayed more often than they were recorded.
pub fn audit_txn_balance(
    report: &mut AuditReport,
    begun: u64,
    committed: u64,
    rolled_back: u64,
    ops_recorded: u64,
    ops_replayed: u64,
) {
    if committed + rolled_back > begun {
        report.push(AuditViolation::TxnImbalance {
            detail: format!(
                "{committed} committed + {rolled_back} rolled back > {begun} begun"
            ),
        });
    }
    if ops_replayed > ops_recorded {
        report.push(AuditViolation::TxnImbalance {
            detail: format!("{ops_replayed} undo ops replayed > {ops_recorded} recorded"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_sched::{list_schedule, ListPriority};

    fn fixture() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Mul, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    fn triple() -> (Dfg, Schedule, Allocation) {
        let dfg = fixture();
        let allocation = Allocation::one_to_one(&dfg);
        let schedule = list_schedule(&dfg, &[], ListPriority::CriticalPath).unwrap();
        (dfg, schedule, allocation)
    }

    #[test]
    fn clean_initial_state_audits_clean() {
        let (dfg, schedule, allocation) = triple();
        let report = audit_design(&dfg, &schedule, &allocation);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.to_string(), "audit: clean");
    }

    #[test]
    fn module_step_conflict_is_detected() {
        let (dfg, schedule, _) = triple();
        // Bind the two same-step adds onto one module without the
        // required reschedule: an illegal sharing.
        let n1 = dfg.op_by_name("N1").unwrap();
        let n2 = dfg.op_by_name("N2").unwrap();
        let n3 = dfg.op_by_name("N3").unwrap();
        let values: Vec<Vec<_>> = dfg
            .values()
            .iter()
            .filter(|v| needs_register(&dfg, v.id()))
            .map(|v| vec![v.id()])
            .collect();
        let allocation =
            Allocation::from_groups(&dfg, &[vec![n1, n2], vec![n3]], &values).unwrap();
        let report = audit_design(&dfg, &schedule, &allocation);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, AuditViolation::ModuleStepConflict { .. })));
        assert!(report.to_string().contains("share step"));
    }

    #[test]
    fn lifetime_overlap_is_detected() {
        let (dfg, schedule, _) = triple();
        // t1 and t2 are both born after step 0 and read in step 1:
        // sharing a register overlaps.
        let vt1 = dfg.value_by_name("t1").unwrap();
        let vt2 = dfg.value_by_name("t2").unwrap();
        let mut groups: Vec<Vec<_>> = dfg
            .values()
            .iter()
            .filter(|v| needs_register(&dfg, v.id()) && v.id() != vt1 && v.id() != vt2)
            .map(|v| vec![v.id()])
            .collect();
        groups.push(vec![vt1, vt2]);
        let ops: Vec<Vec<_>> = dfg.ops().iter().map(|o| vec![o.id()]).collect();
        let allocation = Allocation::from_groups(&dfg, &ops, &groups).unwrap();
        let report = audit_design(&dfg, &schedule, &allocation);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, AuditViolation::LifetimeOverlap { .. })));
    }

    #[test]
    fn precedence_violation_is_detected() {
        let (mut dfg, schedule, allocation) = triple();
        // N1 and N2 are unordered (both feed N3) and share step 0 under
        // the stale schedule, so the new strict arc N2 -> N1 — legal
        // for the graph — is violated until a reschedule.
        let n1 = dfg.op_by_name("N1").unwrap();
        let n2 = dfg.op_by_name("N2").unwrap();
        dfg.add_precedence(n2, n1).unwrap();
        let report = audit_design(&dfg, &schedule, &allocation);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, AuditViolation::PrecedenceViolated { weak: false, .. })));
    }

    #[test]
    fn txn_balance_flags_impossible_counters() {
        let mut report = AuditReport::default();
        audit_txn_balance(&mut report, 5, 3, 2, 10, 10);
        assert!(report.is_clean());
        audit_txn_balance(&mut report, 5, 4, 2, 10, 11);
        assert_eq!(report.violations().len(), 2);
        assert!(report.to_string().contains("transaction counters"));
    }

    #[test]
    fn shape_mismatch_short_circuits_index_checks() {
        let (dfg, schedule, _) = triple();
        let other = {
            let mut b = DfgBuilder::new("o");
            let a = b.input("a");
            let y = b.op("M1", OpKind::Add, &[a, a], "y").unwrap();
            b.mark_output(y);
            b.finish().unwrap()
        };
        let allocation = Allocation::one_to_one(&other);
        let report = audit_design(&dfg, &schedule, &allocation);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, AuditViolation::BindingShape { .. })));
    }
}
