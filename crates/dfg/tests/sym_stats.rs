//! Regression gate: the leak-backed interner is bounded under reuse.
//!
//! `hlts serve` keeps one process alive across thousands of requests,
//! so the process-global `Sym` table must not grow when the same text
//! flows through it again. This file holds a single test (nothing else
//! interns concurrently in this binary) so the before/after snapshots
//! are exact.

use hlts_dfg::sym;

#[test]
fn reparsing_the_same_text_does_not_grow_the_interner() {
    let text = "dfg sym_bound { input a, b, c;
        N1: p = a * b; N2: q = b * c; N3: r = p - q; N4: s = p + c;
        output r, s; }";
    let first = hlts_dfg::parse(text).expect("parses");
    let baseline = sym::stats();
    assert!(baseline.count > 0, "parsing interned the graph's names");

    for _ in 0..32 {
        let again = hlts_dfg::parse(text).expect("parses");
        assert_eq!(again.num_ops(), first.num_ops());
    }
    let after = sym::stats();
    assert_eq!(
        (after.count, after.bytes),
        (baseline.count, baseline.bytes),
        "re-parsing identical text must be interner-neutral"
    );

    // Emitting and re-parsing the emitted text is also neutral: emit
    // resolves the same symbols it parses back in.
    let emitted = hlts_dfg::emit(&first).expect("emits");
    let reparsed = hlts_dfg::parse(&emitted).expect("round-trips");
    assert_eq!(reparsed.num_ops(), first.num_ops());
    let after_roundtrip = sym::stats();
    assert_eq!(
        (after_roundtrip.count, after_roundtrip.bytes),
        (baseline.count, baseline.bytes),
        "emit/parse round-trip must be interner-neutral"
    );
}
