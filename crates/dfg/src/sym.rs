//! Interned name symbols.
//!
//! Every value/operation name in a [`Dfg`](crate::Dfg) is interned once
//! into a process-wide table and referred to by a dense [`Sym`] handle
//! afterwards. Name maps in the graph core are then keyed by a `u32`
//! instead of hashing `String`s, and resolving a symbol back to text is
//! an index load (`&'static str`), so nothing on the synthesis hot path
//! touches string storage.
//!
//! Interned strings are stored with program lifetime (`Box::leak`):
//! benchmark and generated-graph names are short and heavily shared
//! (`N17`, `t42`, ...), so the table stays tiny and deduplication makes
//! repeated graph construction free.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A handle to an interned string. `Copy`, 4 bytes, hashable as a `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Sym {
    /// Intern `s`, returning its stable handle. Idempotent: the same
    /// text always yields the same `Sym` within one process.
    #[must_use]
    pub fn intern(s: &str) -> Sym {
        let t = table();
        if let Some(&id) = t.read().expect("interner poisoned").map.get(s) {
            return Sym(id);
        }
        let mut w = t.write().expect("interner poisoned");
        if let Some(&id) = w.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(w.strings.len()).expect("interner capacity");
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Sym(id)
    }

    /// Look up the handle of an already-interned string without
    /// interning it — misses stay out of the table (used by name
    /// lookups on arbitrary caller input).
    #[must_use]
    pub fn lookup(s: &str) -> Option<Sym> {
        table()
            .read()
            .expect("interner poisoned")
            .map
            .get(s)
            .copied()
            .map(Sym)
    }

    /// Resolve the interned text. The returned reference has program
    /// lifetime.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        table().read().expect("interner poisoned").strings[self.0 as usize]
    }
}

/// A snapshot of the interner's size — the daemon's leak detector.
///
/// The table is leak-backed (`Box::leak`) and process-global, which is
/// free for a one-shot CLI but a liability in a long-running `hlts
/// serve` process *if* it grew per request. It must not: interning is
/// deduplicating, so re-parsing the same graph text or re-synthesizing
/// the same benchmark adds **zero** entries. [`stats`] makes that
/// checkable — the serve status report exposes it, and a regression
/// test pins "repeated synthesis does not grow the interner".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SymStats {
    /// Interned strings in the table.
    pub count: usize,
    /// Bytes of leaked string storage (text only, excluding the map
    /// and vector bookkeeping).
    pub bytes: usize,
}

/// The current size of the process-wide interner.
#[must_use]
pub fn stats() -> SymStats {
    let t = table().read().expect("interner poisoned");
    SymStats {
        count: t.strings.len(),
        bytes: t.strings.iter().map(|s| s.len()).sum(),
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("sym-test-a");
        let b = Sym::intern("sym-test-a");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "sym-test-a");
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(Sym::lookup("sym-test-never-interned-xyz"), None);
        let s = Sym::intern("sym-test-b");
        assert_eq!(Sym::lookup("sym-test-b"), Some(s));
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        assert_ne!(Sym::intern("sym-test-c"), Sym::intern("sym-test-d"));
    }

    // The strict no-growth regressions live in tests/sym_stats.rs and
    // the hlts-jobs engine tests, where no parallel unit test interns
    // concurrently; here only sanity of the counters themselves.
    #[test]
    fn stats_track_interned_text() {
        let probe = "sym-test-stats-probe";
        let _ = Sym::intern(probe);
        let s = stats();
        assert!(s.count >= 1);
        assert!(s.bytes >= probe.len());
    }
}
