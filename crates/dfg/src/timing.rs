//! ASAP/ALAP analysis and operation mobility.
//!
//! Every operation takes one control step (the DATE'98 benchmarks are
//! evaluated with single-cycle functional units). Steps are 0-based.

use crate::{Dfg, DfgError, OpId};

/// As-soon-as-possible / as-late-as-possible step bounds for every
/// operation, under the graph's full precedence relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AsapAlap {
    asap: Vec<usize>,
    alap: Vec<usize>,
    /// Topological order scratch, kept so `recompute` reuses capacity.
    order: Vec<OpId>,
    latency: usize,
}

impl AsapAlap {
    /// Compute ASAP and ALAP times.
    ///
    /// `latency` is the number of control steps available; `None` uses the
    /// critical-path length (the tightest feasible latency).
    ///
    /// # Errors
    ///
    /// * [`DfgError::PrecedenceCycle`] if the precedence relation is cyclic;
    /// * [`DfgError::InvalidId`] if `latency` is smaller than the critical
    ///   path (no feasible schedule).
    pub fn compute(dfg: &Dfg, latency: Option<usize>) -> Result<Self, DfgError> {
        let mut aa = AsapAlap::default();
        aa.recompute(dfg, latency)?;
        Ok(aa)
    }

    /// Recompute in place, reusing this analysis' buffers. With a
    /// long-lived `AsapAlap` (e.g. the scheduler's thread-local scratch)
    /// steady-state calls perform no heap allocation.
    ///
    /// # Errors
    ///
    /// As for [`AsapAlap::compute`].
    pub fn recompute(&mut self, dfg: &Dfg, latency: Option<usize>) -> Result<(), DfgError> {
        dfg.topo_order_into(&mut self.order)?;
        let n = dfg.num_ops();
        self.asap.clear();
        self.asap.resize(n, 0);
        for &u in &self.order {
            for p in dfg.preds(u) {
                self.asap[u.index()] = self.asap[u.index()].max(self.asap[p.index()] + 1);
            }
            for p in dfg.weak_preds(u) {
                self.asap[u.index()] = self.asap[u.index()].max(self.asap[p.index()]);
            }
        }
        let cp = self.asap.iter().copied().max().map_or(0, |m| m + 1);
        let latency = latency.unwrap_or(cp);
        if latency < cp {
            return Err(DfgError::InvalidId(format!(
                "latency {latency} below critical path {cp}"
            )));
        }
        self.alap.clear();
        self.alap.resize(n, latency.saturating_sub(1));
        for &u in self.order.iter().rev() {
            for s in dfg.succs(u) {
                self.alap[u.index()] = self.alap[u.index()].min(self.alap[s.index()].saturating_sub(1));
            }
            for s in dfg.weak_succs(u) {
                self.alap[u.index()] = self.alap[u.index()].min(self.alap[s.index()]);
            }
        }
        self.latency = latency;
        Ok(())
    }

    /// Earliest feasible step of `op`.
    #[must_use]
    pub fn asap(&self, op: OpId) -> usize {
        self.asap[op.index()]
    }

    /// Latest feasible step of `op`.
    #[must_use]
    pub fn alap(&self, op: OpId) -> usize {
        self.alap[op.index()]
    }

    /// The latency (number of control steps) used for the ALAP pass.
    #[must_use]
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Mobility of `op`: `alap - asap`.
    #[must_use]
    pub fn mobility(&self, op: OpId) -> Mobility {
        Mobility(self.alap[op.index()] - self.asap[op.index()])
    }
}

/// Scheduling freedom of an operation, in control steps.
///
/// Zero mobility means the operation is on the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mobility(pub usize);

impl Mobility {
    /// Whether the operation has no freedom (is critical).
    #[must_use]
    pub fn is_critical(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpKind};

    fn chain3() -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[t1, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Sub, &[t2, a], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn chain_is_fully_critical() {
        let d = chain3();
        let aa = AsapAlap::compute(&d, None).unwrap();
        assert_eq!(aa.latency(), 3);
        for op in d.ops() {
            assert!(aa.mobility(op.id()).is_critical());
            assert_eq!(aa.asap(op.id()), aa.alap(op.id()));
        }
    }

    #[test]
    fn slack_appears_with_extra_latency() {
        let d = chain3();
        let aa = AsapAlap::compute(&d, Some(5)).unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        assert_eq!(aa.asap(n1), 0);
        assert_eq!(aa.alap(n1), 2);
        assert_eq!(aa.mobility(n1), Mobility(2));
    }

    #[test]
    fn infeasible_latency_rejected() {
        let d = chain3();
        assert!(AsapAlap::compute(&d, Some(2)).is_err());
    }

    #[test]
    fn parallel_ops_have_mobility() {
        let mut b = DfgBuilder::new("par");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Sub, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let aa = AsapAlap::compute(&d, Some(3)).unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        // N1 can be at step 0 or 1 when latency is 3.
        assert_eq!(aa.asap(n1), 0);
        assert_eq!(aa.alap(n1), 1);
        let _ = y;
    }

    #[test]
    fn alap_respects_extra_precedence() {
        let mut d = {
            let mut b = DfgBuilder::new("par");
            let a = b.input("a");
            let c = b.input("c");
            b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
            b.op("N2", OpKind::Mul, &[a, c], "t2").unwrap();
            b.finish().unwrap()
        };
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        d.add_precedence(n1, n2).unwrap();
        let aa = AsapAlap::compute(&d, None).unwrap();
        assert_eq!(aa.latency(), 2);
        assert_eq!(aa.asap(n2), 1);
        assert_eq!(aa.alap(n1), 0);
    }
}
