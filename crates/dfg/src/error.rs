use std::error::Error;
use std::fmt;

/// Errors produced while constructing, parsing or analyzing a [`Dfg`].
///
/// [`Dfg`]: crate::Dfg
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfgError {
    /// A value name was defined twice.
    DuplicateValue(String),
    /// An operation name was defined twice.
    DuplicateOp(String),
    /// A value was used before being defined and is not a primary input.
    UndefinedValue(String),
    /// A value is defined by more than one operation (the IR is SSA-like).
    MultipleDefinitions(String),
    /// An operation has the wrong number of inputs for its kind.
    ArityMismatch {
        /// The offending operation's name.
        op: String,
        /// Inputs expected by the operation kind.
        expected: usize,
        /// Inputs actually supplied.
        got: usize,
    },
    /// The precedence relation (data dependences plus added constraints)
    /// contains a cycle, so no schedule exists.
    PrecedenceCycle {
        /// Name of one operation on the cycle.
        on: String,
    },
    /// A syntax error from the textual parser.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A primary input is also written by an operation.
    InputWritten(String),
    /// An id was out of range for this graph.
    InvalidId(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::DuplicateValue(n) => write!(f, "duplicate value `{n}`"),
            DfgError::DuplicateOp(n) => write!(f, "duplicate operation `{n}`"),
            DfgError::UndefinedValue(n) => write!(f, "use of undefined value `{n}`"),
            DfgError::MultipleDefinitions(n) => {
                write!(f, "value `{n}` is defined by more than one operation")
            }
            DfgError::ArityMismatch { op, expected, got } => write!(
                f,
                "operation `{op}` expects {expected} input(s) but got {got}"
            ),
            DfgError::PrecedenceCycle { on } => {
                write!(f, "precedence cycle through operation `{on}`")
            }
            DfgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            DfgError::InputWritten(n) => write!(f, "primary input `{n}` is written"),
            DfgError::InvalidId(what) => write!(f, "invalid id: {what}"),
        }
    }
}

impl Error for DfgError {}
