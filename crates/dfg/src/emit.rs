//! Textual emission of a [`Dfg`] — the inverse of [`parse`](crate::parse).
//!
//! [`emit`] renders a graph back into the statement format the parser
//! consumes, preserving declaration order so that `parse(emit(g))`
//! reconstructs `g` *structurally identically*: same value ids, same
//! operation ids, same use lists, same loop-carried pairs. That
//! round-trip property is what lets generated workloads be saved to
//! disk, replayed through `hlts run`, and attached verbatim to
//! conformance-failure reports.
//!
//! Only the behavioral content round-trips. The precedence-arc overlay
//! (the scheduling constraints the synthesis algorithm appends) has no
//! textual form, so emitting a graph with a non-empty overlay is an
//! error rather than silent loss.

use std::fmt::Write as _;

use crate::{Dfg, DfgError, OpKind, ValueKind};

/// Names that cannot appear as the first operand of an expression:
/// the parser greedily strips these unary keywords, so a value with one
/// of these names would re-parse as a different operation.
const RESERVED_OPERANDS: [&str; 3] = ["shl", "shr", "mov"];

/// The parser's spelling of each binary operator.
fn binary_symbol(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Eq => "==",
        // Every other binary kind's display symbol is its parse symbol.
        other => other.symbol(),
    }
}

fn check_ident(name: &str, what: &str) -> Result<(), DfgError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'');
    if !ok {
        return Err(DfgError::Parse {
            line: 0,
            message: format!("cannot emit {what} `{name}`: not a valid identifier"),
        });
    }
    if RESERVED_OPERANDS.contains(&name) {
        return Err(DfgError::Parse {
            line: 0,
            message: format!(
                "cannot emit {what} `{name}`: collides with a unary keyword"
            ),
        });
    }
    Ok(())
}

/// Render `dfg` in the textual format accepted by [`parse`](crate::parse).
///
/// Declarations are emitted in value-id order (inputs and constants
/// interleaved with the operations that define the remaining values),
/// so re-parsing assigns every value and operation the id it holds in
/// `dfg` — the result compares equal under [`Dfg`]'s `PartialEq`.
///
/// # Errors
///
/// Returns [`DfgError::Parse`] (line 0) when the graph cannot be
/// represented in the textual format:
///
/// * a value, operation or graph name is not a valid identifier, or
///   collides with the `shl`/`shr`/`mov` unary keywords;
/// * the precedence-arc overlay is non-empty (merge constraints have
///   no textual form);
/// * an operation defines no output value (unreachable for graphs from
///   [`DfgBuilder`](crate::DfgBuilder) or the parser).
pub fn emit(dfg: &Dfg) -> Result<String, DfgError> {
    if !dfg.extra_precedence().is_empty() || !dfg.weak_precedence().is_empty() {
        return Err(DfgError::Parse {
            line: 0,
            message: format!(
                "cannot emit `{}`: {} precedence-overlay arc(s) have no textual form",
                dfg.name(),
                dfg.extra_precedence().len() + dfg.weak_precedence().len()
            ),
        });
    }
    check_ident(dfg.name(), "graph name")?;
    for v in dfg.values() {
        check_ident(v.name(), "value")?;
    }
    for op in dfg.ops() {
        check_ident(op.name(), "operation")?;
    }

    let mut out = String::new();
    let _ = writeln!(out, "dfg {} {{", dfg.name());

    // Walk values in id order: declarations and defining operations
    // interleave exactly as the original construction sequence did.
    for v in dfg.values() {
        match v.kind() {
            ValueKind::Input => {
                let _ = writeln!(out, "  input {};", v.name());
            }
            ValueKind::Const(c) => {
                let _ = writeln!(out, "  const {} = {c};", v.name());
            }
            _ => {
                let op_id = dfg.def_of(v.id()).ok_or_else(|| DfgError::Parse {
                    line: 0,
                    message: format!(
                        "cannot emit `{}`: value `{}` has no defining operation",
                        dfg.name(),
                        v.name()
                    ),
                })?;
                let op = dfg.op(op_id);
                if op.output() != Some(v.id()) {
                    return Err(DfgError::Parse {
                        line: 0,
                        message: format!(
                            "cannot emit `{}`: def/output mismatch on `{}`",
                            dfg.name(),
                            v.name()
                        ),
                    });
                }
                let operand = |i: usize| dfg.value(op.inputs()[i]).name();
                let expr = match op.kind() {
                    OpKind::Not => format!("~{}", operand(0)),
                    OpKind::Shl => format!("shl {}", operand(0)),
                    OpKind::Shr => format!("shr {}", operand(0)),
                    OpKind::Mov => format!("mov {}", operand(0)),
                    binary => {
                        format!("{} {} {}", operand(0), binary_symbol(binary), operand(1))
                    }
                };
                let _ = writeln!(out, "  {}: {} = {expr};", op.name(), v.name());
            }
        }
    }

    let outputs: Vec<&str> = dfg
        .outputs()
        .map(|id| dfg.value(id).name())
        .collect();
    if !outputs.is_empty() {
        let _ = writeln!(out, "  output {};", outputs.join(", "));
    }
    for &(src, dst) in dfg.loop_carried() {
        let _ = writeln!(
            out,
            "  loop {} -> {};",
            dfg.value(src).name(),
            dfg.value(dst).name()
        );
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, DfgBuilder};

    fn roundtrip(src: &str) {
        let d = parse(src).unwrap();
        let text = emit(&d).unwrap();
        let d2 = parse(&text).unwrap();
        assert_eq!(d, d2, "round-trip changed the graph:\n{text}");
    }

    #[test]
    fn roundtrips_every_statement_form() {
        roundtrip(
            "dfg t { input a, b; const k = -3;
              N1: s = a + b; N2: d = a - b; N3: p = k * s;
              N4: l = a < b; N5: g = a > b; N6: e = a == b;
              N7: x = a & b; N8: y = a | b; N9: z = a ^ b;
              N10: n = ~x; N11: sl = shl y; N12: sr = shr z; N13: m = mov n;
              output p, m; loop p -> a; }",
        );
    }

    #[test]
    fn roundtrips_interleaved_declarations() {
        // An input declared after an operation keeps its value-id slot.
        roundtrip("dfg t { input a; N1: x = ~a; input b; N2: y = x + b; output y; }");
    }

    #[test]
    fn roundtrips_condition_and_unused_values() {
        roundtrip(
            "dfg t { input x, dx, u;
              N1: x1 = x + dx; N2: c = x1 < u;
              output x1; loop x1 -> x; }",
        );
    }

    #[test]
    fn eq_expression_survives() {
        let d = parse("dfg t { input a, b; N1: e = a == b; N2: s = a + b; output s; }").unwrap();
        let text = emit(&d).unwrap();
        assert!(text.contains("a == b"), "{text}");
        assert_eq!(parse(&text).unwrap(), d);
    }

    #[test]
    fn overlay_arcs_are_rejected() {
        let mut d =
            parse("dfg t { input a, b; N1: s = a + b; N2: p = s * b; output p; }").unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        d.add_precedence(n1, n2).unwrap();
        let e = emit(&d).unwrap_err();
        assert!(matches!(e, DfgError::Parse { .. }), "{e}");
        assert!(e.to_string().contains("precedence-overlay"), "{e}");
    }

    #[test]
    fn reserved_operand_names_are_rejected() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("shl");
        let c = b.input("c");
        let y = b.op("N1", crate::OpKind::Add, &[a, c], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let e = emit(&d).unwrap_err();
        assert!(e.to_string().contains("unary keyword"), "{e}");
    }

    #[test]
    fn emitted_text_is_stable() {
        let d = parse("dfg t { input a, b; N1: s = a + b; output s; }").unwrap();
        assert_eq!(emit(&d).unwrap(), emit(&d).unwrap());
    }
}
