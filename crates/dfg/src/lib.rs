//! # hlts-dfg — behavioral data-flow graph IR
//!
//! This crate provides the behavioral front end of the `hlts` high-level test
//! synthesis system: a data-flow graph ([`Dfg`]) of operations over named
//! values, reconstructible from a small textual format ([`parse`]), built
//! programmatically ([`DfgBuilder`]), and renderable back to that format
//! ([`emit`]) such that the round-trip is structurally identical.
//!
//! The paper this system reproduces (Yang & Peng, DATE 1998) takes VHDL
//! behavioral specifications as input; the synthesis algorithm itself only
//! consumes the data-flow structure, so this IR plays the role of the
//! compiled VHDL process body.
//!
//! A [`Dfg`] consists of:
//!
//! * **values** — primary inputs, primary outputs, constants and intermediate
//!   variables ([`Value`], [`ValueKind`]);
//! * **operations** — arithmetic/logic/relational nodes ([`Operation`],
//!   [`OpKind`]) each reading one or two values and defining at most one;
//! * **precedence** — the partial order induced by data dependences plus any
//!   explicitly added scheduling-constraint arcs (the integrated synthesis
//!   algorithm materializes module/register merge constraints this way);
//! * **loop-carried pairs** — `(src, dst)` value pairs expressing that in a
//!   looping behavior the value produced as `src` feeds `dst` in the next
//!   iteration (e.g. `x1 -> x` in the Diffeq benchmark).
//!
//! # Example
//!
//! ```
//! use hlts_dfg::{DfgBuilder, OpKind};
//!
//! # fn main() -> Result<(), hlts_dfg::DfgError> {
//! let mut b = DfgBuilder::new("tiny");
//! let a = b.input("a");
//! let c = b.input("c");
//! let t = b.op("N1", OpKind::Mul, &[a, c], "t")?;
//! let y = b.op("N2", OpKind::Add, &[t, a], "y")?;
//! b.mark_output(y);
//! let dfg = b.finish()?;
//! assert_eq!(dfg.num_ops(), 2);
//! assert!(dfg.topo_order()?.len() == 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod emit;
mod error;
mod graph;
mod op;
mod parser;
mod scratch;
pub mod sym;
mod timing;
mod value;

pub use builder::DfgBuilder;
pub use emit::emit;
pub use error::DfgError;
pub use graph::{ArcSavepoint, Dfg, OpId, Operation};
pub use op::{FuClass, OpKind};
pub use parser::parse;
pub use sym::{Sym, SymStats};
pub use timing::{AsapAlap, Mobility};
pub use value::{Value, ValueId, ValueKind};
