use std::fmt;


/// Kind of a data-flow operation.
///
/// The set covers what the DATE'98 benchmarks need (arithmetic, relational
/// and logic operations) plus `Mov` for plain copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum OpKind {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Multiplication (array multiplier at the gate level).
    Mul,
    /// Signed less-than comparison; produces a 1-bit condition.
    Lt,
    /// Signed greater-than comparison; produces a 1-bit condition.
    Gt,
    /// Equality comparison; produces a 1-bit condition.
    Eq,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (unary).
    Not,
    /// Logical shift left by one.
    Shl,
    /// Logical shift right by one.
    Shr,
    /// Copy (unary move / register transfer).
    Mov,
}

impl OpKind {
    /// Number of data inputs the operation consumes.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            OpKind::Not | OpKind::Shl | OpKind::Shr | OpKind::Mov => 1,
            _ => 2,
        }
    }

    /// Whether the operation produces a 1-bit condition flag rather than a
    /// full data word.
    #[must_use]
    pub fn is_condition(self) -> bool {
        matches!(self, OpKind::Lt | OpKind::Gt | OpKind::Eq)
    }

    /// Whether the operation is commutative in its two data inputs.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Mul | OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Eq
        )
    }

    /// The functional-unit class able to execute this operation.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        match self {
            OpKind::Mul => FuClass::Multiplier,
            OpKind::Add | OpKind::Sub => FuClass::AddSub,
            OpKind::Lt | OpKind::Gt | OpKind::Eq => FuClass::Compare,
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => FuClass::Logic,
            OpKind::Shl | OpKind::Shr => FuClass::Shift,
            OpKind::Mov => FuClass::Move,
        }
    }

    /// The paper's table notation for a module hosting this kind:
    /// `(*)`, `(+)`, `(-)`, `(<)` etc.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Lt => "<",
            OpKind::Gt => ">",
            OpKind::Eq => "=",
            OpKind::And => "&",
            OpKind::Or => "|",
            OpKind::Xor => "^",
            OpKind::Not => "~",
            OpKind::Shl => "<<",
            OpKind::Shr => ">>",
            OpKind::Mov => "id",
        }
    }

    /// All operation kinds, for exhaustive iteration in tests and cost
    /// tables.
    #[must_use]
    pub fn all() -> &'static [OpKind] {
        &[
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Lt,
            OpKind::Gt,
            OpKind::Eq,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::Not,
            OpKind::Shl,
            OpKind::Shr,
            OpKind::Mov,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Classes of functional units, used to decide which operations may share a
/// module.
///
/// Two operations are *module-compatible* when an economically sensible FU
/// exists that executes both. Following the paper's allocations (which share
/// `+`/`-` pairs on one ALU, keep multipliers separate, and fold comparisons
/// into the ALU when profitable), compatibility is:
///
/// * `Multiplier` only with `Multiplier`;
/// * `AddSub`, `Compare`, `Logic`, `Shift` and `Move` pairwise compatible
///   (an ALU covers all of them);
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FuClass {
    /// Hardware multiplier.
    Multiplier,
    /// Adder/subtractor.
    AddSub,
    /// Magnitude/equality comparator.
    Compare,
    /// Bitwise logic unit.
    Logic,
    /// Single-bit shifter.
    Shift,
    /// Pass-through / move unit.
    Move,
}

impl FuClass {
    /// Whether operations of the two classes may execute on one shared
    /// functional unit.
    #[must_use]
    pub fn compatible(self, other: FuClass) -> bool {
        match (self, other) {
            (FuClass::Multiplier, FuClass::Multiplier) => true,
            (FuClass::Multiplier, _) | (_, FuClass::Multiplier) => false,
            // Everything else is ALU-expressible.
            _ => true,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Multiplier => "mult",
            FuClass::AddSub => "addsub",
            FuClass::Compare => "cmp",
            FuClass::Logic => "logic",
            FuClass::Shift => "shift",
            FuClass::Move => "move",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Mul.arity(), 2);
        assert_eq!(OpKind::Not.arity(), 1);
        assert_eq!(OpKind::Mov.arity(), 1);
        assert_eq!(OpKind::Shl.arity(), 1);
    }

    #[test]
    fn conditions_are_relational() {
        for k in OpKind::all() {
            assert_eq!(
                k.is_condition(),
                matches!(k, OpKind::Lt | OpKind::Gt | OpKind::Eq),
                "{k:?}"
            );
        }
    }

    #[test]
    fn multiplier_is_isolated() {
        assert!(FuClass::Multiplier.compatible(FuClass::Multiplier));
        assert!(!FuClass::Multiplier.compatible(FuClass::AddSub));
        assert!(!FuClass::AddSub.compatible(FuClass::Multiplier));
        assert!(FuClass::AddSub.compatible(FuClass::Compare));
        assert!(FuClass::Logic.compatible(FuClass::Shift));
    }

    #[test]
    fn compatibility_is_symmetric() {
        let classes = [
            FuClass::Multiplier,
            FuClass::AddSub,
            FuClass::Compare,
            FuClass::Logic,
            FuClass::Shift,
            FuClass::Move,
        ];
        for &a in &classes {
            for &b in &classes {
                assert_eq!(a.compatible(b), b.compatible(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn symbols_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in OpKind::all() {
            assert!(seen.insert(k.symbol()), "duplicate symbol for {k:?}");
        }
    }

    #[test]
    fn commutativity() {
        assert!(OpKind::Add.is_commutative());
        assert!(OpKind::Mul.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(!OpKind::Lt.is_commutative());
    }
}
