//! Thread-local traversal scratch for the graph queries on the
//! synthesis hot path (`reaches`, topological orders).
//!
//! The visited set is epoch-marked: clearing it between queries is a
//! single counter bump instead of a memset, and the backing vectors are
//! reused across calls, so a steady-state reachability query performs
//! no heap allocation. Keeping the scratch in TLS (rather than inside
//! [`Dfg`](crate::Dfg)) keeps the graph `Sync` — parallel candidate
//! evaluation shares one base state across scoped threads.

use std::cell::RefCell;

use crate::OpId;

pub(crate) struct TraversalScratch {
    /// `mark[i] == epoch` means op `i` was visited in the current query.
    mark: Vec<u32>,
    epoch: u32,
    /// DFS stack / BFS queue storage, reused across queries.
    pub(crate) stack: Vec<OpId>,
    /// In-degree counters for Kahn's algorithm, reused across queries.
    pub(crate) indeg: Vec<u32>,
}

thread_local! {
    static SCRATCH: RefCell<TraversalScratch> = const {
        RefCell::new(TraversalScratch {
            mark: Vec::new(),
            epoch: 0,
            stack: Vec::new(),
            indeg: Vec::new(),
        })
    };
}

impl TraversalScratch {
    /// Begin a query over `n` ops: grows the visited set if needed and
    /// starts a fresh epoch. Amortized allocation-free — the vectors
    /// only grow when a larger graph than ever before is queried.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
    }

    /// Mark `op` visited; returns `true` if it was not yet visited in
    /// this epoch.
    pub(crate) fn visit(&mut self, op: OpId) -> bool {
        let m = &mut self.mark[op.index()];
        if *m == self.epoch {
            false
        } else {
            *m = self.epoch;
            true
        }
    }
}

/// Run `f` with the thread-local traversal scratch.
pub(crate) fn with<R>(f: impl FnOnce(&mut TraversalScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
