//! A tiny textual format for data-flow graphs.
//!
//! The format plays the role of the paper's VHDL behavioral input: it is
//! what a VHDL process body compiles to after the front end. One statement
//! per line; `#` and `//` start comments.
//!
//! ```text
//! dfg diffeq {
//!   input x, y, u, dx, a;
//!   const three = 3;
//!   N26: t1 = three * x;
//!   N27: t2 = u * dx;
//!   N25: x1 = x + dx;
//!   N24: c  = x1 < a;
//!   output x1;
//!   loop x1 -> x;
//! }
//! ```
//!
//! Statements:
//!
//! * `input NAME, NAME, ...;` — primary inputs;
//! * `const NAME = INT;` — named constants;
//! * `output NAME, NAME, ...;` — marks defined values as primary outputs
//!   (may appear before or after the defining operation);
//! * `loop SRC -> DST;` — loop-carried value pair;
//! * `OPNAME: OUT = A <op> B;` with `<op>` one of `+ - * < > == & | ^`;
//! * `OPNAME: OUT = ~A;` / `shl A` / `shr A` / `mov A` — unary forms.
//!
//! Operations must appear after the values they read (the natural order of
//! a straight-line behavioral description).

use crate::{Dfg, DfgBuilder, DfgError, OpKind, ValueId};

/// Parse the textual DFG format (see the grammar in this module's
/// source documentation header).
///
/// # Errors
///
/// Returns [`DfgError::Parse`] for syntax errors (with 1-based line number)
/// and any structural error from the underlying builder.
///
/// # Example
///
/// ```
/// let dfg = hlts_dfg::parse(
///     "dfg t { input a, b; N1: s = a + b; output s; }",
/// )?;
/// assert_eq!(dfg.num_ops(), 1);
/// # Ok::<(), hlts_dfg::DfgError>(())
/// ```
pub fn parse(text: &str) -> Result<Dfg, DfgError> {
    Parser::new(text).run()
}

struct Parser<'a> {
    text: &'a str,
}

struct PendingOutputs(Vec<(usize, String)>);

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text }
    }

    fn run(self) -> Result<Dfg, DfgError> {
        // Strip comments, split into ;-terminated statements while keeping
        // line numbers for diagnostics.
        let mut statements: Vec<(usize, String)> = Vec::new();
        let mut current = String::new();
        let mut current_line = 1usize;
        for (i, raw) in self.text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("");
            let line = line.split("//").next().unwrap_or("");
            for ch in line.chars() {
                match ch {
                    ';' => {
                        statements.push((current_line, std::mem::take(&mut current)));
                        current_line = i + 1;
                    }
                    '{' | '}' => {
                        // header/footer brace: flush whatever precedes it
                        if !current.trim().is_empty() {
                            statements.push((current_line, std::mem::take(&mut current)));
                        }
                        current.clear();
                        current_line = i + 1;
                    }
                    _ => {
                        if current.trim().is_empty() {
                            current_line = i + 1;
                        }
                        current.push(ch);
                    }
                }
            }
            current.push(' ');
        }
        if !current.trim().is_empty() {
            return Err(DfgError::Parse {
                line: current_line,
                message: format!("unterminated statement `{}`", current.trim()),
            });
        }

        // The first statement must be the header `dfg NAME`.
        let mut iter = statements.into_iter();
        let (hline, header) = iter.next().ok_or(DfgError::Parse {
            line: 1,
            message: "empty input".into(),
        })?;
        let header = header.trim();
        let name = header
            .strip_prefix("dfg")
            .map(str::trim)
            .filter(|s| !s.is_empty() && s.split_whitespace().count() == 1)
            .ok_or(DfgError::Parse {
                line: hline,
                message: format!("expected `dfg NAME {{`, got `{header}`"),
            })?;

        let mut b = DfgBuilder::new(name);
        let mut pending = PendingOutputs(Vec::new());
        let mut pending_loops: Vec<(usize, String, String)> = Vec::new();

        for (line, stmt) in iter {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("input ") {
                for n in rest.split(',') {
                    let n = ident(n, line)?;
                    b.input(&n);
                }
            } else if let Some(rest) = stmt.strip_prefix("output ") {
                for n in rest.split(',') {
                    pending.0.push((line, ident(n, line)?));
                }
            } else if let Some(rest) = stmt.strip_prefix("const ") {
                let (n, v) = rest.split_once('=').ok_or(DfgError::Parse {
                    line,
                    message: "expected `const NAME = INT`".into(),
                })?;
                let n = ident(n, line)?;
                let v: i64 = v.trim().parse().map_err(|_| DfgError::Parse {
                    line,
                    message: format!("bad constant value `{}`", v.trim()),
                })?;
                b.constant(&n, v);
            } else if let Some(rest) = stmt.strip_prefix("loop ") {
                let (src, dst) = rest.split_once("->").ok_or(DfgError::Parse {
                    line,
                    message: "expected `loop SRC -> DST`".into(),
                })?;
                pending_loops.push((line, ident(src, line)?, ident(dst, line)?));
            } else if let Some((opname, rhs)) = stmt.split_once(':') {
                let opname = ident(opname, line)?;
                let (out, expr) = rhs.split_once('=').ok_or(DfgError::Parse {
                    line,
                    message: "expected `NAME: OUT = EXPR`".into(),
                })?;
                // `==` would be split at the first `=`; re-join if so.
                let (out, expr) = if let Some(rest_eq) = expr.strip_prefix('=') {
                    let (o, e2) =
                        out.trim()
                            .split_once(char::is_whitespace)
                            .ok_or(DfgError::Parse {
                                line,
                                message: "malformed `==` expression".into(),
                            })?;
                    (o.to_owned(), format!("{e2} == {rest_eq}"))
                } else {
                    (out.trim().to_owned(), expr.trim().to_owned())
                };
                let out = ident(&out, line)?;
                let (kind, operands) = parse_expr(&expr, line)?;
                let mut ids: Vec<ValueId> = Vec::with_capacity(operands.len());
                for o in &operands {
                    let id = resolve(&b, o).ok_or(DfgError::Parse {
                        line,
                        message: format!("use of undeclared value `{o}` (declare inputs/consts, keep ops in dependence order)"),
                    })?;
                    ids.push(id);
                }
                b.op(&opname, kind, &ids, &out)?;
            } else {
                return Err(DfgError::Parse {
                    line,
                    message: format!("unrecognized statement `{stmt}`"),
                });
            }
        }

        for (line, n) in pending.0 {
            let id = resolve(&b, &n).ok_or(DfgError::Parse {
                line,
                message: format!("output `{n}` is never defined"),
            })?;
            b.mark_output(id);
        }
        for (line, src, dst) in pending_loops {
            let s = resolve(&b, &src).ok_or(DfgError::Parse {
                line,
                message: format!("loop source `{src}` is never defined"),
            })?;
            let d = resolve(&b, &dst).ok_or(DfgError::Parse {
                line,
                message: format!("loop destination `{dst}` is never defined"),
            })?;
            b.loop_carried(s, d);
        }
        b.finish()
    }
}

fn resolve(b: &DfgBuilder, name: &str) -> Option<ValueId> {
    b.lookup(name)
}

fn ident(s: &str, line: usize) -> Result<String, DfgError> {
    let s = s.trim();
    if s.is_empty()
        || !s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'')
    {
        return Err(DfgError::Parse {
            line,
            message: format!("bad identifier `{s}`"),
        });
    }
    Ok(s.to_owned())
}

fn parse_expr(expr: &str, line: usize) -> Result<(OpKind, Vec<String>), DfgError> {
    let expr = expr.trim();
    // Unary forms first.
    if let Some(rest) = expr.strip_prefix('~') {
        return Ok((OpKind::Not, vec![ident(rest, line)?]));
    }
    for (kw, kind) in [
        ("shl ", OpKind::Shl),
        ("shr ", OpKind::Shr),
        ("mov ", OpKind::Mov),
    ] {
        if let Some(rest) = expr.strip_prefix(kw) {
            return Ok((kind, vec![ident(rest, line)?]));
        }
    }
    // Binary operators, longest first so `==` wins over `=`.
    for (sym, kind) in [
        ("==", OpKind::Eq),
        ("+", OpKind::Add),
        ("-", OpKind::Sub),
        ("*", OpKind::Mul),
        ("<", OpKind::Lt),
        (">", OpKind::Gt),
        ("&", OpKind::And),
        ("|", OpKind::Or),
        ("^", OpKind::Xor),
    ] {
        if let Some((a, b)) = expr.split_once(sym) {
            return Ok((kind, vec![ident(a, line)?, ident(b, line)?]));
        }
    }
    Err(DfgError::Parse {
        line,
        message: format!("unrecognized expression `{expr}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueKind;

    #[test]
    fn parses_simple_graph() {
        let d = parse(
            "dfg t {\n  input a, b;\n  N1: s = a + b; # comment\n  N2: p = a * s;\n  output p;\n}",
        )
        .unwrap();
        assert_eq!(d.name(), "t");
        assert_eq!(d.num_ops(), 2);
        let p = d.value_by_name("p").unwrap();
        assert!(d.value(p).kind().is_output());
    }

    #[test]
    fn parses_all_binary_ops() {
        let d = parse(
            "dfg t { input a, b;
              N1: s1 = a + b; N2: s2 = a - b; N3: s3 = a * b;
              N4: s4 = a < b; N5: s5 = a > b; N6: s6 = a == b;
              N7: s7 = a & b; N8: s8 = a | b; N9: s9 = a ^ b;
              output s1, s2, s3; }",
        )
        .unwrap();
        assert_eq!(d.num_ops(), 9);
        assert_eq!(d.op(d.op_by_name("N6").unwrap()).kind(), OpKind::Eq);
    }

    #[test]
    fn parses_unary_ops() {
        let d = parse(
            "dfg t { input a; N1: x = ~a; N2: y = shl x; N3: z = shr y; N4: w = mov z; output w; }",
        )
        .unwrap();
        assert_eq!(d.num_ops(), 4);
        assert_eq!(d.op(d.op_by_name("N1").unwrap()).kind(), OpKind::Not);
        assert_eq!(d.op(d.op_by_name("N4").unwrap()).kind(), OpKind::Mov);
    }

    #[test]
    fn parses_const_and_loop() {
        let d = parse(
            "dfg t { input x, dx; const three = 3;
              N1: t = three * x; N2: x1 = x + dx;
              output x1; loop x1 -> x; }",
        )
        .unwrap();
        let three = d.value_by_name("three").unwrap();
        assert_eq!(d.value(three).kind(), ValueKind::Const(3));
        assert_eq!(d.loop_carried().len(), 1);
    }

    #[test]
    fn output_before_definition_is_ok() {
        let d = parse("dfg t { input a, b; output s; N1: s = a + b; }").unwrap();
        let s = d.value_by_name("s").unwrap();
        assert!(d.value(s).kind().is_output());
    }

    #[test]
    fn undeclared_use_is_error() {
        let e = parse("dfg t { input a; N1: s = a + q; }").unwrap_err();
        assert!(matches!(e, DfgError::Parse { .. }), "{e}");
    }

    #[test]
    fn bad_header_is_error() {
        assert!(parse("graph t { }").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unterminated_statement_is_error() {
        // missing ';' before '}' — the op is flushed by '}' so this parses:
        parse("dfg t { input a, b; N1: s = a + b }").unwrap();
        // but a trailing fragment without ';' or '}' must error:
        let e2 = parse("dfg t { input a, b; N1: s = a + b; output s").unwrap_err();
        assert!(matches!(e2, DfgError::Parse { .. }));
    }

    #[test]
    fn line_numbers_in_errors() {
        let e = parse("dfg t {\ninput a;\nN1: s = a !! a;\n}").unwrap_err();
        match e {
            DfgError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn roundtrip_display_parse_op_count() {
        let src = "dfg t { input a, b; N1: s = a + b; N2: p = s * b; output p; }";
        let d = parse(src).unwrap();
        assert_eq!(d.num_ops(), 2);
        assert_eq!(d.num_values(), 4);
    }
}
