use std::collections::HashMap;

use crate::{Dfg, DfgError, OpId, OpKind, Operation, Sym, Value, ValueId, ValueKind};

/// Incremental constructor for a [`Dfg`].
///
/// Values are created as they are first mentioned; operations are appended
/// with [`DfgBuilder::op`]. Values defined by an operation start out as
/// [`ValueKind::Intermediate`] and can be promoted to primary outputs with
/// [`DfgBuilder::mark_output`].
///
/// # Example
///
/// ```
/// use hlts_dfg::{DfgBuilder, OpKind};
///
/// # fn main() -> Result<(), hlts_dfg::DfgError> {
/// let mut b = DfgBuilder::new("mac");
/// let (a, x, acc) = (b.input("a"), b.input("x"), b.input("acc"));
/// let p = b.op("N1", OpKind::Mul, &[a, x], "p")?;
/// let s = b.op("N2", OpKind::Add, &[p, acc], "s")?;
/// b.mark_output(s);
/// let dfg = b.finish()?;
/// assert_eq!(dfg.outputs().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    values: Vec<Value>,
    ops: Vec<Operation>,
    def: Vec<Option<OpId>>,
    uses: Vec<Vec<OpId>>,
    value_names: HashMap<Sym, ValueId>,
    op_names: HashMap<Sym, OpId>,
    loop_carried: Vec<(ValueId, ValueId)>,
}

impl DfgBuilder {
    /// Start building a graph with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            values: Vec::new(),
            ops: Vec::new(),
            def: Vec::new(),
            uses: Vec::new(),
            value_names: HashMap::new(),
            op_names: HashMap::new(),
            loop_carried: Vec::new(),
        }
    }

    /// Crate-private name lookup used by the parser.
    pub(crate) fn lookup(&self, name: &str) -> Option<ValueId> {
        let sym = Sym::lookup(name)?;
        self.value_names.get(&sym).copied()
    }

    fn add_value(&mut self, name: Sym, kind: ValueKind, condition: bool) -> ValueId {
        let id = ValueId::from_index(self.values.len());
        self.values.push(Value {
            id,
            name,
            kind,
            condition,
        });
        self.def.push(None);
        self.uses.push(Vec::new());
        self.value_names.insert(name, id);
        id
    }

    /// Declare (or fetch) a primary input.
    ///
    /// Calling `input` twice with the same name returns the same id.
    pub fn input(&mut self, name: &str) -> ValueId {
        let sym = Sym::intern(name);
        if let Some(&id) = self.value_names.get(&sym) {
            return id;
        }
        self.add_value(sym, ValueKind::Input, false)
    }

    /// Declare (or fetch) a named constant.
    pub fn constant(&mut self, name: &str, value: i64) -> ValueId {
        let sym = Sym::intern(name);
        if let Some(&id) = self.value_names.get(&sym) {
            return id;
        }
        self.add_value(sym, ValueKind::Const(value), false)
    }

    /// Append an operation `name: out = kind(inputs...)`, creating the
    /// output value.
    ///
    /// # Errors
    ///
    /// * [`DfgError::DuplicateOp`] if the op name already exists;
    /// * [`DfgError::ArityMismatch`] if `inputs.len() != kind.arity()`;
    /// * [`DfgError::DuplicateValue`] if `out` was already defined or
    ///   declared as input/constant.
    pub fn op(
        &mut self,
        name: &str,
        kind: OpKind,
        inputs: &[ValueId],
        out: &str,
    ) -> Result<ValueId, DfgError> {
        let name_sym = Sym::intern(name);
        if self.op_names.contains_key(&name_sym) {
            return Err(DfgError::DuplicateOp(name.to_owned()));
        }
        if inputs.len() != kind.arity() {
            return Err(DfgError::ArityMismatch {
                op: name.to_owned(),
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        let out_sym = Sym::intern(out);
        if self.value_names.contains_key(&out_sym) {
            return Err(DfgError::DuplicateValue(out.to_owned()));
        }
        let out_id = self.add_value(out_sym, ValueKind::Intermediate, kind.is_condition());
        let op_id = OpId::from_index(self.ops.len());
        self.ops.push(Operation {
            id: op_id,
            name: name_sym,
            kind,
            inputs: inputs.to_vec(),
            output: Some(out_id),
        });
        self.op_names.insert(name_sym, op_id);
        self.def[out_id.index()] = Some(op_id);
        for &v in inputs {
            if !self.uses[v.index()].contains(&op_id) {
                self.uses[v.index()].push(op_id);
            }
        }
        Ok(out_id)
    }

    /// Promote an operation-defined value to a primary output.
    ///
    /// # Panics
    ///
    /// Panics if `value` is out of range (builder ids always are in range).
    pub fn mark_output(&mut self, value: ValueId) {
        let v = &mut self.values[value.index()];
        if matches!(v.kind, ValueKind::Intermediate) {
            v.kind = ValueKind::Output;
        }
    }

    /// Record that `produced` feeds `consumed` in the next loop iteration
    /// (e.g. `x1 -> x` in Diffeq). This does not add a precedence arc; it
    /// informs allocation (the pair sharing a register forms a self-loop)
    /// and the netlist back end.
    pub fn loop_carried(&mut self, produced: ValueId, consumed: ValueId) {
        if !self.loop_carried.contains(&(produced, consumed)) {
            self.loop_carried.push((produced, consumed));
        }
    }

    /// Finish and validate the graph.
    ///
    /// # Errors
    ///
    /// Returns any structural violation found by [`Dfg::validate`].
    pub fn finish(self) -> Result<Dfg, DfgError> {
        let dfg = Dfg::from_core(std::sync::Arc::new(crate::graph::DfgCore::new(
            self.name,
            self.values,
            self.ops,
            self.def,
            self.uses,
            self.loop_carried,
            self.value_names,
            self.op_names,
        )));
        dfg.validate()?;
        Ok(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_op_rejected() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        b.op("N1", OpKind::Add, &[a, c], "x").unwrap();
        assert!(matches!(
            b.op("N1", OpKind::Add, &[a, c], "y"),
            Err(DfgError::DuplicateOp(_))
        ));
    }

    #[test]
    fn arity_checked() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        assert!(matches!(
            b.op("N1", OpKind::Add, &[a], "x"),
            Err(DfgError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn redefinition_rejected() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        b.op("N1", OpKind::Add, &[a, c], "x").unwrap();
        assert!(matches!(
            b.op("N2", OpKind::Sub, &[a, c], "x"),
            Err(DfgError::DuplicateValue(_))
        ));
        assert!(matches!(
            b.op("N3", OpKind::Sub, &[a, c], "a"),
            Err(DfgError::DuplicateValue(_))
        ));
    }

    #[test]
    fn input_idempotent() {
        let mut b = DfgBuilder::new("t");
        let a1 = b.input("a");
        let a2 = b.input("a");
        assert_eq!(a1, a2);
    }

    #[test]
    fn condition_flag_set() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let f = b.op("N1", OpKind::Lt, &[a, c], "flag").unwrap();
        let d = b.finish().unwrap();
        assert!(d.value(f).is_condition());
    }

    #[test]
    fn loop_carried_recorded_once() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let dx = b.input("dx");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        b.mark_output(x1);
        b.loop_carried(x1, x);
        b.loop_carried(x1, x);
        let d = b.finish().unwrap();
        assert_eq!(d.loop_carried(), &[(x1, x)]);
    }

    #[test]
    fn constant_kind() {
        let mut b = DfgBuilder::new("t");
        let three = b.constant("3", 3);
        let x = b.input("x");
        let y = b.op("N1", OpKind::Mul, &[three, x], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        assert!(d.value(three).kind().is_const());
    }
}
