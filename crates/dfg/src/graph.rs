use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::{scratch, DfgError, OpKind, Sym, Value, ValueId, ValueKind};

/// Index of an [`Operation`] inside its [`Dfg`].
///
/// Ids are dense (0..num_ops) and stable for the lifetime of the graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The dense index of this operation.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        OpId(u32::try_from(index).expect("op index fits in u32"))
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One operation node of the data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub(crate) id: OpId,
    pub(crate) name: Sym,
    pub(crate) kind: OpKind,
    pub(crate) inputs: Vec<ValueId>,
    pub(crate) output: Option<ValueId>,
}

impl Operation {
    /// The operation's id.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The source-level node name, e.g. `"N21"`.
    #[must_use]
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The interned name symbol.
    #[must_use]
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// The operation kind.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The values read by this operation, in port order.
    #[must_use]
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// The value defined by this operation, if any.
    #[must_use]
    pub fn output(&self) -> Option<ValueId> {
        self.output
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.kind)
    }
}

/// Compressed-sparse-row adjacency: per-op neighbor lists flattened into
/// one offset array plus one id array, so a neighborhood query is a
/// bounds-computed slice into shared storage — no per-call allocation,
/// and the whole relation lives in two contiguous blocks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CsrAdj {
    off: Vec<u32>,
    dat: Vec<OpId>,
}

impl CsrAdj {
    fn with_rows(n: usize) -> CsrAdj {
        let mut off = Vec::with_capacity(n + 1);
        off.push(0);
        CsrAdj {
            off,
            dat: Vec::new(),
        }
    }

    /// Append `id` to the row currently being built, skipping duplicates
    /// already in that row (first-occurrence order is preserved).
    fn push_dedup(&mut self, id: OpId) {
        let row_start = *self.off.last().expect("csr has a row open") as usize;
        if !self.dat[row_start..].contains(&id) {
            self.dat.push(id);
        }
    }

    fn seal_row(&mut self) {
        self.off
            .push(u32::try_from(self.dat.len()).expect("csr fits in u32"));
    }

    fn row(&self, i: usize) -> &[OpId] {
        &self.dat[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// A behavioral data-flow graph: values, operations and precedence.
///
/// Construct with [`DfgBuilder`](crate::DfgBuilder) or [`parse`](crate::parse).
/// The graph is SSA-like: every non-input value has exactly one defining
/// operation. Besides data dependences, extra *precedence arcs* can be added
/// (see [`Dfg::add_precedence`]); the synthesis algorithm uses these to
/// materialize the scheduling constraints imposed by module and register
/// mergers.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// The data-flow content, fixed once built. Shared by reference:
    /// cloning a `Dfg` bumps a refcount instead of copying every
    /// operation, value, use list and name table — synthesis mutates
    /// only the arc overlay below, so all trial states of a run share
    /// one core.
    pub(crate) core: Arc<DfgCore>,
    /// Extra precedence arcs (from, to) beyond data dependences. This is
    /// the overlay's append-only arena: a [`ArcSavepoint`] is a high-water
    /// mark into it, and rollback is truncation.
    pub(crate) extra_prec: Vec<(OpId, OpId)>,
    /// Weak precedence arcs: `step(from) <= step(to)` (same step allowed).
    /// Used for register-sharing constraints, where a value may be read
    /// in the very step its successor value is defined (registers are
    /// read at the start of a cycle and written at its end).
    pub(crate) weak_prec: Vec<(OpId, OpId)>,
    /// Per-op adjacency of the overlay arcs, maintained incrementally so
    /// `preds`/`succs` never scan the arc arena. Entries mirror
    /// `extra_prec`/`weak_prec` push-for-push, so truncating the arena
    /// pops these lists in reverse — capacity is retained, making a
    /// trial-and-rollback cycle allocation-free once warmed up.
    ov_pred: Vec<Vec<OpId>>,
    ov_succ: Vec<Vec<OpId>>,
    ov_weak_pred: Vec<Vec<OpId>>,
    ov_weak_succ: Vec<Vec<OpId>>,
}

/// The immutable half of a [`Dfg`]: everything except the precedence-arc
/// overlay. Built once by [`DfgBuilder`](crate::DfgBuilder)/the parser
/// and never touched again, which is what makes sharing it via [`Arc`]
/// sound.
#[derive(Debug, PartialEq)]
pub(crate) struct DfgCore {
    pub(crate) name: String,
    pub(crate) values: Vec<Value>,
    pub(crate) ops: Vec<Operation>,
    /// Defining operation per value (None for inputs/constants).
    pub(crate) def: Vec<Option<OpId>>,
    /// Consumer operations per value.
    pub(crate) uses: Vec<Vec<OpId>>,
    /// Loop-carried value pairs `(produced, consumed-next-iteration)`.
    pub(crate) loop_carried: Vec<(ValueId, ValueId)>,
    pub(crate) value_names: HashMap<Sym, ValueId>,
    pub(crate) op_names: HashMap<Sym, OpId>,
    /// Deduplicated data-dependence predecessors per op (producers of its
    /// inputs, input-port first-occurrence order), in CSR form.
    pub(crate) data_preds: CsrAdj,
    /// Deduplicated data-dependence successors per op (consumers of its
    /// output, use-list first-occurrence order), in CSR form.
    pub(crate) data_succs: CsrAdj,
}

impl DfgCore {
    /// Assemble a core and precompute its CSR data adjacency. The CSR
    /// rows reproduce exactly what walking `inputs`/`def` and
    /// `output`/`uses` with first-occurrence dedup yields.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        values: Vec<Value>,
        ops: Vec<Operation>,
        def: Vec<Option<OpId>>,
        uses: Vec<Vec<OpId>>,
        loop_carried: Vec<(ValueId, ValueId)>,
        value_names: HashMap<Sym, ValueId>,
        op_names: HashMap<Sym, OpId>,
    ) -> DfgCore {
        let n = ops.len();
        let mut data_preds = CsrAdj::with_rows(n);
        let mut data_succs = CsrAdj::with_rows(n);
        for op in &ops {
            for &v in &op.inputs {
                if let Some(p) = def[v.index()] {
                    data_preds.push_dedup(p);
                }
            }
            data_preds.seal_row();
            if let Some(v) = op.output {
                for &u in &uses[v.index()] {
                    data_succs.push_dedup(u);
                }
            }
            data_succs.seal_row();
        }
        DfgCore {
            name,
            values,
            ops,
            def,
            uses,
            loop_carried,
            value_names,
            op_names,
            data_preds,
            data_succs,
        }
    }
}

impl PartialEq for Dfg {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.core, &other.core) || self.core == other.core)
            && self.extra_prec == other.extra_prec
            && self.weak_prec == other.weak_prec
    }
}

/// A position in a [`Dfg`]'s precedence-arc overlay, taken with
/// [`Dfg::arc_savepoint`] and restored with [`Dfg::truncate_arcs`].
///
/// The synthesis transaction journal uses this pair to undo a merger's
/// scheduling constraints: arcs are only ever *appended* by
/// [`Dfg::add_precedence`]/[`Dfg::add_weak_precedence`], so the
/// savepoint is a high-water mark into the arc arena and rolling back
/// is a truncation. [`Dfg::remove_precedence`] breaks that discipline
/// and must not be interleaved with an outstanding savepoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcSavepoint {
    strict: usize,
    weak: usize,
}

impl Dfg {
    pub(crate) fn from_core(core: Arc<DfgCore>) -> Dfg {
        let n = core.ops.len();
        Dfg {
            core,
            extra_prec: Vec::new(),
            weak_prec: Vec::new(),
            ov_pred: vec![Vec::new(); n],
            ov_succ: vec![Vec::new(); n],
            ov_weak_pred: vec![Vec::new(); n],
            ov_weak_succ: vec![Vec::new(); n],
        }
    }

    /// The graph's name (benchmark name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.core.ops.len()
    }

    /// Number of values.
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.core.values.len()
    }

    /// All operations in id order.
    #[must_use]
    pub fn ops(&self) -> &[Operation] {
        &self.core.ops
    }

    /// All values in id order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.core.values
    }

    /// Look up an operation by id.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.core.ops[id.index()]
    }

    /// Look up a value by id.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.core.values[id.index()]
    }

    /// Find an operation by name.
    #[must_use]
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        let sym = Sym::lookup(name)?;
        self.core.op_names.get(&sym).copied()
    }

    /// Find a value by name.
    #[must_use]
    pub fn value_by_name(&self, name: &str) -> Option<ValueId> {
        let sym = Sym::lookup(name)?;
        self.core.value_names.get(&sym).copied()
    }

    /// The operation defining `value`, if any (inputs and constants have
    /// none).
    #[must_use]
    pub fn def_of(&self, value: ValueId) -> Option<OpId> {
        self.core.def[value.index()]
    }

    /// The operations consuming `value`.
    #[must_use]
    pub fn uses_of(&self, value: ValueId) -> &[OpId] {
        &self.core.uses[value.index()]
    }

    /// Iterator over primary-input value ids.
    pub fn inputs(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.core.values
            .iter()
            .filter(|v| v.kind.is_input())
            .map(Value::id)
    }

    /// Iterator over primary-output value ids.
    pub fn outputs(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.core.values
            .iter()
            .filter(|v| v.kind.is_output())
            .map(Value::id)
    }

    /// Loop-carried `(produced, consumed-next-iteration)` value pairs.
    #[must_use]
    pub fn loop_carried(&self) -> &[(ValueId, ValueId)] {
        &self.core.loop_carried
    }

    /// Direct data-dependence predecessors of `op` (producers of its
    /// inputs), deduplicated, in input-port first-occurrence order.
    /// A slice into the core's precomputed CSR adjacency — no
    /// allocation.
    #[must_use]
    pub fn data_preds(&self, op: OpId) -> &[OpId] {
        self.core.data_preds.row(op.index())
    }

    /// Direct data-dependence successors of `op` (consumers of its
    /// output), deduplicated. A slice into the core's precomputed CSR
    /// adjacency — no allocation.
    #[must_use]
    pub fn data_succs(&self, op: OpId) -> &[OpId] {
        self.core.data_succs.row(op.index())
    }

    /// Extra (non-data) precedence arcs.
    #[must_use]
    pub fn extra_precedence(&self) -> &[(OpId, OpId)] {
        &self.extra_prec
    }

    /// Direct precedence predecessors: data predecessors followed by
    /// extra-arc sources (insertion order, duplicates of data
    /// predecessors suppressed). Allocation-free.
    pub fn preds(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        let data = self.data_preds(op);
        data.iter().copied().chain(
            self.ov_pred[op.index()]
                .iter()
                .copied()
                .filter(move |a| !data.contains(a)),
        )
    }

    /// Direct precedence successors: data successors followed by
    /// extra-arc targets (insertion order, duplicates of data successors
    /// suppressed). Allocation-free.
    pub fn succs(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        let data = self.data_succs(op);
        data.iter().copied().chain(
            self.ov_succ[op.index()]
                .iter()
                .copied()
                .filter(move |b| !data.contains(b)),
        )
    }

    /// Number of direct precedence predecessors (strict only).
    #[must_use]
    pub fn num_preds(&self, op: OpId) -> usize {
        self.preds(op).count()
    }

    /// Add an extra precedence arc `from -> to` (a scheduling constraint:
    /// `from` strictly before `to`).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] (and leaves the graph
    /// unchanged) if the arc would make the precedence relation cyclic, and
    /// [`DfgError::InvalidId`] if either id is out of range.
    pub fn add_precedence(&mut self, from: OpId, to: OpId) -> Result<(), DfgError> {
        if from.index() >= self.core.ops.len() || to.index() >= self.core.ops.len() {
            return Err(DfgError::InvalidId(format!("{from} -> {to}")));
        }
        if from == to {
            return Err(DfgError::PrecedenceCycle {
                on: self.core.ops[from.index()].name().to_owned(),
            });
        }
        if self.ov_succ[from.index()].contains(&to) {
            return Ok(());
        }
        // Adding from->to creates a cycle iff to already reaches from
        // (through strict or weak arcs — a weak back-path plus this
        // strict arc is already unsatisfiable).
        if self.reaches(to, from) {
            return Err(DfgError::PrecedenceCycle {
                on: self.core.ops[from.index()].name().to_owned(),
            });
        }
        self.extra_prec.push((from, to));
        self.ov_succ[from.index()].push(to);
        self.ov_pred[to.index()].push(from);
        Ok(())
    }

    /// Add a weak precedence arc `from -> to`: `from` must be scheduled
    /// no later than `to` (the same control step is allowed). Register-
    /// sharing constraints use this form — a register may be read in the
    /// very step its next value is written.
    ///
    /// # Errors
    ///
    /// As for [`Dfg::add_precedence`]. Weak cycles are also rejected
    /// (conservatively: `a <= b <= a` would be satisfiable but is never
    /// useful for lifetime ordering and would complicate scheduling).
    pub fn add_weak_precedence(&mut self, from: OpId, to: OpId) -> Result<(), DfgError> {
        if from.index() >= self.core.ops.len() || to.index() >= self.core.ops.len() {
            return Err(DfgError::InvalidId(format!("{from} ~> {to}")));
        }
        if from == to {
            // `step(x) <= step(x)` is trivially true.
            return Ok(());
        }
        if self.ov_weak_succ[from.index()].contains(&to) {
            return Ok(());
        }
        if self.reaches(to, from) {
            return Err(DfgError::PrecedenceCycle {
                on: self.core.ops[from.index()].name().to_owned(),
            });
        }
        self.weak_prec.push((from, to));
        self.ov_weak_succ[from.index()].push(to);
        self.ov_weak_pred[to.index()].push(from);
        Ok(())
    }

    /// Weak (same-step-allowed) precedence arcs.
    #[must_use]
    pub fn weak_precedence(&self) -> &[(OpId, OpId)] {
        &self.weak_prec
    }

    /// Direct weak predecessors of `op`, in arc insertion order.
    /// Allocation-free (overlay adjacency slice).
    #[must_use]
    pub fn weak_preds(&self, op: OpId) -> &[OpId] {
        &self.ov_weak_pred[op.index()]
    }

    /// Direct weak successors of `op`, in arc insertion order.
    /// Allocation-free (overlay adjacency slice).
    #[must_use]
    pub fn weak_succs(&self, op: OpId) -> &[OpId] {
        &self.ov_weak_succ[op.index()]
    }

    /// The current end of the precedence-arc overlay. Together with
    /// [`Dfg::truncate_arcs`] this is the graph half of the synthesis
    /// transaction journal: a tentative merger appends arcs, and undoing
    /// it truncates back to the savepoint.
    #[must_use]
    pub fn arc_savepoint(&self) -> ArcSavepoint {
        ArcSavepoint {
            strict: self.extra_prec.len(),
            weak: self.weak_prec.len(),
        }
    }

    /// Drop every arc appended since `sp` was taken, returning how many
    /// were removed. Arcs are append-only under
    /// [`Dfg::add_precedence`]/[`Dfg::add_weak_precedence`], so this
    /// restores the overlay bit-identically to its state at the
    /// savepoint: the arc arena is truncated to the high-water mark and
    /// the mirrored adjacency entries are popped in reverse insertion
    /// order. All capacity is retained for the next trial.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is shorter than the savepoint — the arc
    /// discipline was broken (e.g. [`Dfg::remove_precedence`] ran with
    /// the savepoint outstanding).
    pub fn truncate_arcs(&mut self, sp: ArcSavepoint) -> usize {
        assert!(
            self.extra_prec.len() >= sp.strict && self.weak_prec.len() >= sp.weak,
            "arc savepoint invalidated: arcs were removed while it was outstanding"
        );
        let dropped = (self.extra_prec.len() - sp.strict) + (self.weak_prec.len() - sp.weak);
        while self.extra_prec.len() > sp.strict {
            let (a, b) = self.extra_prec.pop().expect("length checked");
            let popped = self.ov_succ[a.index()].pop();
            debug_assert_eq!(popped, Some(b));
            let popped = self.ov_pred[b.index()].pop();
            debug_assert_eq!(popped, Some(a));
        }
        while self.weak_prec.len() > sp.weak {
            let (a, b) = self.weak_prec.pop().expect("length checked");
            let popped = self.ov_weak_succ[a.index()].pop();
            debug_assert_eq!(popped, Some(b));
            let popped = self.ov_weak_pred[b.index()].pop();
            debug_assert_eq!(popped, Some(a));
        }
        dropped
    }

    /// Whether two graphs share one immutable core (i.e. one was cloned
    /// from the other and only their arc overlays may differ).
    #[must_use]
    pub fn shares_core(&self, other: &Dfg) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// A clone that does **not** share the immutable core — the cost
    /// profile every `Dfg::clone()` had before cores were `Arc`-shared.
    /// Kept for the clone-based trial oracle and its benchmarks.
    #[must_use]
    pub fn deep_clone(&self) -> Dfg {
        Dfg {
            core: Arc::new(DfgCore {
                name: self.core.name.clone(),
                values: self.core.values.clone(),
                ops: self.core.ops.clone(),
                def: self.core.def.clone(),
                uses: self.core.uses.clone(),
                loop_carried: self.core.loop_carried.clone(),
                value_names: self.core.value_names.clone(),
                op_names: self.core.op_names.clone(),
                data_preds: self.core.data_preds.clone(),
                data_succs: self.core.data_succs.clone(),
            }),
            extra_prec: self.extra_prec.clone(),
            weak_prec: self.weak_prec.clone(),
            ov_pred: self.ov_pred.clone(),
            ov_succ: self.ov_succ.clone(),
            ov_weak_pred: self.ov_weak_pred.clone(),
            ov_weak_succ: self.ov_weak_succ.clone(),
        }
    }

    /// Remove a previously added extra precedence arc. Returns whether the
    /// arc was present.
    pub fn remove_precedence(&mut self, from: OpId, to: OpId) -> bool {
        let before = self.extra_prec.len();
        self.extra_prec.retain(|&(a, b)| (a, b) != (from, to));
        if self.extra_prec.len() == before {
            return false;
        }
        self.ov_succ[from.index()].retain(|&b| b != to);
        self.ov_pred[to.index()].retain(|&a| a != from);
        true
    }

    /// Whether `from` (transitively) precedes-or-equals `to` under data
    /// dependences, extra strict arcs and weak arcs. An operation does
    /// not reach itself.
    ///
    /// Uses a thread-local epoch-marked visited set — steady-state calls
    /// perform no heap allocation.
    #[must_use]
    pub fn reaches(&self, from: OpId, to: OpId) -> bool {
        if from == to {
            return false;
        }
        scratch::with(|s| {
            s.begin(self.core.ops.len());
            s.visit(from);
            s.stack.push(from);
            while let Some(n) = s.stack.pop() {
                let i = n.index();
                for &nb in self
                    .data_succs(n)
                    .iter()
                    .chain(&self.ov_succ[i])
                    .chain(&self.ov_weak_succ[i])
                {
                    if nb == to {
                        return true;
                    }
                    if s.visit(nb) {
                        s.stack.push(nb);
                    }
                }
            }
            false
        })
    }

    /// A topological order of all operations under the full precedence
    /// relation, written into `out` (which is cleared first). The
    /// in-degree scratch lives in thread-local storage, so with a
    /// caller-reused `out` buffer the query is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] if the relation is cyclic.
    pub fn topo_order_into(&self, out: &mut Vec<OpId>) -> Result<(), DfgError> {
        let n = self.core.ops.len();
        out.clear();
        let cycle_at = scratch::with(|s| {
            s.indeg.clear();
            s.indeg.resize(n, 0);
            for op in &self.core.ops {
                let i = op.id.index();
                s.indeg[i] = u32::try_from(
                    self.preds(op.id).count() + self.weak_preds(op.id).len(),
                )
                .expect("in-degree fits in u32");
            }
            // Kahn's algorithm with `out` doubling as the work queue: a
            // dequeued op is final, so the queue prefix *is* the order.
            out.extend((0..n).filter(|&i| s.indeg[i] == 0).map(OpId::from_index));
            let mut head = 0;
            while head < out.len() {
                let u = out[head];
                head += 1;
                // `succs` dedups overlay arcs against data arcs exactly
                // like the `preds` count above; weak arcs are counted
                // separately on both sides.
                for v in self.succs(u) {
                    s.indeg[v.index()] -= 1;
                    if s.indeg[v.index()] == 0 {
                        out.push(v);
                    }
                }
                for &v in self.weak_succs(u) {
                    s.indeg[v.index()] -= 1;
                    if s.indeg[v.index()] == 0 {
                        out.push(v);
                    }
                }
            }
            if out.len() == n {
                None
            } else {
                Some(
                    (0..n)
                        .find(|&i| s.indeg[i] > 0)
                        .map(|i| self.core.ops[i].name().to_owned())
                        .unwrap_or_default(),
                )
            }
        });
        match cycle_at {
            None => Ok(()),
            Some(on) => Err(DfgError::PrecedenceCycle { on }),
        }
    }

    /// A topological order of all operations under the full precedence
    /// relation.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] if the relation is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>, DfgError> {
        let mut out = Vec::with_capacity(self.core.ops.len());
        self.topo_order_into(&mut out)?;
        Ok(out)
    }

    /// Length (in operations) of the longest path in the precedence DAG —
    /// a lower bound on the number of control steps of any schedule where
    /// each operation takes one step.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] if the relation is cyclic.
    pub fn critical_path_len(&self) -> Result<usize, DfgError> {
        let order = self.topo_order()?;
        let mut depth = vec![1usize; self.core.ops.len()];
        for &u in &order {
            for s in self.succs(u) {
                depth[s.index()] = depth[s.index()].max(depth[u.index()] + 1);
            }
        }
        Ok(depth.iter().copied().max().unwrap_or(0))
    }

    /// Structural sanity check: arities, SSA property, input/use wiring.
    ///
    /// Builders and the parser validate on construction; this re-checks a
    /// graph that has been further mutated.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), DfgError> {
        for op in &self.core.ops {
            if op.inputs.len() != op.kind.arity() {
                return Err(DfgError::ArityMismatch {
                    op: op.name().to_owned(),
                    expected: op.kind.arity(),
                    got: op.inputs.len(),
                });
            }
            if let Some(out) = op.output {
                let v = &self.core.values[out.index()];
                if v.kind.is_input() {
                    return Err(DfgError::InputWritten(v.name().to_owned()));
                }
                if self.core.def[out.index()] != Some(op.id) {
                    return Err(DfgError::MultipleDefinitions(v.name().to_owned()));
                }
            }
        }
        for v in &self.core.values {
            match v.kind {
                ValueKind::Input | ValueKind::Const(_) => {
                    if self.core.def[v.id.index()].is_some() {
                        return Err(DfgError::InputWritten(v.name().to_owned()));
                    }
                }
                ValueKind::Output | ValueKind::Intermediate => {
                    if self.core.def[v.id.index()].is_none() {
                        return Err(DfgError::UndefinedValue(v.name().to_owned()));
                    }
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Count operations per kind — the "operation mix" of a benchmark.
    /// Returns a `BTreeMap` so iteration order (and any report derived
    /// from it) is deterministic.
    #[must_use]
    pub fn op_mix(&self) -> BTreeMap<OpKind, usize> {
        let mut m = BTreeMap::new();
        for op in &self.core.ops {
            *m.entry(op.kind).or_insert(0) += 1;
        }
        m
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dfg {} ({} ops, {} values)",
            self.core.name,
            self.core.ops.len(),
            self.core.values.len()
        )?;
        for op in &self.core.ops {
            let ins: Vec<&str> = op
                .inputs
                .iter()
                .map(|&v| self.core.values[v.index()].name())
                .collect();
            let out = op
                .output
                .map_or("_", |v| self.core.values[v.index()].name());
            writeln!(f, "  {}: {} = {} {}", op.name, out, op.kind, ins.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn diamond() -> Dfg {
        // a,b inputs; t1 = a+b; t2 = a*b; y = t1 - t2
        let mut b = DfgBuilder::new("diamond");
        let a = b.input("a");
        let bb = b.input("b");
        let t1 = b.op("N1", OpKind::Add, &[a, bb], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[a, bb], "t2").unwrap();
        let y = b.op("N3", OpKind::Sub, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn preds_and_succs() {
        let d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        assert!(d.data_preds(n1).is_empty());
        assert_eq!(d.data_succs(n1), [n3]);
        let mut p = d.data_preds(n3).to_vec();
        p.sort();
        assert_eq!(p, vec![n1, n2]);
    }

    #[test]
    fn preds_iter_matches_data_plus_overlay() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        d.add_precedence(n1, n2).unwrap();
        // overlay arc n1->n2 appears after n2's data preds, once.
        let p: Vec<OpId> = d.preds(n2).collect();
        assert_eq!(p.iter().filter(|&&x| x == n1).count(), 1);
        // an overlay arc duplicating a data dependence is suppressed.
        d.add_precedence(n1, n3).unwrap();
        let p3: Vec<OpId> = d.preds(n3).collect();
        assert_eq!(p3.iter().filter(|&&x| x == n1).count(), 1);
    }

    #[test]
    fn truncate_restores_adjacency() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let sp = d.arc_savepoint();
        d.add_precedence(n1, n2).unwrap();
        d.add_weak_precedence(n2, n1).unwrap_err();
        assert_eq!(d.preds(n2).count(), 1);
        assert_eq!(d.truncate_arcs(sp), 1);
        assert_eq!(d.preds(n2).count(), 0);
        assert!(d.weak_preds(n1).is_empty());
    }

    #[test]
    fn reaches_is_transitive_and_irreflexive() {
        let d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        assert!(d.reaches(n1, n3));
        assert!(!d.reaches(n3, n1));
        assert!(!d.reaches(n1, n1));
    }

    #[test]
    fn extra_precedence_cycle_rejected() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        d.add_precedence(n1, n2).unwrap();
        assert!(matches!(
            d.add_precedence(n2, n1),
            Err(DfgError::PrecedenceCycle { .. })
        ));
        assert!(matches!(
            d.add_precedence(n3, n1),
            Err(DfgError::PrecedenceCycle { .. })
        ));
        // graph unchanged by failed insertion
        assert_eq!(d.extra_precedence().len(), 1);
    }

    #[test]
    fn add_precedence_is_idempotent() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        d.add_precedence(n1, n2).unwrap();
        d.add_precedence(n1, n2).unwrap();
        assert_eq!(d.extra_precedence().len(), 1);
        assert!(d.remove_precedence(n1, n2));
        assert!(!d.remove_precedence(n1, n2));
        // adjacency cleaned up too: re-adding works and is visible.
        assert_eq!(d.preds(n2).count(), 0);
        d.add_precedence(n1, n2).unwrap();
        assert_eq!(d.preds(n2).count(), 1);
    }

    #[test]
    fn topo_order_respects_extra_arcs() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        d.add_precedence(n2, n1).unwrap();
        let order = d.topo_order().unwrap();
        let pos = |o: OpId| order.iter().position(|&x| x == o).unwrap();
        assert!(pos(n2) < pos(n1));
    }

    #[test]
    fn critical_path_of_diamond_is_two() {
        let d = diamond();
        assert_eq!(d.critical_path_len().unwrap(), 2);
    }

    #[test]
    fn validate_accepts_wellformed() {
        diamond().validate().unwrap();
    }

    #[test]
    fn op_mix_counts() {
        let d = diamond();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Add], 1);
        assert_eq!(mix[&OpKind::Mul], 1);
        assert_eq!(mix[&OpKind::Sub], 1);
        // BTreeMap: kinds iterate in Ord order, deterministically.
        let kinds: Vec<OpKind> = mix.keys().copied().collect();
        let mut sorted = kinds.clone();
        sorted.sort();
        assert_eq!(kinds, sorted);
    }

    #[test]
    fn display_contains_ops() {
        let s = diamond().to_string();
        assert!(s.contains("N1"));
        assert!(s.contains("t1"));
    }
}
