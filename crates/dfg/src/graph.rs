use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{DfgError, OpKind, Value, ValueId, ValueKind};

/// Index of an [`Operation`] inside its [`Dfg`].
///
/// Ids are dense (0..num_ops) and stable for the lifetime of the graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The dense index of this operation.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        OpId(u32::try_from(index).expect("op index fits in u32"))
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One operation node of the data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub(crate) id: OpId,
    pub(crate) name: String,
    pub(crate) kind: OpKind,
    pub(crate) inputs: Vec<ValueId>,
    pub(crate) output: Option<ValueId>,
}

impl Operation {
    /// The operation's id.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The source-level node name, e.g. `"N21"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation kind.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The values read by this operation, in port order.
    #[must_use]
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// The value defined by this operation, if any.
    #[must_use]
    pub fn output(&self) -> Option<ValueId> {
        self.output
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.kind)
    }
}

/// A behavioral data-flow graph: values, operations and precedence.
///
/// Construct with [`DfgBuilder`](crate::DfgBuilder) or [`parse`](crate::parse).
/// The graph is SSA-like: every non-input value has exactly one defining
/// operation. Besides data dependences, extra *precedence arcs* can be added
/// (see [`Dfg::add_precedence`]); the synthesis algorithm uses these to
/// materialize the scheduling constraints imposed by module and register
/// mergers.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// The data-flow content, fixed once built. Shared by reference:
    /// cloning a `Dfg` bumps a refcount instead of copying every
    /// operation, value, use list and name table — synthesis mutates
    /// only the arc overlay below, so all trial states of a run share
    /// one core.
    pub(crate) core: Arc<DfgCore>,
    /// Extra precedence arcs (from, to) beyond data dependences.
    pub(crate) extra_prec: Vec<(OpId, OpId)>,
    /// Weak precedence arcs: `step(from) <= step(to)` (same step allowed).
    /// Used for register-sharing constraints, where a value may be read
    /// in the very step its successor value is defined (registers are
    /// read at the start of a cycle and written at its end).
    pub(crate) weak_prec: Vec<(OpId, OpId)>,
}

/// The immutable half of a [`Dfg`]: everything except the precedence-arc
/// overlay. Built once by [`DfgBuilder`](crate::DfgBuilder)/the parser
/// and never touched again, which is what makes sharing it via [`Arc`]
/// sound.
#[derive(Debug, PartialEq)]
pub(crate) struct DfgCore {
    pub(crate) name: String,
    pub(crate) values: Vec<Value>,
    pub(crate) ops: Vec<Operation>,
    /// Defining operation per value (None for inputs/constants).
    pub(crate) def: Vec<Option<OpId>>,
    /// Consumer operations per value.
    pub(crate) uses: Vec<Vec<OpId>>,
    /// Loop-carried value pairs `(produced, consumed-next-iteration)`.
    pub(crate) loop_carried: Vec<(ValueId, ValueId)>,
    pub(crate) value_names: HashMap<String, ValueId>,
    pub(crate) op_names: HashMap<String, OpId>,
}

impl PartialEq for Dfg {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.core, &other.core) || self.core == other.core)
            && self.extra_prec == other.extra_prec
            && self.weak_prec == other.weak_prec
    }
}

/// A position in a [`Dfg`]'s precedence-arc overlay, taken with
/// [`Dfg::arc_savepoint`] and restored with [`Dfg::truncate_arcs`].
///
/// The synthesis transaction journal uses this pair to undo a merger's
/// scheduling constraints: arcs are only ever *appended* by
/// [`Dfg::add_precedence`]/[`Dfg::add_weak_precedence`], so rolling back
/// is a truncation. [`Dfg::remove_precedence`] breaks that discipline
/// and must not be interleaved with an outstanding savepoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcSavepoint {
    strict: usize,
    weak: usize,
}

impl Dfg {
    /// The graph's name (benchmark name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.core.ops.len()
    }

    /// Number of values.
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.core.values.len()
    }

    /// All operations in id order.
    #[must_use]
    pub fn ops(&self) -> &[Operation] {
        &self.core.ops
    }

    /// All values in id order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.core.values
    }

    /// Look up an operation by id.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.core.ops[id.index()]
    }

    /// Look up a value by id.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.core.values[id.index()]
    }

    /// Find an operation by name.
    #[must_use]
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.core.op_names.get(name).copied()
    }

    /// Find a value by name.
    #[must_use]
    pub fn value_by_name(&self, name: &str) -> Option<ValueId> {
        self.core.value_names.get(name).copied()
    }

    /// The operation defining `value`, if any (inputs and constants have
    /// none).
    #[must_use]
    pub fn def_of(&self, value: ValueId) -> Option<OpId> {
        self.core.def[value.index()]
    }

    /// The operations consuming `value`.
    #[must_use]
    pub fn uses_of(&self, value: ValueId) -> &[OpId] {
        &self.core.uses[value.index()]
    }

    /// Iterator over primary-input value ids.
    pub fn inputs(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.core.values
            .iter()
            .filter(|v| v.kind.is_input())
            .map(Value::id)
    }

    /// Iterator over primary-output value ids.
    pub fn outputs(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.core.values
            .iter()
            .filter(|v| v.kind.is_output())
            .map(Value::id)
    }

    /// Loop-carried `(produced, consumed-next-iteration)` value pairs.
    #[must_use]
    pub fn loop_carried(&self) -> &[(ValueId, ValueId)] {
        &self.core.loop_carried
    }

    /// Direct data-dependence predecessors of `op` (producers of its
    /// inputs), deduplicated.
    #[must_use]
    pub fn data_preds(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for &v in &self.core.ops[op.index()].inputs {
            if let Some(p) = self.core.def[v.index()] {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Direct data-dependence successors of `op` (consumers of its output),
    /// deduplicated.
    #[must_use]
    pub fn data_succs(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        if let Some(v) = self.core.ops[op.index()].output {
            for &u in &self.core.uses[v.index()] {
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
        out
    }

    /// Extra (non-data) precedence arcs.
    #[must_use]
    pub fn extra_precedence(&self) -> &[(OpId, OpId)] {
        &self.extra_prec
    }

    /// Direct precedence predecessors: data predecessors plus extra-arc
    /// sources.
    #[must_use]
    pub fn preds(&self, op: OpId) -> Vec<OpId> {
        let mut out = self.data_preds(op);
        for &(a, b) in &self.extra_prec {
            if b == op && !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    /// Direct precedence successors: data successors plus extra-arc targets.
    #[must_use]
    pub fn succs(&self, op: OpId) -> Vec<OpId> {
        let mut out = self.data_succs(op);
        for &(a, b) in &self.extra_prec {
            if a == op && !out.contains(&b) {
                out.push(b);
            }
        }
        out
    }

    /// Add an extra precedence arc `from -> to` (a scheduling constraint:
    /// `from` strictly before `to`).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] (and leaves the graph
    /// unchanged) if the arc would make the precedence relation cyclic, and
    /// [`DfgError::InvalidId`] if either id is out of range.
    pub fn add_precedence(&mut self, from: OpId, to: OpId) -> Result<(), DfgError> {
        if from.index() >= self.core.ops.len() || to.index() >= self.core.ops.len() {
            return Err(DfgError::InvalidId(format!("{from} -> {to}")));
        }
        if from == to {
            return Err(DfgError::PrecedenceCycle {
                on: self.core.ops[from.index()].name.clone(),
            });
        }
        if self.extra_prec.contains(&(from, to)) {
            return Ok(());
        }
        // Adding from->to creates a cycle iff to already reaches from
        // (through strict or weak arcs — a weak back-path plus this
        // strict arc is already unsatisfiable).
        if self.reaches(to, from) {
            return Err(DfgError::PrecedenceCycle {
                on: self.core.ops[from.index()].name.clone(),
            });
        }
        self.extra_prec.push((from, to));
        Ok(())
    }

    /// Add a weak precedence arc `from -> to`: `from` must be scheduled
    /// no later than `to` (the same control step is allowed). Register-
    /// sharing constraints use this form — a register may be read in the
    /// very step its next value is written.
    ///
    /// # Errors
    ///
    /// As for [`Dfg::add_precedence`]. Weak cycles are also rejected
    /// (conservatively: `a <= b <= a` would be satisfiable but is never
    /// useful for lifetime ordering and would complicate scheduling).
    pub fn add_weak_precedence(&mut self, from: OpId, to: OpId) -> Result<(), DfgError> {
        if from.index() >= self.core.ops.len() || to.index() >= self.core.ops.len() {
            return Err(DfgError::InvalidId(format!("{from} ~> {to}")));
        }
        if from == to {
            // `step(x) <= step(x)` is trivially true.
            return Ok(());
        }
        if self.weak_prec.contains(&(from, to)) {
            return Ok(());
        }
        if self.reaches(to, from) {
            return Err(DfgError::PrecedenceCycle {
                on: self.core.ops[from.index()].name.clone(),
            });
        }
        self.weak_prec.push((from, to));
        Ok(())
    }

    /// Weak (same-step-allowed) precedence arcs.
    #[must_use]
    pub fn weak_precedence(&self) -> &[(OpId, OpId)] {
        &self.weak_prec
    }

    /// Direct weak predecessors of `op`.
    #[must_use]
    pub fn weak_preds(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for &(a, b) in &self.weak_prec {
            if b == op && !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    /// Direct weak successors of `op`.
    #[must_use]
    pub fn weak_succs(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for &(a, b) in &self.weak_prec {
            if a == op && !out.contains(&b) {
                out.push(b);
            }
        }
        out
    }

    /// The current end of the precedence-arc overlay. Together with
    /// [`Dfg::truncate_arcs`] this is the graph half of the synthesis
    /// transaction journal: a tentative merger appends arcs, and undoing
    /// it truncates back to the savepoint.
    #[must_use]
    pub fn arc_savepoint(&self) -> ArcSavepoint {
        ArcSavepoint {
            strict: self.extra_prec.len(),
            weak: self.weak_prec.len(),
        }
    }

    /// Drop every arc appended since `sp` was taken, returning how many
    /// were removed. Arcs are append-only under
    /// [`Dfg::add_precedence`]/[`Dfg::add_weak_precedence`], so this
    /// restores the overlay bit-identically to its state at the
    /// savepoint.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is shorter than the savepoint — the arc
    /// discipline was broken (e.g. [`Dfg::remove_precedence`] ran with
    /// the savepoint outstanding).
    pub fn truncate_arcs(&mut self, sp: ArcSavepoint) -> usize {
        assert!(
            self.extra_prec.len() >= sp.strict && self.weak_prec.len() >= sp.weak,
            "arc savepoint invalidated: arcs were removed while it was outstanding"
        );
        let dropped = (self.extra_prec.len() - sp.strict) + (self.weak_prec.len() - sp.weak);
        self.extra_prec.truncate(sp.strict);
        self.weak_prec.truncate(sp.weak);
        dropped
    }

    /// Whether two graphs share one immutable core (i.e. one was cloned
    /// from the other and only their arc overlays may differ).
    #[must_use]
    pub fn shares_core(&self, other: &Dfg) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// A clone that does **not** share the immutable core — the cost
    /// profile every `Dfg::clone()` had before cores were `Arc`-shared.
    /// Kept for the clone-based trial oracle and its benchmarks.
    #[must_use]
    pub fn deep_clone(&self) -> Dfg {
        Dfg {
            core: Arc::new(DfgCore {
                name: self.core.name.clone(),
                values: self.core.values.clone(),
                ops: self.core.ops.clone(),
                def: self.core.def.clone(),
                uses: self.core.uses.clone(),
                loop_carried: self.core.loop_carried.clone(),
                value_names: self.core.value_names.clone(),
                op_names: self.core.op_names.clone(),
            }),
            extra_prec: self.extra_prec.clone(),
            weak_prec: self.weak_prec.clone(),
        }
    }

    /// Remove a previously added extra precedence arc. Returns whether the
    /// arc was present.
    pub fn remove_precedence(&mut self, from: OpId, to: OpId) -> bool {
        let before = self.extra_prec.len();
        self.extra_prec.retain(|&(a, b)| (a, b) != (from, to));
        self.extra_prec.len() != before
    }

    /// Whether `from` (transitively) precedes-or-equals `to` under data
    /// dependences, extra strict arcs and weak arcs. An operation does
    /// not reach itself.
    #[must_use]
    pub fn reaches(&self, from: OpId, to: OpId) -> bool {
        if from == to {
            return false;
        }
        let mut seen = vec![false; self.core.ops.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            for s in self.succs(n).into_iter().chain(self.weak_succs(n)) {
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// A topological order of all operations under the full precedence
    /// relation.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] if the relation is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>, DfgError> {
        let n = self.core.ops.len();
        let mut indeg = vec![0usize; n];
        for op in &self.core.ops {
            indeg[op.id.index()] = self.preds(op.id).len() + self.weak_preds(op.id).len();
        }
        let mut queue: Vec<OpId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(OpId::from_index)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for s in self.succs(u).into_iter().chain(self.weak_succs(u)) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            let on = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| self.core.ops[i].name.clone())
                .unwrap_or_default();
            return Err(DfgError::PrecedenceCycle { on });
        }
        Ok(order)
    }

    /// Length (in operations) of the longest path in the precedence DAG —
    /// a lower bound on the number of control steps of any schedule where
    /// each operation takes one step.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::PrecedenceCycle`] if the relation is cyclic.
    pub fn critical_path_len(&self) -> Result<usize, DfgError> {
        let order = self.topo_order()?;
        let mut depth = vec![1usize; self.core.ops.len()];
        for &u in &order {
            for s in self.succs(u) {
                depth[s.index()] = depth[s.index()].max(depth[u.index()] + 1);
            }
        }
        Ok(depth.iter().copied().max().unwrap_or(0))
    }

    /// Structural sanity check: arities, SSA property, input/use wiring.
    ///
    /// Builders and the parser validate on construction; this re-checks a
    /// graph that has been further mutated.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), DfgError> {
        for op in &self.core.ops {
            if op.inputs.len() != op.kind.arity() {
                return Err(DfgError::ArityMismatch {
                    op: op.name.clone(),
                    expected: op.kind.arity(),
                    got: op.inputs.len(),
                });
            }
            if let Some(out) = op.output {
                let v = &self.core.values[out.index()];
                if v.kind.is_input() {
                    return Err(DfgError::InputWritten(v.name.clone()));
                }
                if self.core.def[out.index()] != Some(op.id) {
                    return Err(DfgError::MultipleDefinitions(v.name.clone()));
                }
            }
        }
        for v in &self.core.values {
            match v.kind {
                ValueKind::Input | ValueKind::Const(_) => {
                    if self.core.def[v.id.index()].is_some() {
                        return Err(DfgError::InputWritten(v.name.clone()));
                    }
                }
                ValueKind::Output | ValueKind::Intermediate => {
                    if self.core.def[v.id.index()].is_none() {
                        return Err(DfgError::UndefinedValue(v.name.clone()));
                    }
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Count operations per kind — the "operation mix" of a benchmark.
    #[must_use]
    pub fn op_mix(&self) -> HashMap<OpKind, usize> {
        let mut m = HashMap::new();
        for op in &self.core.ops {
            *m.entry(op.kind).or_insert(0) += 1;
        }
        m
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dfg {} ({} ops, {} values)",
            self.core.name,
            self.core.ops.len(),
            self.core.values.len()
        )?;
        for op in &self.core.ops {
            let ins: Vec<&str> = op
                .inputs
                .iter()
                .map(|&v| self.core.values[v.index()].name.as_str())
                .collect();
            let out = op
                .output
                .map(|v| self.core.values[v.index()].name.clone())
                .unwrap_or_else(|| "_".into());
            writeln!(f, "  {}: {} = {} {}", op.name, out, op.kind, ins.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn diamond() -> Dfg {
        // a,b inputs; t1 = a+b; t2 = a*b; y = t1 - t2
        let mut b = DfgBuilder::new("diamond");
        let a = b.input("a");
        let bb = b.input("b");
        let t1 = b.op("N1", OpKind::Add, &[a, bb], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[a, bb], "t2").unwrap();
        let y = b.op("N3", OpKind::Sub, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn preds_and_succs() {
        let d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        assert!(d.data_preds(n1).is_empty());
        assert_eq!(d.data_succs(n1), vec![n3]);
        let mut p = d.data_preds(n3);
        p.sort();
        assert_eq!(p, vec![n1, n2]);
    }

    #[test]
    fn reaches_is_transitive_and_irreflexive() {
        let d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        assert!(d.reaches(n1, n3));
        assert!(!d.reaches(n3, n1));
        assert!(!d.reaches(n1, n1));
    }

    #[test]
    fn extra_precedence_cycle_rejected() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        d.add_precedence(n1, n2).unwrap();
        assert!(matches!(
            d.add_precedence(n2, n1),
            Err(DfgError::PrecedenceCycle { .. })
        ));
        assert!(matches!(
            d.add_precedence(n3, n1),
            Err(DfgError::PrecedenceCycle { .. })
        ));
        // graph unchanged by failed insertion
        assert_eq!(d.extra_precedence().len(), 1);
    }

    #[test]
    fn add_precedence_is_idempotent() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        d.add_precedence(n1, n2).unwrap();
        d.add_precedence(n1, n2).unwrap();
        assert_eq!(d.extra_precedence().len(), 1);
        assert!(d.remove_precedence(n1, n2));
        assert!(!d.remove_precedence(n1, n2));
    }

    #[test]
    fn topo_order_respects_extra_arcs() {
        let mut d = diamond();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        d.add_precedence(n2, n1).unwrap();
        let order = d.topo_order().unwrap();
        let pos = |o: OpId| order.iter().position(|&x| x == o).unwrap();
        assert!(pos(n2) < pos(n1));
    }

    #[test]
    fn critical_path_of_diamond_is_two() {
        let d = diamond();
        assert_eq!(d.critical_path_len().unwrap(), 2);
    }

    #[test]
    fn validate_accepts_wellformed() {
        diamond().validate().unwrap();
    }

    #[test]
    fn op_mix_counts() {
        let d = diamond();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Add], 1);
        assert_eq!(mix[&OpKind::Mul], 1);
        assert_eq!(mix[&OpKind::Sub], 1);
    }

    #[test]
    fn display_contains_ops() {
        let s = diamond().to_string();
        assert!(s.contains("N1"));
        assert!(s.contains("t1"));
    }
}
