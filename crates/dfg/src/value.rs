use std::fmt;

use crate::Sym;

/// Index of a [`Value`] inside its [`Dfg`](crate::Dfg).
///
/// Ids are dense (0..num_values) and stable for the lifetime of the graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// The dense index of this value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    ///
    /// Mostly useful in tests and when iterating `0..dfg.num_values()`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ValueId(u32::try_from(index).expect("value index fits in u32"))
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What role a value plays in the behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ValueKind {
    /// Primary input — externally controllable.
    Input,
    /// Primary output — externally observable. Defined by exactly one
    /// operation.
    Output,
    /// Internal variable — defined by exactly one operation, consumed by
    /// at least one.
    Intermediate,
    /// Compile-time constant with the given (untruncated) integer value.
    Const(i64),
}

impl ValueKind {
    /// Whether this value arrives from the environment.
    #[must_use]
    pub fn is_input(self) -> bool {
        matches!(self, ValueKind::Input)
    }

    /// Whether this value leaves to the environment.
    #[must_use]
    pub fn is_output(self) -> bool {
        matches!(self, ValueKind::Output)
    }

    /// Whether this value is a constant.
    #[must_use]
    pub fn is_const(self) -> bool {
        matches!(self, ValueKind::Const(_))
    }
}

/// A named value (variable) in the data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    pub(crate) id: ValueId,
    pub(crate) name: Sym,
    pub(crate) kind: ValueKind,
    /// `true` when the value is the 1-bit result of a relational operation
    /// and feeds the controller rather than the data path.
    pub(crate) condition: bool,
}

impl Value {
    /// The value's id.
    #[must_use]
    pub fn id(&self) -> ValueId {
        self.id
    }

    /// The source-level name (e.g. `"x1"`).
    #[must_use]
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The interned name symbol.
    #[must_use]
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// The value's role.
    #[must_use]
    pub fn kind(&self) -> ValueKind {
        self.kind
    }

    /// Whether this value is a 1-bit condition flag feeding the controller.
    #[must_use]
    pub fn is_condition(&self) -> bool {
        self.condition
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id = ValueId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "v17");
    }

    #[test]
    fn kind_predicates() {
        assert!(ValueKind::Input.is_input());
        assert!(!ValueKind::Input.is_output());
        assert!(ValueKind::Output.is_output());
        assert!(ValueKind::Const(3).is_const());
        assert!(!ValueKind::Intermediate.is_const());
    }
}
