//! # hlts-core — integrated scheduling and allocation for test synthesis
//!
//! The primary contribution of *Yang & Peng, DATE 1998*: a high-level
//! test synthesis algorithm that performs operation scheduling and data
//! path allocation **simultaneously**, by iteratively applying merger
//! transformations selected with a controllability/observability balance
//! principle and priced by ΔC = α·ΔE + β·ΔH (the paper's Algorithm 1).
//!
//! * [`IntegratedSynthesizer`] — the algorithm itself;
//! * [`SynthesisParams`] — the paper's user parameters `k`, `α`, `β`,
//!   plus the module library and bit width used for ΔH;
//! * [`DesignState`] — the evolving (graph, schedule, allocation) triple;
//! * [`StateTxn`] / [`trial_merge`] — the transaction layer: candidate
//!   mergers are applied **in place**, priced, and rolled back through
//!   a journal of fine-grained undo operations instead of cloning the
//!   state (the [`oracle`] module preserves the clone-based
//!   formulation as a golden reference);
//! * [`baselines`] — the three comparison flows of the evaluation
//!   section: CAMAD-style connectivity synthesis, Approach 1
//!   (force-directed scheduling + Lee allocation) and Approach 2
//!   (mobility-path scheduling + modified left-edge allocation);
//! * [`SynthesisResult`] / [`DesignMetrics`] — reporting in the shape of
//!   the paper's tables.
//!
//! # Example
//!
//! ```
//! use hlts_core::{IntegratedSynthesizer, SynthesisParams};
//! use hlts_dfg::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = parse(
//!     "dfg t { input a, b, c;
//!        N1: p = a * b; N2: q = b * c; N3: r = p - q; N4: s = p + c;
//!        output r, s; }",
//! )?;
//! let result = IntegratedSynthesizer::new(SynthesisParams::default()).run(&dfg)?;
//! assert!(result.allocation.num_modules() <= 4);
//! result.schedule.validate(&result.dfg)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod algorithm;
pub mod baselines;
mod candidates;
mod delta_eval;
mod error;
pub mod oracle;
mod progress;
mod report;
mod resched;
mod state;
mod trace;
mod txn;

pub use algorithm::{
    EvalMode, IntegratedSynthesizer, SelectionPolicy, SynthesisParams, WarmSynthesis,
};
pub use trace::{MergeTrace, ReplayStats, TraceEntry, TraceMergeKind, TraceWinner};
pub use progress::{CancelToken, NullSink, ProgressEvent, ProgressSink, RunCtl};
pub use candidates::{MergeCandidate, MergeKind};
pub use delta_eval::{DeltaEvaluator, EvalStats};
pub use error::CoreError;
pub use report::{DesignMetrics, SynthesisResult};
pub use resched::{
    disjointness_arcs, merge_modules_with_resched, merge_modules_with_resched_using,
    merge_registers_with_resched, merge_registers_with_resched_using, OrderStrategy,
};
pub use state::DesignState;
pub use txn::{trial_merge, StateTxn, TxnSavepoint, TxnStats};

// The shared testability engine lives in `hlts-testability`; re-export
// the pieces `SynthesisResult` and `DesignState` expose so downstream
// users don't need a direct dependency for them.
pub use hlts_testability::{TestabilityCacheStats, TestabilityEngine};

// The invariant auditor lives in `hlts-check`; re-export the report
// types [`DesignState::audit`] returns so callers can inspect
// violations without a direct dependency.
pub use hlts_check::{AuditReport, AuditViolation};
