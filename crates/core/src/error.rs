use std::error::Error;
use std::fmt;

use hlts_alloc::AllocError;
use hlts_dfg::DfgError;
use hlts_etpn::EtpnBuildError;
use hlts_sched::SchedError;

/// Errors from the synthesis drivers.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Graph-level error (cycle, malformed input).
    Dfg(DfgError),
    /// Scheduling failed.
    Sched(SchedError),
    /// Binding operation failed.
    Alloc(AllocError),
    /// ETPN lowering failed.
    Etpn(EtpnBuildError),
    /// A merge was rejected (with the reason); not fatal inside the
    /// algorithm, surfaced only by the standalone merge helpers.
    MergeRejected(String),
    /// The synthesis parameters are unusable (NaN/negative weights,
    /// `k == 0`); reported by [`SynthesisParams::validate`] before any
    /// work starts.
    ///
    /// [`SynthesisParams::validate`]: crate::SynthesisParams::validate
    InvalidParams(String),
    /// The invariant auditor found a corrupted design state (see
    /// [`DesignState::audit`]); carries the rendered report.
    ///
    /// [`DesignState::audit`]: crate::DesignState::audit
    AuditFailed(String),
    /// The run's [`CancelToken`](crate::CancelToken) fired and the loop
    /// stopped cooperatively between iterations. The state the run was
    /// building is discarded; nothing was corrupted.
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dfg(e) => write!(f, "graph error: {e}"),
            CoreError::Sched(e) => write!(f, "scheduling error: {e}"),
            CoreError::Alloc(e) => write!(f, "allocation error: {e}"),
            CoreError::Etpn(e) => write!(f, "lowering error: {e}"),
            CoreError::MergeRejected(r) => write!(f, "merge rejected: {r}"),
            CoreError::InvalidParams(r) => write!(f, "invalid parameters: {r}"),
            CoreError::AuditFailed(r) => write!(f, "design-state audit failed: {r}"),
            CoreError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dfg(e) => Some(e),
            CoreError::Sched(e) => Some(e),
            CoreError::Alloc(e) => Some(e),
            CoreError::Etpn(e) => Some(e),
            CoreError::MergeRejected(_)
            | CoreError::InvalidParams(_)
            | CoreError::AuditFailed(_)
            | CoreError::Cancelled => None,
        }
    }
}

impl From<DfgError> for CoreError {
    fn from(e: DfgError) -> Self {
        CoreError::Dfg(e)
    }
}

impl From<SchedError> for CoreError {
    fn from(e: SchedError) -> Self {
        CoreError::Sched(e)
    }
}

impl From<AllocError> for CoreError {
    fn from(e: AllocError) -> Self {
        CoreError::Alloc(e)
    }
}

impl From<EtpnBuildError> for CoreError {
    fn from(e: EtpnBuildError) -> Self {
        CoreError::Etpn(e)
    }
}
