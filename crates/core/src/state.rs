//! The evolving design state of the synthesis loop.

use std::sync::Arc;

use hlts_alloc::Allocation;
use hlts_dfg::Dfg;
use hlts_etpn::Etpn;
use hlts_sched::{list_schedule, reschedule_in_place, Lifetimes, ListPriority, Schedule};
use hlts_testability::TestabilityEngine;

use crate::txn::{StateTxn, TxnCounters, TxnStats};
use crate::CoreError;

/// A (graph, schedule, allocation) triple — the state Algorithm 1
/// transforms. The graph accumulates the precedence arcs that
/// materialize merge-imposed scheduling constraints.
///
/// Trial mergers edit the state **in place** through a [`StateTxn`]
/// (see [`DesignState::begin`]) and roll back via its undo journal;
/// nothing on the candidate hot path clones the state. The parallel
/// shortlist threads each take a [`DesignState::fork`] — a cheap copy
/// whose graph shares the immutable [`Dfg`] core via [`Arc`] and which
/// shares the run's [`TestabilityEngine`] and transaction counters.
#[derive(Debug, Clone)]
pub struct DesignState {
    /// The behavioral graph, including accumulated scheduling-constraint
    /// arcs.
    pub dfg: Dfg,
    /// The current schedule (always legal for `dfg` and `allocation`).
    pub schedule: Schedule,
    /// The current binding.
    pub allocation: Allocation,
    /// Shared testability-analysis cache (see [`DesignState::testability_engine`]).
    testability: Arc<TestabilityEngine>,
    /// Shared transaction-layer counters (see [`DesignState::txn_stats`]).
    txn_counters: Arc<TxnCounters>,
}

impl DesignState {
    /// The paper's starting point: "a simple default scheduling /
    /// allocation" — one module per operation, one register per value,
    /// ASAP list schedule.
    ///
    /// # Errors
    ///
    /// Fails only for a cyclic input graph.
    pub fn initial(dfg: &Dfg) -> Result<Self, CoreError> {
        let allocation = Allocation::one_to_one(dfg);
        let schedule = list_schedule(dfg, &[], ListPriority::CriticalPath)?;
        Ok(DesignState::from_parts(dfg, schedule, allocation))
    }

    /// Assemble a state from an explicit triple, with a fresh
    /// testability engine. The graph is shared, not deep-copied: the
    /// state's copy references the same immutable core.
    #[must_use]
    pub fn from_parts(dfg: &Dfg, schedule: Schedule, allocation: Allocation) -> Self {
        DesignState {
            dfg: dfg.clone(),
            schedule,
            allocation,
            testability: Arc::new(TestabilityEngine::new()),
            txn_counters: Arc::new(TxnCounters::default()),
        }
    }

    /// The shared testability-analysis engine. All forks of a state
    /// (the trial candidates of a synthesis run) reference the same
    /// engine, so memoized analyses are pooled across candidates and
    /// threads.
    #[must_use]
    pub fn testability_engine(&self) -> &TestabilityEngine {
        &self.testability
    }

    /// Open a transaction on this state (see [`StateTxn`]): edits apply
    /// in place, journaled; dropping the transaction rolls them back,
    /// [`StateTxn::commit`] keeps them.
    pub fn begin(&mut self) -> StateTxn<'_> {
        StateTxn::begin(self)
    }

    /// A cheap copy for a parallel evaluation worker: the schedule and
    /// binding are copied (a worker's transactions must not touch the
    /// base state), while the graph's immutable core, the testability
    /// engine and the transaction counters are shared.
    #[must_use]
    pub fn fork(&self) -> DesignState {
        self.clone()
    }

    /// Snapshot of the run's transaction-layer counters, aggregated
    /// over this state and all its forks.
    #[must_use]
    pub fn txn_stats(&self) -> TxnStats {
        self.txn_counters.snapshot()
    }

    /// A trial clone that deep-copies the graph (no shared core) — the
    /// cost profile every per-candidate clone had before the
    /// transaction layer existed. Used only by the clone oracle
    /// (`crate::oracle`) and its benchmark; the engine and counters stay
    /// shared, as they were then.
    #[must_use]
    pub fn deep_trial_clone(&self) -> DesignState {
        DesignState {
            dfg: self.dfg.deep_clone(),
            schedule: self.schedule.clone(),
            allocation: self.allocation.clone(),
            testability: Arc::clone(&self.testability),
            txn_counters: Arc::clone(&self.txn_counters),
        }
    }

    /// The shared counter block, handed to transactions (which must be
    /// able to count in `Drop` while the state is mutably borrowed).
    pub(crate) fn txn_counters(&self) -> Arc<TxnCounters> {
        Arc::clone(&self.txn_counters)
    }

    /// Re-solve the schedule under the current constraint arcs and
    /// module binding, staying close to the previous schedule.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures (cyclic constraints are prevented
    /// by [`Dfg::add_precedence`], so this is defensive).
    ///
    /// [`Dfg::add_precedence`]: hlts_dfg::Dfg::add_precedence
    pub fn reschedule(&mut self) -> Result<(), CoreError> {
        reschedule_in_place(
            &self.dfg,
            &self.allocation,
            &mut self.schedule,
            ListPriority::CriticalPath,
        )?;
        Ok(())
    }

    /// Lower the current state to ETPN.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (inconsistent state).
    pub fn lower(&self) -> Result<Etpn, CoreError> {
        Ok(Etpn::from_parts(
            &self.dfg,
            &self.schedule,
            &self.allocation,
        )?)
    }

    /// Lifetime analysis of the current schedule (the paper's step 13).
    #[must_use]
    pub fn lifetimes(&self) -> Lifetimes {
        Lifetimes::compute(&self.dfg, &self.schedule)
    }

    /// Run the cross-crate invariant auditor over this state (see
    /// [`hlts_check::audit_design`]): binding consistency in both
    /// directions, schedule legality under module/register sharing,
    /// arc-overlay well-formedness, and the transaction counters'
    /// balance. Unlike [`DesignState::validate`] (first error wins)
    /// the audit collects **every** violation into a report.
    ///
    /// The merge loop runs this in debug builds after every trial
    /// rollback; the CLI exposes it as `--audit`.
    #[must_use]
    pub fn audit(&self) -> hlts_check::AuditReport {
        let mut report = hlts_check::audit_design(&self.dfg, &self.schedule, &self.allocation);
        let st = self.txn_stats();
        hlts_check::audit_txn_balance(
            &mut report,
            st.begun,
            st.committed,
            st.rolled_back,
            st.ops_recorded,
            st.ops_replayed,
        );
        report
    }

    /// Full consistency check: schedule legal for graph and binding,
    /// register sharing legal for lifetimes.
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.schedule.validate(&self.dfg)?;
        self.schedule
            .validate_groups_src(&self.dfg, &self.allocation)?;
        let lt = self.lifetimes();
        self.allocation.validate(&self.dfg, &self.schedule, &lt)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn initial_state_is_valid() {
        let d = small();
        let s = DesignState::initial(&d).unwrap();
        s.validate().unwrap();
        assert_eq!(s.allocation.num_modules(), 2);
        assert_eq!(s.schedule.num_steps(), 2);
    }

    #[test]
    fn reschedule_after_constraint() {
        let d = small();
        let mut s = DesignState::initial(&d).unwrap();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        // force a gap: N1 before N2 already data-ordered; add a dummy
        // reverse-ish constraint between independent ops is impossible
        // here; just verify rescheduling is stable
        s.reschedule().unwrap();
        s.validate().unwrap();
        assert!(s.schedule.step_of(n1) < s.schedule.step_of(n2));
    }

    #[test]
    fn lower_roundtrip() {
        let d = small();
        let s = DesignState::initial(&d).unwrap();
        let e = s.lower().unwrap();
        assert_eq!(e.execution_time(), 2);
    }
}
