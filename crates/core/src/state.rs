//! The evolving design state of the synthesis loop.

use std::sync::Arc;

use hlts_alloc::Allocation;
use hlts_dfg::Dfg;
use hlts_etpn::Etpn;
use hlts_sched::{list_schedule, Lifetimes, ListPriority, Schedule};
use hlts_testability::TestabilityEngine;

use crate::CoreError;

/// A (graph, schedule, allocation) triple — the state Algorithm 1
/// transforms. The graph accumulates the precedence arcs that
/// materialize merge-imposed scheduling constraints.
///
/// The state also carries the run's shared [`TestabilityEngine`]:
/// cloning a state (every trial candidate is a clone) shares the same
/// engine via [`Arc`], so all candidate evaluations — including the
/// parallel shortlist threads — pool their memoized analyses.
#[derive(Debug, Clone)]
pub struct DesignState {
    /// The behavioral graph, including accumulated scheduling-constraint
    /// arcs.
    pub dfg: Dfg,
    /// The current schedule (always legal for `dfg` and `allocation`).
    pub schedule: Schedule,
    /// The current binding.
    pub allocation: Allocation,
    /// Shared testability-analysis cache (see [`DesignState::testability_engine`]).
    testability: Arc<TestabilityEngine>,
}

impl DesignState {
    /// The paper's starting point: "a simple default scheduling /
    /// allocation" — one module per operation, one register per value,
    /// ASAP list schedule.
    ///
    /// # Errors
    ///
    /// Fails only for a cyclic input graph.
    pub fn initial(dfg: &Dfg) -> Result<Self, CoreError> {
        let allocation = Allocation::one_to_one(dfg);
        let schedule = list_schedule(dfg, &[], ListPriority::CriticalPath)?;
        Ok(DesignState::from_parts(dfg.clone(), schedule, allocation))
    }

    /// Assemble a state from an explicit triple, with a fresh
    /// testability engine.
    #[must_use]
    pub fn from_parts(dfg: Dfg, schedule: Schedule, allocation: Allocation) -> Self {
        DesignState {
            dfg,
            schedule,
            allocation,
            testability: Arc::new(TestabilityEngine::new()),
        }
    }

    /// The shared testability-analysis engine. All clones of a state
    /// (the trial candidates of a synthesis run) reference the same
    /// engine, so memoized analyses are pooled across candidates and
    /// threads.
    #[must_use]
    pub fn testability_engine(&self) -> &TestabilityEngine {
        &self.testability
    }

    /// Re-solve the schedule under the current constraint arcs and
    /// module binding, staying close to the previous schedule.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures (cyclic constraints are prevented
    /// by [`Dfg::add_precedence`], so this is defensive).
    ///
    /// [`Dfg::add_precedence`]: hlts_dfg::Dfg::add_precedence
    pub fn reschedule(&mut self) -> Result<(), CoreError> {
        let prev: Vec<usize> = (0..self.dfg.num_ops())
            .map(|i| self.schedule.step_of(hlts_dfg::OpId::from_index(i)))
            .collect();
        self.schedule = list_schedule(
            &self.dfg,
            &self.allocation.conflict_groups(),
            ListPriority::Previous(prev),
        )?;
        Ok(())
    }

    /// Lower the current state to ETPN.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (inconsistent state).
    pub fn lower(&self) -> Result<Etpn, CoreError> {
        Ok(Etpn::from_parts(
            &self.dfg,
            &self.schedule,
            &self.allocation,
        )?)
    }

    /// Lifetime analysis of the current schedule (the paper's step 13).
    #[must_use]
    pub fn lifetimes(&self) -> Lifetimes {
        Lifetimes::compute(&self.dfg, &self.schedule)
    }

    /// Full consistency check: schedule legal for graph and binding,
    /// register sharing legal for lifetimes.
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.schedule.validate(&self.dfg)?;
        self.schedule
            .validate_groups(&self.dfg, &self.allocation.conflict_groups())?;
        let lt = self.lifetimes();
        self.allocation.validate(&self.dfg, &self.schedule, &lt)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn initial_state_is_valid() {
        let d = small();
        let s = DesignState::initial(&d).unwrap();
        s.validate().unwrap();
        assert_eq!(s.allocation.num_modules(), 2);
        assert_eq!(s.schedule.num_steps(), 2);
    }

    #[test]
    fn reschedule_after_constraint() {
        let d = small();
        let mut s = DesignState::initial(&d).unwrap();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        // force a gap: N1 before N2 already data-ordered; add a dummy
        // reverse-ish constraint between independent ops is impossible
        // here; just verify rescheduling is stable
        s.reschedule().unwrap();
        s.validate().unwrap();
        assert!(s.schedule.step_of(n1) < s.schedule.step_of(n2));
    }

    #[test]
    fn lower_roundtrip() {
        let d = small();
        let s = DesignState::initial(&d).unwrap();
        let e = s.lower().unwrap();
        assert_eq!(e.execution_time(), 2);
    }
}
