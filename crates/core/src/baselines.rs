//! The three comparison flows of the paper's evaluation section.
//!
//! * [`camad`] — the CAMAD high-level synthesis system style (Peng &
//!   Kuchcinski, TCAD 1994): the same iterative merger loop as the
//!   integrated algorithm, but candidates are ranked by connectivity/
//!   closeness gain and ordering decisions optimize the critical path
//!   only — **no testability consideration**;
//! * [`approach1`] — force-directed scheduling (Paulin & Knight) without
//!   testability consideration, followed by the same allocation as
//!   Approach 2 (greedy kind-homogeneous module binding + Lee's
//!   PI/PO-seeded register allocation);
//! * [`approach2`] — Lee, Wolf & Jha: mobility-path scheduling for
//!   testability followed by the modified left-edge allocation.

use std::collections::HashMap;

use hlts_alloc::{
    greedy_module_allocation, lee_register_allocation, module_merge_gain, register_merge_gain,
    Allocation, ConnectivityParams,
};
use hlts_cost::estimate_cost;
use hlts_dfg::{Dfg, FuClass};
use hlts_sched::{fds_schedule, mobility_path_schedule, FuLimits, Lifetimes};

use crate::candidates::MergeKind;
use crate::resched::{
    merge_modules_with_resched_using, merge_registers_with_resched_using, OrderStrategy,
};
use crate::txn::trial_merge;
use crate::{CoreError, DesignState, RunCtl, SynthesisParams, SynthesisResult};

/// CAMAD-style synthesis: iterative mergers ranked by connectivity gain
/// (interconnect saved minus muxes added), priced by the same
/// ΔC = α·ΔE + β·ΔH rule, with rescheduling decisions taken on the
/// critical path alone.
///
/// Register mergers buy little interconnect and cost muxes under this
/// objective, so CAMAD designs keep close to one register per variable —
/// exactly the CAMAD rows of the paper's tables.
///
/// # Errors
///
/// Construction-level failures only (cyclic graph, inconsistent state).
pub fn camad(dfg: &Dfg, params: &SynthesisParams) -> Result<SynthesisResult, CoreError> {
    camad_ctl(dfg, params, &RunCtl::none())
}

/// [`camad`] under an external [`RunCtl`]: like the integrated loop,
/// the token is checked once per merger iteration, between
/// transactions, so cancellation surfaces as
/// [`CoreError::Cancelled`] on a consistent state and an unfired token
/// changes nothing.
///
/// # Errors
///
/// As [`camad`], plus [`CoreError::Cancelled`] when `ctl.cancel` fires.
pub fn camad_ctl(
    dfg: &Dfg,
    params: &SynthesisParams,
    ctl: &RunCtl<'_>,
) -> Result<SynthesisResult, CoreError> {
    params.validate()?;
    // The CAMAD rows of the paper's tables keep one register per variable
    // (12 on Ex, 17 on Dct): register sharing buys little interconnect
    // and costs muxes under the connectivity objective, so the baseline
    // merges functional modules only.
    let conn = ConnectivityParams {
        merge_registers: false,
        ..ConnectivityParams::default()
    };
    let mut state = DesignState::initial(dfg)?;
    let mut merge_log = Vec::new();

    for iteration in 0..params.max_merges {
        if ctl.cancel.is_cancelled() {
            return Err(CoreError::Cancelled);
        }
        ctl.progress.event(crate::ProgressEvent::Iteration {
            iteration,
            merges: merge_log.len(),
        });
        // score all legal pairs by connectivity gain
        let mut cands: Vec<(f64, MergeKind)> = Vec::new();
        let modules: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
        for (i, &a) in modules.iter().enumerate() {
            for &b in &modules[i + 1..] {
                let compatible = state.allocation.module(a).is_some_and(|ma| {
                    state.allocation.module(b).is_some_and(|mb| {
                        ma.ops().iter().all(|&oa| {
                            mb.ops().iter().all(|&ob| {
                                state
                                    .dfg
                                    .op(oa)
                                    .kind()
                                    .fu_class()
                                    .compatible(state.dfg.op(ob).kind().fu_class())
                            })
                        })
                    })
                });
                if !compatible {
                    continue;
                }
                let g = module_merge_gain(&state.dfg, &state.allocation, &conn, a, b);
                cands.push((g, MergeKind::Modules(a, b)));
            }
        }
        if conn.merge_registers {
            let registers: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
            for (i, &a) in registers.iter().enumerate() {
                for &b in &registers[i + 1..] {
                    let g = register_merge_gain(&state.dfg, &state.allocation, &conn, a, b);
                    cands.push((g, MergeKind::Registers(a, b)));
                }
            }
        }
        cands.sort_by(|x, y| {
            y.0.partial_cmp(&x.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| format!("{:?}", x.1).cmp(&format!("{:?}", y.1)))
        });
        if cands.is_empty() {
            break;
        }

        let etpn = state.lower()?;
        let e0 = etpn.execution_time() as f64;
        let h0 = estimate_cost(etpn.data_path(), params.bits, &params.library).total();
        let mut committed = false;
        for chunk in cands.chunks(params.k.max(1)) {
            // Apply → price → rollback, like the integrated loop; only
            // the pricing differs (direct lower + estimate, no ΔC cache).
            let mut best: Option<(f64, MergeKind)> = None;
            for &(_, kind) in chunk {
                let dc = trial_merge(&mut state, kind, OrderStrategy::CriticalPath, |trial| {
                    let etpn1 = trial.lower().ok()?;
                    let e1 = etpn1.execution_time() as f64;
                    let h1 = estimate_cost(etpn1.data_path(), params.bits, &params.library).total();
                    Some(params.alpha * (e1 - e0) + params.beta * (h1 - h0))
                });
                let Some(dc) = dc else { continue };
                if best.as_ref().is_none_or(|(b, _)| dc < *b) {
                    best = Some((dc, kind));
                }
            }
            if let Some((dc, kind)) = best {
                if dc <= params.accept_threshold {
                    // Re-apply the deterministic winner and commit it.
                    match kind {
                        MergeKind::Modules(a, b) => merge_modules_with_resched_using(
                            &mut state,
                            a,
                            b,
                            OrderStrategy::CriticalPath,
                        )?,
                        MergeKind::Registers(a, b) => merge_registers_with_resched_using(
                            &mut state,
                            a,
                            b,
                            OrderStrategy::CriticalPath,
                        )?,
                    }
                    merge_log.push(format!("camad {kind:?} (ΔC = {dc:+.4})"));
                    committed = true;
                    break;
                }
            }
        }
        if !committed {
            break;
        }
    }
    SynthesisResult::from_state(state, params.bits, &params.library, merge_log)
}

/// Approach 1: force-directed scheduling at the critical-path latency
/// (no testability consideration), then the same allocation as
/// Approach 2.
///
/// # Errors
///
/// Construction-level failures only.
pub fn approach1(dfg: &Dfg, params: &SynthesisParams) -> Result<SynthesisResult, CoreError> {
    params.validate()?;
    let schedule = fds_schedule(dfg, None)?;
    let module_groups = greedy_module_allocation(dfg, &schedule);
    let lifetimes = Lifetimes::compute(dfg, &schedule);
    let register_groups = lee_register_allocation(dfg, &lifetimes);
    let allocation = Allocation::from_groups(dfg, &module_groups, &register_groups)?;
    let state = DesignState::from_parts(dfg, schedule, allocation);
    state.validate()?;
    SynthesisResult::from_state(state, params.bits, &params.library, Vec::new())
}

/// Approach 2: mobility-path scheduling for testability (Lee, Wolf &
/// Jha) under the functional-unit budget that force-directed scheduling
/// needs at the same latency, followed by the modified left-edge
/// register allocation.
///
/// # Errors
///
/// Construction-level failures only.
pub fn approach2(dfg: &Dfg, params: &SynthesisParams) -> Result<SynthesisResult, CoreError> {
    params.validate()?;
    // resource budget: the per-class peak concurrency of the FDS solution
    let fds = fds_schedule(dfg, None)?;
    let mut peak: HashMap<FuClass, usize> = HashMap::new();
    for step in 0..fds.num_steps() {
        let mut here: HashMap<FuClass, usize> = HashMap::new();
        for op in fds.ops_in_step(step) {
            *here.entry(dfg.op(op).kind().fu_class()).or_insert(0) += 1;
        }
        for (class, n) in here {
            let e = peak.entry(class).or_insert(0);
            *e = (*e).max(n);
        }
    }
    let mut limits = FuLimits::new();
    for (class, n) in peak {
        limits = limits.with(class, n);
    }
    let schedule = mobility_path_schedule(dfg, &limits, Some(fds.num_steps()))?;
    let module_groups = greedy_module_allocation(dfg, &schedule);
    let lifetimes = Lifetimes::compute(dfg, &schedule);
    let register_groups = lee_register_allocation(dfg, &lifetimes);
    let allocation = Allocation::from_groups(dfg, &module_groups, &register_groups)?;
    let state = DesignState::from_parts(dfg, schedule, allocation);
    state.validate()?;
    SynthesisResult::from_state(state, params.bits, &params.library, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Mul, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[a, c], "t2").unwrap();
        let t3 = b.op("N3", OpKind::Add, &[t1, t2], "t3").unwrap();
        let y = b.op("N4", OpKind::Sub, &[t3, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn approach1_is_valid() {
        let d = small();
        let r = approach1(&d, &SynthesisParams::default()).unwrap();
        r.schedule.validate(&r.dfg).unwrap();
        // Lee rule 1: every register holds a PI or PO variable when
        // feasible — here every group found a seed
        assert!(r.allocation.num_registers() <= 6);
    }

    #[test]
    fn approach2_respects_fds_budget() {
        let d = small();
        let r = approach2(&d, &SynthesisParams::default()).unwrap();
        r.schedule.validate(&r.dfg).unwrap();
        r.schedule
            .validate_groups(&r.dfg, &r.allocation.conflict_groups())
            .unwrap();
    }

    #[test]
    fn camad_merges_by_connectivity() {
        let d = small();
        // area-optimized configuration, as in the paper's experiments
        let params = SynthesisParams {
            alpha: 0.1,
            beta: 10.0,
            ..SynthesisParams::default()
        };
        let r = camad(&d, &params).unwrap();
        r.schedule.validate(&r.dfg).unwrap();
        // N1 and N2 share both sources: the classic connectivity merge
        let n1 = r.dfg.op_by_name("N1").unwrap();
        let n2 = r.dfg.op_by_name("N2").unwrap();
        assert_eq!(r.allocation.module_of(n1), r.allocation.module_of(n2));
    }

    #[test]
    fn baselines_are_deterministic() {
        let d = small();
        let p = SynthesisParams::default();
        assert_eq!(
            camad(&d, &p).unwrap().allocation,
            camad(&d, &p).unwrap().allocation
        );
        assert_eq!(
            approach1(&d, &p).unwrap().allocation,
            approach1(&d, &p).unwrap().allocation
        );
        assert_eq!(
            approach2(&d, &p).unwrap().allocation,
            approach2(&d, &p).unwrap().allocation
        );
    }
}
