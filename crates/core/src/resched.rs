//! Merger transformations with merge-sort rescheduling (paper §4.3).
//!
//! Merging two modules imposes the constraint that their operations
//! occupy pairwise-distinct control steps; merging two registers imposes
//! disjoint lifetimes on their values. Both are materialized as
//! precedence arcs chosen by a **merge-sort** of the two already-ordered
//! sequences, with free ordering decisions resolved by the
//! controllability/observability enhancement strategy:
//!
//! * **SR1** (Lee et al.): reduce the sequential depth from a
//!   controllable register to an observable register;
//! * **SR2** (this paper): schedule operations to support the
//!   application of SR1 — implemented by tentatively evaluating both
//!   orders of the first free pair and keeping the one with the smaller
//!   controllable-to-observable depth, tie-broken by the smaller
//!   critical-path increase.
//!
//! All tentative work — the SR2 what-if probes, the per-pair lifetime
//! feasibility checks, and the merger itself — runs **in place** inside
//! a [`StateTxn`], rolled back to a savepoint instead of cloning the
//! design state (see `crate::txn`). The public entry points open a
//! transaction, apply, and commit on success; on failure the
//! transaction drops and the state is restored bit-identically.

use std::cell::RefCell;
use std::mem;

use hlts_alloc::{ModuleId, RegisterId};
use hlts_dfg::{Dfg, OpId, ValueId};
use hlts_testability::total_co_depth;

use crate::candidates::MergeKind;
use crate::txn::StateTxn;
use crate::{CoreError, DesignState};

/// One scheduling-constraint arc; `weak` means "no later than" (the same
/// control step is allowed), strict means "strictly before".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecArc {
    /// Source operation.
    pub from: OpId,
    /// Target operation.
    pub to: OpId,
    /// Weak (`<=`) rather than strict (`<`).
    pub weak: bool,
}

/// The precedence arcs that force `earlier`'s lifetime to end before
/// `later`'s begins.
///
/// A register is read at the start of a control step and written at its
/// end, so a value may be read in the very step its successor value is
/// defined: constraints from `earlier`'s uses to `later`'s defining
/// operation are **weak** (same step allowed), while constraints
/// involving a primary input's first use (the input is latched at the
/// *start* of that step) are **strict**.
///
/// Returns `None` when the required relation cannot be expressed (e.g.
/// `later` is an unused input, alive only at step 0). Arcs already
/// implied by the existing precedence relation are omitted; an empty
/// vector means the order already holds structurally.
#[must_use]
pub fn disjointness_arcs(dfg: &Dfg, earlier: ValueId, later: ValueId) -> Option<Vec<PrecArc>> {
    let mut arcs = Vec::new();
    disjointness_arcs_into(dfg, earlier, later, &mut arcs).then_some(arcs)
}

/// [`disjointness_arcs`] into a caller-provided buffer: `arcs` is
/// cleared and filled, and the return value says whether the relation is
/// expressible at all (`false` corresponds to `None`). The merge loop
/// reuses one buffer across all pair probes, so the steady state
/// allocates nothing here.
pub fn disjointness_arcs_into(
    dfg: &Dfg,
    earlier: ValueId,
    later: ValueId,
    arcs: &mut Vec<PrecArc>,
) -> bool {
    arcs.clear();
    let uses_e: &[OpId] = dfg.uses_of(earlier);
    let def_e = dfg.def_of(earlier);
    fn push(arcs: &mut Vec<PrecArc>, from: OpId, to: OpId, weak: bool) {
        let arc = PrecArc { from, to, weak };
        if !arcs.contains(&arc) {
            arcs.push(arc);
        }
    }
    match dfg.def_of(later) {
        Some(dj) => {
            if uses_e.is_empty() {
                // death(earlier) = def_e + 1 must be <= step(dj): strict
                // def_e -> dj. (An unused input lives only at step 0 and
                // `later` is born at dj + 1 >= 1: nothing to add then.)
                if let Some(de) = def_e {
                    if de != dj {
                        push(arcs, de, dj, false);
                    }
                }
            } else {
                for &u in uses_e {
                    if u != dj {
                        push(arcs, u, dj, true);
                    }
                }
            }
        }
        None => {
            // `later` is a primary input, born at its first use.
            let uses_j = dfg.uses_of(later);
            if uses_j.is_empty() {
                return false; // alive only at step 0 — nothing fits before
            }
            if uses_e.is_empty() {
                // death(earlier) = def_e + 1 < min_use(later) needs a
                // two-step gap no single arc expresses.
                return false;
            }
            for &u in uses_e {
                for &w in uses_j {
                    if u == w {
                        return false; // same op uses both: never disjoint
                    }
                    push(arcs, u, w, false);
                }
            }
        }
    }
    // Drop weak arcs already implied by the (strict-or-weak) reachability
    // relation; strict arcs are kept — a weak path does not imply them.
    arcs.retain(|a| !(a.weak && dfg.reaches(a.from, a.to)));
    true
}

/// How free ordering decisions inside a merger are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderStrategy {
    /// The paper's SR2: minimize controllable→observable sequential
    /// depth, tie-broken by the critical path.
    #[default]
    CoEnhancement,
    /// Critical path only — the strategy of testability-unaware flows
    /// (the CAMAD baseline).
    CriticalPath,
}

/// The (SR1 depth, execution time) figure of merit of a tentative state.
///
/// The analysis goes through the state's shared [`TestabilityEngine`]:
/// the SR2 variants re-lowered here differ from the iteration baseline
/// only in precedence arcs and schedule — which the data path's
/// structural hash ignores — so with an unchanged allocation this is a
/// cache hit, and after a tentative merge it resolves incrementally
/// from the anchored baseline.
///
/// [`TestabilityEngine`]: hlts_testability::TestabilityEngine
fn sr1_merit(state: &DesignState) -> Result<(f64, usize), CoreError> {
    let etpn = state.lower()?;
    let analysis = state.testability_engine().analyze(etpn.data_path());
    Ok((
        total_co_depth(etpn.data_path(), &analysis),
        etpn.execution_time(),
    ))
}

/// Apply `arcs` inside the open transaction and reschedule; `false`
/// when the arcs are cyclic or the reschedule fails. The applied edits
/// stay journaled either way — the **caller** rolls back to its own
/// savepoint (probes) or keeps them (commits); on failure the journal
/// holds whatever prefix was applied, which the caller's rollback
/// undoes.
fn probe_arcs(txn: &mut StateTxn<'_>, arcs: &[PrecArc]) -> bool {
    for &PrecArc { from, to, weak } in arcs {
        if weak && txn.state().dfg.reaches(from, to) {
            continue;
        }
        // A cyclic arc is the common infeasibility; `add_precedence`
        // rejects exactly when `to` already reaches `from`, so testing
        // that first lets a rejected probe return without ever
        // constructing the (heap-allocated) cycle error.
        if txn.state().dfg.reaches(to, from) {
            return false;
        }
        let added = if weak {
            txn.add_weak_precedence(from, to)
        } else {
            txn.add_precedence(from, to)
        };
        if added.is_err() {
            return false;
        }
    }
    txn.reschedule().is_ok()
}

/// Whether `arcs` can be applied and rescheduled; the state is rolled
/// back to its pre-probe form before returning.
fn arcs_feasible(txn: &mut StateTxn<'_>, arcs: &[PrecArc]) -> bool {
    let sp = txn.savepoint();
    let ok = probe_arcs(txn, arcs);
    txn.rollback_to(sp);
    ok
}

/// Probe `arcs` and measure the resulting state's SR1 merit, rolling
/// back afterwards. `None` when the arcs are infeasible; `Some(Err)`
/// when they apply but the merit analysis fails.
fn probe_merit(
    txn: &mut StateTxn<'_>,
    arcs: &[PrecArc],
) -> Option<Result<(f64, usize), CoreError>> {
    let sp = txn.savepoint();
    let out = if probe_arcs(txn, arcs) {
        Some(sr1_merit(txn.state()))
    } else {
        None
    };
    txn.rollback_to(sp);
    out
}

/// Convenience for strict-only arc lists (module-merge ordering).
fn strict(pairs: &[(OpId, OpId)]) -> Vec<PrecArc> {
    pairs
        .iter()
        .map(|&(from, to)| PrecArc {
            from,
            to,
            weak: false,
        })
        .collect()
}

/// Reusable working buffers of one merge application. One set lives per
/// thread; it is moved out of its slot for the duration of a merge (so a
/// re-entrant use could never alias it) and moved back afterwards, every
/// vector keeping its capacity across trials.
#[derive(Default)]
struct MergeScratch {
    seq_a_ops: Vec<OpId>,
    seq_b_ops: Vec<OpId>,
    merged_ops: Vec<OpId>,
    seq_a_vals: Vec<ValueId>,
    seq_b_vals: Vec<ValueId>,
    merged_vals: Vec<ValueId>,
    ab: Vec<PrecArc>,
    ba: Vec<PrecArc>,
    chain: Vec<PrecArc>,
}

thread_local! {
    static MERGE_SCRATCH: RefCell<MergeScratch> = RefCell::new(MergeScratch::default());
}

fn scratch_take() -> MergeScratch {
    MERGE_SCRATCH.with(|c| mem::take(&mut *c.borrow_mut()))
}

fn scratch_put(s: MergeScratch) {
    MERGE_SCRATCH.with(|c| *c.borrow_mut() = s);
}

/// Cold-path rejection for an inexpressible/cyclic lifetime ordering.
fn reject_lifetime_order(dfg: &Dfg, a: ValueId, b: ValueId) -> CoreError {
    CoreError::MergeRejected(format!(
        "lifetime ordering of `{}` before `{}` is infeasible",
        dfg.value(a).name(),
        dfg.value(b).name()
    ))
}

/// SR2: pick between two tentative constraint sets by SR1 depth, then
/// execution time. `true` means the first set wins. `None` when neither
/// is feasible. Both probes run sequentially in the transaction and are
/// rolled back, so the state is unchanged on return — and because the
/// merit is a pure function of the probed state, the choice is
/// bit-identical to evaluating both sets on independent clones.
fn sr2_choose(
    txn: &mut StateTxn<'_>,
    first: &[PrecArc],
    second: &[PrecArc],
    strategy: OrderStrategy,
) -> Option<bool> {
    let m1 = probe_merit(txn, first);
    let m2 = probe_merit(txn, second);
    match (m1, m2) {
        (None, None) => None,
        (Some(_), None) => Some(true),
        (None, Some(_)) => Some(false),
        (Some(ra), Some(rb)) => {
            let ma = ra.ok()?;
            let mb = rb.ok()?;
            match strategy {
                OrderStrategy::CoEnhancement => {
                    if (ma.0 - mb.0).abs() > 1e-9 {
                        Some(ma.0 < mb.0)
                    } else {
                        Some(ma.1 <= mb.1)
                    }
                }
                OrderStrategy::CriticalPath => Some(ma.1 <= mb.1),
            }
        }
    }
}

/// Merge two modules, imposing and resolving the scheduling constraints
/// (paper §4.3.1). On success `state` holds the merged, rescheduled
/// design; on failure it is unchanged.
///
/// # Errors
///
/// [`CoreError::MergeRejected`] when no feasible execution order exists,
/// [`CoreError::Alloc`] for incompatible or stale modules.
pub fn merge_modules_with_resched(
    state: &mut DesignState,
    a: ModuleId,
    b: ModuleId,
) -> Result<(), CoreError> {
    merge_modules_with_resched_using(state, a, b, OrderStrategy::CoEnhancement)
}

/// [`merge_modules_with_resched`] with an explicit [`OrderStrategy`].
///
/// # Errors
///
/// As for [`merge_modules_with_resched`].
pub fn merge_modules_with_resched_using(
    state: &mut DesignState,
    a: ModuleId,
    b: ModuleId,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let mut txn = StateTxn::begin(state);
    apply_module_merge(&mut txn, a, b, strategy)?; // on error: drop rolls back
    txn.commit();
    Ok(())
}

/// Dispatch a merge candidate onto the open transaction. On error the
/// transaction is rolled back to its state at entry.
///
/// # Errors
///
/// As for [`merge_modules_with_resched`] /
/// [`merge_registers_with_resched`].
pub(crate) fn apply_merge(
    txn: &mut StateTxn<'_>,
    kind: MergeKind,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let sp = txn.savepoint();
    let applied = match kind {
        MergeKind::Modules(a, b) => apply_module_merge(txn, a, b, strategy),
        MergeKind::Registers(a, b) => apply_register_merge(txn, a, b, strategy),
    };
    if applied.is_err() {
        txn.rollback_to(sp);
    }
    applied
}

/// The module-merge body, operating on an open transaction: merge-sort
/// the two execution orders (SR2 resolving the first free decision),
/// chain the order as precedence arcs, merge the binding, reschedule.
/// On error the journal holds a prefix of the edits — the caller rolls
/// back.
fn apply_module_merge(
    txn: &mut StateTxn<'_>,
    a: ModuleId,
    b: ModuleId,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let mut s = scratch_take();
    let out = module_merge_body(txn, a, b, strategy, &mut s);
    scratch_put(s);
    out
}

fn module_merge_body(
    txn: &mut StateTxn<'_>,
    a: ModuleId,
    b: ModuleId,
    strategy: OrderStrategy,
    s: &mut MergeScratch,
) -> Result<(), CoreError> {
    let MergeScratch {
        seq_a_ops: seq_a,
        seq_b_ops: seq_b,
        merged_ops: merged,
        ..
    } = s;
    let fill_ops = |m: ModuleId, out: &mut Vec<OpId>, state: &DesignState| {
        out.clear();
        if let Some(x) = state.allocation.module(m) {
            out.extend_from_slice(x.ops());
        }
        // The key ends in the unique op index, so the unstable sort is
        // deterministic and identical to the stable one.
        out.sort_unstable_by_key(|&o| (state.schedule.step_of(o), o.index()));
    };
    fill_ops(a, seq_a, txn.state());
    fill_ops(b, seq_b, txn.state());
    if seq_a.is_empty() || seq_b.is_empty() {
        return Err(CoreError::MergeRejected(format!("{a} or {b} is stale")));
    }

    // Merge-sort the two sequential orders into one (paper: "the main
    // goal is to merge these two sequential orders into one"). The SR2
    // probes mutate and roll back the transaction; between decisions the
    // state is exactly the pre-merge one.
    merged.clear();
    merged.reserve(seq_a.len() + seq_b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut first_free_decision = true;
    while i < seq_a.len() && j < seq_b.len() {
        let (ha, hb) = (seq_a[i], seq_b[j]);
        let take_a = if txn.state().dfg.reaches(ha, hb) {
            true
        } else if txn.state().dfg.reaches(hb, ha) {
            false
        } else if first_free_decision {
            first_free_decision = false;
            sr2_choose(txn, &strict(&[(ha, hb)]), &strict(&[(hb, ha)]), strategy).ok_or_else(
                || {
                    CoreError::MergeRejected(format!(
                        "no feasible order for `{}` and `{}`",
                        txn.state().dfg.op(ha).name(),
                        txn.state().dfg.op(hb).name()
                    ))
                },
            )?
        } else {
            // "then we decide the rest using a merge-sort heuristic":
            // keep the current schedule's relative order.
            let s = &txn.state().schedule;
            (s.step_of(ha), ha.index()) <= (s.step_of(hb), hb.index())
        };
        if take_a {
            merged.push(ha);
            i += 1;
        } else {
            merged.push(hb);
            j += 1;
        }
    }
    merged.extend_from_slice(&seq_a[i..]);
    merged.extend_from_slice(&seq_b[j..]);

    // Materialize the order as a chain of precedence arcs.
    for w in merged.windows(2) {
        let (x, y) = (w[0], w[1]);
        if !txn.state().dfg.reaches(x, y) {
            txn.add_precedence(x, y).map_err(|_| {
                CoreError::MergeRejected(format!(
                    "ordering `{}` before `{}` is cyclic",
                    txn.state().dfg.op(x).name(),
                    txn.state().dfg.op(y).name()
                ))
            })?;
        }
    }
    txn.merge_modules(a, b)?;
    txn.reschedule()?;
    // Defense in depth, mirroring the register merge below: the merge
    // itself only adds op-ordering arcs, but rescheduling can move a
    // definition into the end-of-iteration slot a loop-carried value
    // occupies in a previously merged register ([`Lifetimes`]'s
    // `[L, L]` copy slot), recreating an overlap no arc expresses.
    // Reject such merges rather than commit an illegal register file.
    //
    // [`Lifetimes`]: hlts_sched::Lifetimes
    if txn.state().validate().is_err() {
        return Err(CoreError::MergeRejected(
            "post-merge reschedule produced overlapping lifetimes".into(),
        ));
    }
    Ok(())
}

/// Merge two registers, imposing and resolving lifetime-disjointness
/// constraints (paper §4.3.2). On success `state` holds the merged,
/// rescheduled design; on failure it is unchanged.
///
/// # Errors
///
/// [`CoreError::MergeRejected`] when the lifetimes can never be disjoint
/// — the paper's two cases: mutual precedence between the value pairs'
/// lifetime operations (detected as cyclic constraints), or "an
/// operation which uses both of the values as inputs" — and
/// [`CoreError::Alloc`] for stale ids.
pub fn merge_registers_with_resched(
    state: &mut DesignState,
    a: RegisterId,
    b: RegisterId,
) -> Result<(), CoreError> {
    merge_registers_with_resched_using(state, a, b, OrderStrategy::CoEnhancement)
}

/// [`merge_registers_with_resched`] with an explicit [`OrderStrategy`].
///
/// # Errors
///
/// As for [`merge_registers_with_resched`].
pub fn merge_registers_with_resched_using(
    state: &mut DesignState,
    a: RegisterId,
    b: RegisterId,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let mut txn = StateTxn::begin(state);
    apply_register_merge(&mut txn, a, b, strategy)?; // on error: drop rolls back
    txn.commit();
    Ok(())
}

/// The register-merge body, operating on an open transaction (see
/// [`apply_module_merge`] for the contract).
fn apply_register_merge(
    txn: &mut StateTxn<'_>,
    a: RegisterId,
    b: RegisterId,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let mut s = scratch_take();
    let out = register_merge_body(txn, a, b, strategy, &mut s);
    scratch_put(s);
    out
}

fn register_merge_body(
    txn: &mut StateTxn<'_>,
    a: RegisterId,
    b: RegisterId,
    strategy: OrderStrategy,
    s: &mut MergeScratch,
) -> Result<(), CoreError> {
    let MergeScratch {
        seq_a_vals: seq_a,
        seq_b_vals: seq_b,
        merged_vals: merged,
        ab,
        ba,
        chain,
        ..
    } = s;
    let fill_vals = |r: RegisterId, out: &mut Vec<ValueId>, state: &DesignState| {
        out.clear();
        if let Some(x) = state.allocation.register(r) {
            out.extend_from_slice(x.values());
        }
    };
    fill_vals(a, seq_a, txn.state());
    fill_vals(b, seq_b, txn.state());
    if seq_a.is_empty() || seq_b.is_empty() {
        return Err(CoreError::MergeRejected(format!("{a} or {b} is stale")));
    }

    // Veto case 2: a common consumer needs both values at once.
    for &x in seq_a.iter() {
        for &y in seq_b.iter() {
            let clash = txn
                .state()
                .dfg
                .ops()
                .iter()
                .any(|op| op.inputs().contains(&x) && op.inputs().contains(&y));
            if clash {
                return Err(CoreError::MergeRejected(format!(
                    "`{}` and `{}` feed one operation together",
                    txn.state().dfg.value(x).name(),
                    txn.state().dfg.value(y).name()
                )));
            }
        }
    }

    let lt = txn.state().lifetimes();
    let birth = |v: ValueId| lt.interval(v).map_or(usize::MAX, |iv| iv.birth);
    // The key ends in the unique value index: the unstable sort is
    // deterministic and identical to the stable one.
    seq_a.sort_unstable_by_key(|&v| (birth(v), v.index()));
    seq_b.sort_unstable_by_key(|&v| (birth(v), v.index()));

    merged.clear();
    merged.reserve(seq_a.len() + seq_b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut first_free_decision = true;
    while i < seq_a.len() && j < seq_b.len() {
        let (ha, hb) = (seq_a[i], seq_b[j]);
        let ab_ok = disjointness_arcs_into(&txn.state().dfg, ha, hb, ab);
        let ba_ok = disjointness_arcs_into(&txn.state().dfg, hb, ha, ba);
        let a_feasible = ab_ok && arcs_feasible(txn, ab);
        let b_feasible = ba_ok && arcs_feasible(txn, ba);
        let take_a = match (a_feasible, b_feasible) {
            (false, false) => {
                return Err(CoreError::MergeRejected(format!(
                    "lifetimes of `{}` and `{}` can never be disjoint",
                    txn.state().dfg.value(ha).name(),
                    txn.state().dfg.value(hb).name()
                )))
            }
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                if first_free_decision {
                    first_free_decision = false;
                    sr2_choose(txn, ab, ba, strategy).unwrap_or(true)
                } else {
                    (birth(ha), ha.index()) <= (birth(hb), hb.index())
                }
            }
        };
        if take_a {
            merged.push(ha);
            i += 1;
        } else {
            merged.push(hb);
            j += 1;
        }
    }
    merged.extend_from_slice(&seq_a[i..]);
    merged.extend_from_slice(&seq_b[j..]);

    // Chain the merged order with disjointness constraints. Later pairs
    // see the arcs of earlier ones (through the reachability filter in
    // `disjointness_arcs`), exactly as in the clone-based formulation.
    for k in 1..merged.len() {
        let (w0, w1) = (merged[k - 1], merged[k]);
        if !disjointness_arcs_into(&txn.state().dfg, w0, w1, chain) {
            return Err(reject_lifetime_order(&txn.state().dfg, w0, w1));
        }
        for &PrecArc { from, to, weak } in chain.iter() {
            let added = if weak {
                txn.add_weak_precedence(from, to)
            } else {
                txn.add_precedence(from, to)
            };
            if added.is_err() {
                return Err(reject_lifetime_order(&txn.state().dfg, w0, w1));
            }
        }
    }
    txn.merge_registers(a, b)?;
    txn.reschedule()?;
    // Defense in depth: the arcs above should guarantee disjointness; if
    // an uncovered corner slips through, reject rather than commit an
    // overlapping register file.
    if txn.state().validate().is_err() {
        return Err(CoreError::MergeRejected(
            "post-merge validation found overlapping lifetimes".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_testability::TestabilityAnalysis;

    /// Two independent adds in one step; merging their modules must order
    /// them into two steps.
    #[test]
    fn module_merge_serializes_same_step_ops() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[a, c], "t2").unwrap();
        b.mark_output(t1);
        b.mark_output(t2);
        let d = b.finish().unwrap();
        let mut s = DesignState::initial(&d).unwrap();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        assert_eq!(s.schedule.step_of(n1), s.schedule.step_of(n2));
        let (m1, m2) = (s.allocation.module_of(n1), s.allocation.module_of(n2));
        merge_modules_with_resched(&mut s, m1, m2).unwrap();
        assert_ne!(s.schedule.step_of(n1), s.schedule.step_of(n2));
        assert_eq!(s.allocation.num_modules(), 1);
        s.validate().unwrap();
    }

    #[test]
    fn incompatible_module_merge_rejected_and_state_unchanged() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        b.op("N2", OpKind::Mul, &[a, c], "t2").unwrap();
        let d = b.finish().unwrap();
        let mut s = DesignState::initial(&d).unwrap();
        let before = s.clone();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        let (m1, m2) = (s.allocation.module_of(n1), s.allocation.module_of(n2));
        assert!(merge_modules_with_resched(&mut s, m1, m2).is_err());
        assert_eq!(s.schedule, before.schedule);
        assert_eq!(s.allocation, before.allocation);
    }

    #[test]
    fn register_merge_orders_lifetimes() {
        // t1 and t2 both born step 1 under ASAP; merging their registers
        // must push one definition later.
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Mul, &[t1, c], "y").unwrap();
        let z = b.op("N4", OpKind::Mul, &[t2, c], "z").unwrap();
        b.mark_output(y);
        b.mark_output(z);
        let d = b.finish().unwrap();
        let mut s = DesignState::initial(&d).unwrap();
        let vt1 = s.dfg.value_by_name("t1").unwrap();
        let vt2 = s.dfg.value_by_name("t2").unwrap();
        let (r1, r2) = (
            s.allocation.register_of(vt1).unwrap(),
            s.allocation.register_of(vt2).unwrap(),
        );
        merge_registers_with_resched(&mut s, r1, r2).unwrap();
        s.validate().unwrap();
        let lt = s.lifetimes();
        assert!(lt.disjoint(vt1, vt2));
    }

    #[test]
    fn register_merge_vetoes_common_consumer() {
        // y = t1 + t2: t1 and t2 can never share a register.
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Sub, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Mul, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let mut s = DesignState::initial(&d).unwrap();
        let (r1, r2) = (
            s.allocation.register_of(t1).unwrap(),
            s.allocation.register_of(t2).unwrap(),
        );
        let e = merge_registers_with_resched(&mut s, r1, r2).unwrap_err();
        assert!(matches!(e, CoreError::MergeRejected(_)), "{e}");
    }

    #[test]
    fn disjointness_arcs_shape() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Sub, &[a, c], "t2").unwrap();
        let _y = b.op("N3", OpKind::Mul, &[t1, c], "y").unwrap();
        let d = b.finish().unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        // t1 before t2: t1's use (N3) may share t2's defining step (N2)
        let arcs = disjointness_arcs(&d, t1, t2).unwrap();
        assert_eq!(
            arcs,
            vec![PrecArc {
                from: n3,
                to: n2,
                weak: true
            }]
        );
        // t2 before t1: t2 is unused, so its death (def + 1) must come
        // strictly before t1's definition.
        let arcs2 = disjointness_arcs(&d, t2, t1).unwrap();
        assert_eq!(
            arcs2,
            vec![PrecArc {
                from: n2,
                to: n1,
                weak: false
            }]
        );
    }

    #[test]
    fn disjointness_between_inputs_is_strict() {
        // two inputs sharing a register: all uses of the first strictly
        // before all uses of the second (the input latches at the start
        // of its first-use step).
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let e = b.input("e");
        let t1 = b.op("N1", OpKind::Add, &[a, e], "t1").unwrap();
        let _t2 = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let d = b.finish().unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let arcs = disjointness_arcs(&d, a, c).unwrap();
        assert_eq!(
            arcs,
            vec![PrecArc {
                from: n1,
                to: n2,
                weak: false
            }]
        );
        // c before a would need N2 strictly before N1 — expressible but
        // cyclic; the arcs are produced, feasibility is checked on apply.
        let arcs2 = disjointness_arcs(&d, c, a).unwrap();
        assert_eq!(arcs2.len(), 1);
        assert!(!arcs2[0].weak);
    }

    /// The Figure 1 scenario: merging two operation nodes and ordering
    /// them reduces the sequential depth from a controllable to an
    /// observable register (2 → 1 in the paper's example). We verify the
    /// SR2 machinery picks an order that does not increase the total
    /// controllable-to-observable depth.
    #[test]
    fn figure1_sequential_depth() {
        // w,x feed N1; v,y feed N2; N1 -> y', N2 -> z with chain
        // structure so ordering matters.
        let mut b = DfgBuilder::new("fig1");
        let w = b.input("w");
        let x = b.input("x");
        let v = b.input("v");
        let s_in = b.input("s");
        let t1 = b.op("N1", OpKind::Add, &[w, x], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[v, s_in], "t2").unwrap();
        let u = b.op("N3", OpKind::Mul, &[t1, t2], "u").unwrap();
        b.mark_output(u);
        let d = b.finish().unwrap();
        let mut st = DesignState::initial(&d).unwrap();
        let etpn0 = st.lower().unwrap();
        let an0 = TestabilityAnalysis::analyze(etpn0.data_path());
        let depth0 = total_co_depth(etpn0.data_path(), &an0);
        let n1 = st.dfg.op_by_name("N1").unwrap();
        let n2 = st.dfg.op_by_name("N2").unwrap();
        let (m1, m2) = (st.allocation.module_of(n1), st.allocation.module_of(n2));
        merge_modules_with_resched(&mut st, m1, m2).unwrap();
        let etpn1 = st.lower().unwrap();
        let an1 = TestabilityAnalysis::analyze(etpn1.data_path());
        let depth1 = total_co_depth(etpn1.data_path(), &an1);
        // sharing one adder cannot make the depth worse here
        assert!(depth1 <= depth0 + 1e-9, "depth {depth0} -> {depth1}");
        st.validate().unwrap();
    }

    /// A failed merge attempt must leave zero residue: same arcs, same
    /// schedule, same binding, bit for bit.
    #[test]
    fn rejected_merge_leaves_no_journal_residue() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Sub, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Mul, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let mut s = DesignState::initial(&d).unwrap();
        let dfg_before = s.dfg.deep_clone();
        let sched_before = s.schedule.clone();
        let alloc_before = s.allocation.clone();
        let (r1, r2) = (
            s.allocation.register_of(t1).unwrap(),
            s.allocation.register_of(t2).unwrap(),
        );
        assert!(merge_registers_with_resched(&mut s, r1, r2).is_err());
        assert_eq!(s.dfg, dfg_before);
        assert_eq!(s.schedule, sched_before);
        assert_eq!(s.allocation, alloc_before);
    }
}
