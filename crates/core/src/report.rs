//! Synthesis results and the metrics the paper's tables report.

use hlts_alloc::Allocation;
use hlts_cost::{estimate_cost, CostBreakdown, ModuleLibrary};
use hlts_dfg::Dfg;
use hlts_sched::Schedule;
use hlts_testability::{total_co_depth, NodeProfile, TestabilityCacheStats};

use crate::{CoreError, DesignState, TxnStats};

/// Structural and testability metrics of a finished design — the
/// columns of the paper's Tables 1–3 that come from synthesis itself
/// (fault coverage and test-generation effort come from `hlts-atpg`).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Execution time `E` in control steps (Petri-net critical path).
    pub execution_time: usize,
    /// Live functional modules.
    pub num_modules: usize,
    /// Live registers.
    pub num_registers: usize,
    /// 2-to-1 multiplexer equivalents in the data path.
    pub mux_count: usize,
    /// Register↔module self-loops.
    pub self_loops: usize,
    /// Floorplanned area breakdown (the paper's `H`).
    pub hardware: CostBreakdown,
    /// Mean scalarized controllability over registers and modules.
    pub avg_controllability: f64,
    /// Mean scalarized observability over registers and modules.
    pub avg_observability: f64,
    /// The SR1 objective: total controllable→observable depth.
    pub co_depth: f64,
}

impl DesignMetrics {
    /// Measure a design state.
    ///
    /// # Errors
    ///
    /// Fails when the state cannot be lowered to ETPN.
    pub fn of(state: &DesignState, bits: u32, library: &ModuleLibrary) -> Result<Self, CoreError> {
        let etpn = state.lower()?;
        let dp = etpn.data_path();
        let analysis = state.testability_engine().analyze(dp);
        let mut c_sum = 0.0;
        let mut o_sum = 0.0;
        let mut n = 0usize;
        for node in dp.register_nodes().into_iter().chain(dp.module_nodes()) {
            let p = NodeProfile::of(&analysis, dp, node);
            c_sum += p.c;
            o_sum += p.o;
            n += 1;
        }
        let n = n.max(1) as f64;
        Ok(DesignMetrics {
            execution_time: etpn.execution_time(),
            num_modules: state.allocation.num_modules(),
            num_registers: state.allocation.num_registers(),
            mux_count: state.allocation.mux_count(&state.dfg),
            self_loops: state.allocation.self_loops(&state.dfg),
            hardware: estimate_cost(dp, bits, library),
            avg_controllability: c_sum / n,
            avg_observability: o_sum / n,
            co_depth: total_co_depth(dp, &analysis),
        })
    }
}

/// The output of a synthesis driver: the final design plus its metrics
/// and the merge decisions taken.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The graph, including all accumulated scheduling-constraint arcs.
    pub dfg: Dfg,
    /// The final schedule.
    pub schedule: Schedule,
    /// The final binding.
    pub allocation: Allocation,
    /// Measured metrics.
    pub metrics: DesignMetrics,
    /// Human-readable record of each committed merger.
    pub merge_log: Vec<String>,
    /// How the run's shared testability engine resolved its queries.
    /// Diagnostics only: under parallel evaluation two threads can race
    /// to the same cache miss, so these counters (unlike every synthesis
    /// outcome) are not deterministic — which is why they are excluded
    /// from equality.
    pub testability_stats: TestabilityCacheStats,
    /// How the run exercised the transaction layer: trials begun,
    /// rolled back and committed, and journal undo operations recorded
    /// and replayed. Diagnostics only, excluded from equality like
    /// `testability_stats`.
    pub txn_stats: TxnStats,
}

/// Everything except `testability_stats`/`txn_stats`: results compare
/// by what was synthesized, not by how the caches and journals happened
/// to be exercised.
impl PartialEq for SynthesisResult {
    fn eq(&self, other: &Self) -> bool {
        self.dfg == other.dfg
            && self.schedule == other.schedule
            && self.allocation == other.allocation
            && self.metrics == other.metrics
            && self.merge_log == other.merge_log
    }
}

impl SynthesisResult {
    pub(crate) fn from_state(
        state: DesignState,
        bits: u32,
        library: &ModuleLibrary,
        merge_log: Vec<String>,
    ) -> Result<Self, CoreError> {
        let metrics = DesignMetrics::of(&state, bits, library)?;
        let testability_stats = state.testability_engine().stats();
        let txn_stats = state.txn_stats();
        Ok(SynthesisResult {
            dfg: state.dfg,
            schedule: state.schedule,
            allocation: state.allocation,
            metrics,
            merge_log,
            testability_stats,
            txn_stats,
        })
    }

    /// Render the allocation in the paper's table style plus a schedule
    /// listing (the shape of Figures 2–3).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.allocation.render(&self.dfg));
        out.push('\n');
        out.push_str(&self.schedule.render(&self.dfg));
        out.push_str(&format!(
            "\nE = {} steps, {} modules, {} registers, {} muxes, H = {:.3}\n",
            self.metrics.execution_time,
            self.metrics.num_modules,
            self.metrics.num_registers,
            self.metrics.mux_count,
            self.metrics.hardware.total(),
        ));
        let t = &self.testability_stats;
        out.push_str(&format!(
            "testability cache: {} hits / {} misses ({} incremental, {} full), \
             {} updates propagated, hit rate {:.1}%\n",
            t.hits,
            t.misses,
            t.incremental,
            t.full,
            t.updates_propagated,
            t.hit_rate() * 100.0,
        ));
        let x = &self.txn_stats;
        out.push_str(&format!(
            "txn journal: {} trials begun ({} rolled back, {} committed), \
             {} undo ops recorded, {} replayed\n",
            x.begun, x.rolled_back, x.committed, x.ops_recorded, x.ops_replayed,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    #[test]
    fn metrics_of_initial_state() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let s = DesignState::initial(&d).unwrap();
        let m = DesignMetrics::of(&s, 8, &ModuleLibrary::new()).unwrap();
        assert_eq!(m.execution_time, 2);
        assert_eq!(m.num_modules, 2);
        assert_eq!(m.num_registers, 4);
        assert_eq!(m.self_loops, 0);
        assert!(m.hardware.total() > 0.0);
        assert!(m.avg_controllability > 0.0);
        assert!(m.avg_observability > 0.0);
    }
}
