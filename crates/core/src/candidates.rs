//! Candidate merge-pair enumeration and C/O-balance ranking
//! (Algorithm 1, line 6).

use hlts_alloc::{ModuleId, RegisterId};
use hlts_etpn::Etpn;
use hlts_testability::{balance_score_profiles, NodeProfile, TestabilityAnalysis};

use crate::DesignState;

/// What a candidate proposes to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Merge two functional modules.
    Modules(ModuleId, ModuleId),
    /// Merge two registers.
    Registers(RegisterId, RegisterId),
}

/// A scored merge candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeCandidate {
    /// The proposed merger.
    pub kind: MergeKind,
    /// Controllability/observability balance score (higher = more
    /// complementary profiles), minus the self-loop penalty.
    pub balance: f64,
}

/// Penalty subtracted from the balance score when a merger would create
/// a structural register↔module self-loop — the loops §3 of the paper
/// singles out as the reason connectivity-driven designs are hard to
/// test.
const SELF_LOOP_PENALTY: f64 = 0.5;

/// Enumerate every legal merge pair of the current design, scored by the
/// C/O balance principle, best first.
///
/// Legality here is the cheap structural filter (functional-unit
/// compatibility for modules; no common consumer for registers); the
/// full scheduling feasibility is established when a candidate is
/// tentatively applied.
#[must_use]
pub fn enumerate_candidates(
    state: &DesignState,
    etpn: &Etpn,
    analysis: &TestabilityAnalysis,
) -> Vec<MergeCandidate> {
    let dp = etpn.data_path();
    let dfg = &state.dfg;
    let alloc = &state.allocation;
    let mut out = Vec::new();

    // Module pairs. Iterating the live entries directly (rather than
    // collected ids re-looked-up) keeps the loop total: there is no
    // dead-id case to assert away.
    let modules: Vec<&hlts_alloc::Module> = alloc.modules().collect();
    for (i, &ma) in modules.iter().enumerate() {
        for &mb in &modules[i + 1..] {
            let (a, b) = (ma.id(), mb.id());
            let compatible = ma.ops().iter().all(|&oa| {
                mb.ops().iter().all(|&ob| {
                    dfg.op(oa)
                        .kind()
                        .fu_class()
                        .compatible(dfg.op(ob).kind().fu_class())
                })
            });
            if !compatible {
                continue;
            }
            let (Some(na), Some(nb)) = (dp.node_of_module(a), dp.node_of_module(b)) else {
                continue;
            };
            let pa = NodeProfile::of(analysis, dp, na);
            let pb = NodeProfile::of(analysis, dp, nb);
            let mut score = balance_score_profiles(pa, pb);
            if creates_module_self_loop(state, a, b) {
                score -= SELF_LOOP_PENALTY;
            }
            out.push(MergeCandidate {
                kind: MergeKind::Modules(a, b),
                balance: score,
            });
        }
    }

    // Register pairs.
    let registers: Vec<RegisterId> = alloc.registers().map(|r| r.id()).collect();
    for (i, &a) in registers.iter().enumerate() {
        for &b in &registers[i + 1..] {
            if has_common_consumer(state, a, b) {
                continue;
            }
            let (Some(na), Some(nb)) = (dp.node_of_register(a), dp.node_of_register(b)) else {
                continue;
            };
            let pa = NodeProfile::of(analysis, dp, na);
            let pb = NodeProfile::of(analysis, dp, nb);
            let mut score = balance_score_profiles(pa, pb);
            if creates_register_self_loop(state, a, b) {
                score -= SELF_LOOP_PENALTY;
            }
            out.push(MergeCandidate {
                kind: MergeKind::Registers(a, b),
                balance: score,
            });
        }
    }

    // total_cmp: a NaN score (defensive — profiles are finite by
    // construction) gets a deterministic rank instead of freezing the
    // comparison sort in an arbitrary order.
    out.sort_by(|x, y| {
        y.balance
            .total_cmp(&x.balance)
            .then_with(|| format!("{:?}", x.kind).cmp(&format!("{:?}", y.kind)))
    });
    out
}

/// Whether some operation consumes values from both registers at once
/// (the paper's register-merge veto case 2).
fn has_common_consumer(state: &DesignState, a: RegisterId, b: RegisterId) -> bool {
    let (Some(ra), Some(rb)) = (state.allocation.register(a), state.allocation.register(b)) else {
        return true;
    };
    state.dfg.ops().iter().any(|op| {
        let reads_a = op.inputs().iter().any(|v| ra.values().contains(v));
        let reads_b = op.inputs().iter().any(|v| rb.values().contains(v));
        reads_a && reads_b
    })
}

/// Would merging modules `a` and `b` make a register both a source and a
/// sink of the merged unit?
fn creates_module_self_loop(state: &DesignState, a: ModuleId, b: ModuleId) -> bool {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for m in [a, b] {
        let Some(module) = state.allocation.module(m) else {
            continue;
        };
        for &op in module.ops() {
            for &v in state.dfg.op(op).inputs() {
                if let Some(r) = state.allocation.register_of(v) {
                    reads.push(r);
                }
            }
            if let Some(v) = state.dfg.op(op).output() {
                if let Some(r) = state.allocation.register_of(v) {
                    writes.push(r);
                }
            }
        }
    }
    reads.iter().any(|r| writes.contains(r))
}

/// Would merging registers `a` and `b` make some module both produce
/// into and consume from the merged register?
fn creates_register_self_loop(state: &DesignState, a: RegisterId, b: RegisterId) -> bool {
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for r in [a, b] {
        let Some(reg) = state.allocation.register(r) else {
            continue;
        };
        for &v in reg.values() {
            if let Some(op) = state.dfg.def_of(v) {
                producers.push(state.allocation.module_of(op));
            }
            for &op in state.dfg.uses_of(v) {
                consumers.push(state.allocation.module_of(op));
            }
        }
    }
    producers.iter().any(|m| consumers.contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_testability::TestabilityAnalysis;

    fn state() -> DesignState {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Sub, &[a, c], "t2").unwrap();
        let t3 = b.op("N3", OpKind::Mul, &[t1, c], "t3").unwrap();
        let y = b.op("N4", OpKind::Mul, &[t2, t3], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        DesignState::initial(&d).unwrap()
    }

    #[test]
    fn candidates_are_sorted_and_legal() {
        let s = state();
        let e = s.lower().unwrap();
        let an = TestabilityAnalysis::analyze(e.data_path());
        let cands = enumerate_candidates(&s, &e, &an);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].balance >= w[1].balance - 1e-12);
        }
        // the incompatible add×mul module pair must be absent
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n3 = s.dfg.op_by_name("N3").unwrap();
        let (m1, m3) = (s.allocation.module_of(n1), s.allocation.module_of(n3));
        assert!(!cands.iter().any(|c| matches!(
            c.kind,
            MergeKind::Modules(a, b) if (a, b) == (m1, m3) || (a, b) == (m3, m1)
        )));
    }

    #[test]
    fn common_consumer_pairs_filtered() {
        let s = state();
        let e = s.lower().unwrap();
        let an = TestabilityAnalysis::analyze(e.data_path());
        let cands = enumerate_candidates(&s, &e, &an);
        // t2 and t3 both feed N4: never a candidate pair
        let r2 = s
            .allocation
            .register_of(s.dfg.value_by_name("t2").unwrap())
            .unwrap();
        let r3 = s
            .allocation
            .register_of(s.dfg.value_by_name("t3").unwrap())
            .unwrap();
        assert!(!cands.iter().any(|c| matches!(
            c.kind,
            MergeKind::Registers(a, b) if (a, b) == (r2, r3) || (a, b) == (r3, r2)
        )));
    }

    #[test]
    fn self_loop_candidates_penalized() {
        // y's register merged with t3's register: N4 consumes t3 and
        // produces y -> module self-loop.
        let s = state();
        let e = s.lower().unwrap();
        let an = TestabilityAnalysis::analyze(e.data_path());
        let cands = enumerate_candidates(&s, &e, &an);
        let ry = s
            .allocation
            .register_of(s.dfg.value_by_name("y").unwrap())
            .unwrap();
        let rt3 = s
            .allocation
            .register_of(s.dfg.value_by_name("t3").unwrap())
            .unwrap();
        let with_loop = cands
            .iter()
            .find(|c| {
                matches!(
                    c.kind,
                    MergeKind::Registers(a, b) if (a, b) == (rt3, ry) || (a, b) == (ry, rt3)
                )
            })
            .expect("pair is otherwise legal");
        // a loop-free register pair of similar profile should rank higher
        assert!(creates_register_self_loop(&s, rt3, ry));
        assert!(with_loop.balance < cands[0].balance);
    }
}
