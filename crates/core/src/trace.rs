//! Accepted-merge traces — the compact record of one synthesis run's
//! committed decisions that warm-start replay consumes.
//!
//! Each iteration of Algorithm 1 prices a prefix of its candidate
//! shortlist and either commits one merge or terminates. A
//! [`TraceEntry`] captures exactly what a *different* parameter point
//! needs to re-take that decision without re-enumerating or re-trialing
//! anything:
//!
//! * the per-candidate **price parts** `(ΔE, ΔH)` for every candidate
//!   that was evaluated — these are pure functions of the design state,
//!   independent of the weights `α`/`β`, so a new point re-prices the
//!   whole shortlist as `ΔC = α·ΔE + β·ΔH` with plain arithmetic;
//! * the committed winner's **operand symbols** (stable DFG op/value
//!   names, resolved back to live module/register ids at replay time)
//!   and its global shortlist **index**, so the replayer can check the
//!   re-priced decision still picks the same merge;
//! * the **post-merge fingerprint** ([`DeltaEvaluator::fingerprint`])
//!   guarding the applied state against any drift.
//!
//! The journal-side text encoding lives in `hlts-dse`; this module is
//! the in-memory contract between capture
//! ([`IntegratedSynthesizer::run_on_warm`]) and replay.
//!
//! [`DeltaEvaluator::fingerprint`]: crate::DeltaEvaluator::fingerprint
//! [`IntegratedSynthesizer::run_on_warm`]:
//!     crate::IntegratedSynthesizer::run_on_warm

/// Which structure a recorded merge fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMergeKind {
    /// Two functional modules.
    Modules,
    /// Two registers.
    Registers,
}

/// The committed merge of one trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWinner {
    /// Module or register merge.
    pub kind: TraceMergeKind,
    /// Stable symbol locating the first operand: the name of the first
    /// op (module merge) or first value (register merge) of the
    /// surviving side, captured on the pre-merge state.
    pub sym_a: String,
    /// Stable symbol locating the second (absorbed) operand.
    pub sym_b: String,
    /// The winner's global index in the iteration's candidate list.
    pub index: usize,
    /// [`DeltaEvaluator::fingerprint`] of the post-merge state — the
    /// replay guard: a replayed merge only commits when the fingerprint
    /// matches bit for bit.
    ///
    /// [`DeltaEvaluator::fingerprint`]:
    ///     crate::DeltaEvaluator::fingerprint
    pub fingerprint: u64,
}

/// One iteration of a recorded run: the evaluated price prefix plus the
/// decision taken.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The committed merge, or `None` for the terminal iteration (no
    /// candidate qualified — or none existed, `total == 0`).
    pub winner: Option<TraceWinner>,
    /// Total candidates the iteration enumerated.
    pub total: usize,
    /// Weight-independent price parts `(ΔE, ΔH)` per candidate, in
    /// shortlist order; `None` marks an infeasible merger. Covers the
    /// prefix of candidates that was actually evaluated: every chunk up
    /// to and including the winner's (commit entries), or all `total`
    /// (terminal entries).
    pub prices: Vec<Option<(f64, f64)>>,
}

/// The accepted-merge trace of one synthesis run, in commit order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeTrace {
    /// One entry per iteration that priced candidates; the last entry
    /// is terminal (`winner == None`) when the run converged, absent
    /// when it was cut short (iteration cap).
    pub entries: Vec<TraceEntry>,
}

/// How a warm-started run split its committed merges between replay and
/// scratch synthesis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Merges committed by replaying a seed trace (no candidate
    /// enumeration, no trial transactions).
    pub replayed: usize,
    /// Merges committed by the full scratch loop (no seed, seed
    /// exhausted, or post-divergence).
    pub recomputed: usize,
}
