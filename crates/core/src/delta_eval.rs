//! Cached (E, H) evaluation of tentative design states — the ΔC inner
//! loop's fast path.
//!
//! Every candidate evaluation in Algorithm 1 needs the execution time
//! `E` (critical path of the control Petri net) and hardware cost `H`
//! (floorplanned area) of a tentatively merged design. Both are pure
//! functions of the **(schedule, binding)** pair: ETPN lowering reads
//! only the graph's data edges (fixed for the whole run — merges add
//! precedence arcs, which only constrain *scheduling*), the step
//! assignment and the binding partition. [`DeltaEvaluator`] therefore
//! memoizes (E, H) keyed by
//! [`Schedule::content_hash`](hlts_sched::Schedule::content_hash) ⊕
//! [`Allocation::content_hash`](hlts_alloc::Allocation::content_hash),
//! and routes critical-path extraction through a shared
//! [`CriticalPathEngine`] so that even distinct states with
//! structurally identical control nets share work.
//!
//! No invalidation is ever needed: committing a merge changes the
//! state's fingerprint, so stale entries are simply never looked up
//! again, and entries stay valid because the data-flow content they
//! were computed from is immutable within a run.
//!
//! The evaluator is `Sync` — the `parallel` feature evaluates the *k*
//! shortlisted candidates on scoped threads sharing one evaluator.
//!
//! The testability side of candidate evaluation has a twin of this
//! design: the [`TestabilityEngine`](hlts_testability::TestabilityEngine)
//! carried by [`DesignState`] memoizes the CC/SC/CO/SO fixpoint keyed by
//! the data path's structural hash (which is schedule-independent, so
//! SR2's reschedule variants share entries) and resolves misses
//! incrementally from the current iteration's anchored baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use hlts_cost::{estimate_cost, ModuleLibrary};
use hlts_etpn::{CacheStats, CriticalPathEngine};

use crate::{CoreError, DesignState};

/// Counters describing how the (E, H) cache resolved its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalStats {
    /// (E, H) pairs answered from the state-level cache.
    pub state_hits: u64,
    /// States that had to be lowered and measured.
    pub state_misses: u64,
    /// The shared critical-path engine's own counters.
    pub critical_path: CacheStats,
}

/// Memoizing, thread-safe evaluator of a design state's (E, H).
///
/// Create one per synthesis run (the cache assumes a fixed underlying
/// data-flow graph, bit width and module library, which is exactly the
/// scope of one [`IntegratedSynthesizer::run`] call).
///
/// [`IntegratedSynthesizer::run`]: crate::IntegratedSynthesizer::run
#[derive(Debug, Default)]
pub struct DeltaEvaluator {
    engine: CriticalPathEngine,
    cache: Mutex<HashMap<u64, (usize, f64)>>,
    state_hits: AtomicU64,
    state_misses: AtomicU64,
}

impl DeltaEvaluator {
    /// An empty evaluator.
    #[must_use]
    pub fn new() -> Self {
        DeltaEvaluator::default()
    }

    /// The cache key of a state: its schedule and binding fingerprints
    /// combined. The graph's data content is deliberately excluded — it
    /// is fixed for the lifetime of the evaluator (see module docs).
    #[must_use]
    pub fn fingerprint(state: &DesignState) -> u64 {
        let s = state.schedule.content_hash();
        let a = state.allocation.content_hash();
        // 64-bit mix of the two halves (splitmix-style finalizer).
        let mut z = s ^ a.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// (execution time, hardware cost) of `state`, memoized.
    ///
    /// On a miss this lowers the state to ETPN, extracts the critical
    /// path through the shared engine and floorplans the data path; on
    /// a hit it is two hash lookups.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures (inconsistent state). A poisoned
    /// cache mutex (a panic in another evaluation thread) is recovered
    /// rather than cascaded: every entry is an insert-only memo of a
    /// pure function, so the map is valid at any interruption point.
    pub fn eval(
        &self,
        state: &DesignState,
        bits: u32,
        library: &ModuleLibrary,
    ) -> Result<(usize, f64), CoreError> {
        let key = Self::fingerprint(state);
        if let Some(&hit) = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.state_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.state_misses.fetch_add(1, Ordering::Relaxed);
        let etpn = state.lower()?;
        let e = etpn.execution_time_with(&self.engine);
        let h = estimate_cost(etpn.data_path(), bits, library).total();
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, (e, h));
        Ok((e, h))
    }

    /// The shared critical-path engine.
    #[must_use]
    pub fn engine(&self) -> &CriticalPathEngine {
        &self.engine
    }

    /// Snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            state_hits: self.state_hits.load(Ordering::Relaxed),
            state_misses: self.state_misses.load(Ordering::Relaxed),
            critical_path: self.engine.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn state() -> DesignState {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        DesignState::initial(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn eval_matches_from_scratch() {
        let s = state();
        let ev = DeltaEvaluator::new();
        let lib = ModuleLibrary::new();
        let (e, h) = ev.eval(&s, 8, &lib).unwrap();
        let etpn = s.lower().unwrap();
        assert_eq!(e, etpn.execution_time());
        assert!((h - estimate_cost(etpn.data_path(), 8, &lib).total()).abs() < 1e-12);
    }

    #[test]
    fn repeat_eval_hits_cache() {
        let s = state();
        let ev = DeltaEvaluator::new();
        let lib = ModuleLibrary::new();
        let first = ev.eval(&s, 8, &lib).unwrap();
        for _ in 0..4 {
            assert_eq!(ev.eval(&s, 8, &lib).unwrap(), first);
        }
        let st = ev.stats();
        assert_eq!((st.state_hits, st.state_misses), (4, 1));
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let s1 = state();
        let s2 = state();
        assert_eq!(
            DeltaEvaluator::fingerprint(&s1),
            DeltaEvaluator::fingerprint(&s2)
        );
        let mut merged = state();
        let regs: Vec<_> = merged.allocation.registers().map(|r| r.id()).collect();
        merged.allocation.merge_registers(regs[0], regs[1]).unwrap();
        assert_ne!(
            DeltaEvaluator::fingerprint(&s1),
            DeltaEvaluator::fingerprint(&merged)
        );
    }
}
