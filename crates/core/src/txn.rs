//! Transactional editing of a [`DesignState`] — the journaled
//! apply/price/rollback machinery behind candidate evaluation.
//!
//! Every trial merger in the synthesis loop used to clone the full
//! design state, mutate the clone, price it and throw it away. A
//! [`StateTxn`] replaces the clone with an **undo journal** of
//! fine-grained edit operations applied in place:
//!
//! * precedence-arc additions are undone by truncating the graph's
//!   append-only arc overlay back to a [`ArcSavepoint`];
//! * a reschedule is undone by replaying the [`ScheduleDelta`] of the
//!   operations that actually moved;
//! * module/register mergers are undone by the
//!   [`ModuleMergeUndo`]/[`RegisterMergeUndo`] records of `hlts-alloc`,
//!   which split the absorbed members back out of the survivor.
//!
//! Rolling back replays the journal in LIFO order and restores the
//! state **bit-identically** (verified by the `txn_oracle` property
//! tests); committing simply discards the journal. Dropping an
//! uncommitted transaction rolls back, so every early-exit path of a
//! trial is safe by construction.
//!
//! [`ArcSavepoint`]: hlts_dfg::ArcSavepoint
//! [`ScheduleDelta`]: hlts_sched::ScheduleDelta
//! [`ModuleMergeUndo`]: hlts_alloc::ModuleMergeUndo
//! [`RegisterMergeUndo`]: hlts_alloc::RegisterMergeUndo

use std::cell::RefCell;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hlts_alloc::{AllocError, ModuleId, ModuleMergeUndo, RegisterId, RegisterMergeUndo};
use hlts_dfg::{ArcSavepoint, OpId};
use hlts_sched::{reschedule_in_place, ListPriority, ScheduleDelta};

use crate::candidates::MergeKind;
use crate::resched::{apply_merge, OrderStrategy};
use crate::{CoreError, DesignState};

/// One reversible edit recorded in a transaction's journal.
#[derive(Debug)]
enum UndoOp {
    /// Truncate the graph's arc overlay back to this savepoint.
    Arcs(ArcSavepoint),
    /// Revert the schedule moves of one reschedule.
    Schedule(ScheduleDelta),
    /// Split an absorbed module back out of its survivor.
    Modules(ModuleMergeUndo),
    /// Split an absorbed register back out of its survivor.
    Registers(RegisterMergeUndo),
}

// Thread-local recycling pool for transaction journals (bounded so a
// pathological burst of nested transactions cannot pin memory): the
// journal vector of a finished transaction keeps its capacity for the
// next trial, so steady-state journaling allocates nothing.
thread_local! {
    static JOURNAL_POOL: RefCell<Vec<Vec<UndoOp>>> = const { RefCell::new(Vec::new()) };
}
const JOURNAL_POOL_CAP: usize = 8;

fn journal_acquire() -> Vec<UndoOp> {
    JOURNAL_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

fn journal_release(mut journal: Vec<UndoOp>) {
    journal.clear();
    JOURNAL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < JOURNAL_POOL_CAP {
            pool.push(journal);
        }
    });
}

/// An open transaction over a [`DesignState`]: edits apply in place and
/// are journaled, [`StateTxn::commit`] keeps them, dropping the
/// transaction (or [`StateTxn::rollback_to`] a savepoint) undoes them.
///
/// Created by [`DesignState::begin`] or [`StateTxn::begin`].
#[derive(Debug)]
pub struct StateTxn<'a> {
    state: &'a mut DesignState,
    journal: Vec<UndoOp>,
    committed: bool,
    counters: Arc<TxnCounters>,
}

/// A position in a transaction's journal; rolling back to it undoes
/// everything recorded after it was taken. Savepoints of one
/// transaction must be used in LIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSavepoint(usize);

impl<'a> StateTxn<'a> {
    /// Open a transaction on `state`.
    #[must_use]
    pub fn begin(state: &'a mut DesignState) -> Self {
        let counters = state.txn_counters();
        counters.begun.fetch_add(1, Ordering::Relaxed);
        StateTxn {
            state,
            journal: journal_acquire(),
            committed: false,
            counters,
        }
    }

    /// Read access to the state as currently edited.
    #[must_use]
    pub fn state(&self) -> &DesignState {
        self.state
    }

    /// Add a strict precedence arc `from -> to`, journaling the overlay
    /// growth. Idempotent adds (arc already present) record nothing.
    ///
    /// # Errors
    ///
    /// As [`Dfg::add_precedence`](hlts_dfg::Dfg::add_precedence).
    pub fn add_precedence(&mut self, from: OpId, to: OpId) -> Result<(), hlts_dfg::DfgError> {
        let sp = self.state.dfg.arc_savepoint();
        self.state.dfg.add_precedence(from, to)?;
        if self.state.dfg.arc_savepoint() != sp {
            self.record(UndoOp::Arcs(sp));
        }
        Ok(())
    }

    /// Add a weak (same-step-allowed) precedence arc `from -> to`,
    /// journaling the overlay growth. Idempotent adds record nothing.
    ///
    /// # Errors
    ///
    /// As [`Dfg::add_weak_precedence`](hlts_dfg::Dfg::add_weak_precedence).
    pub fn add_weak_precedence(&mut self, from: OpId, to: OpId) -> Result<(), hlts_dfg::DfgError> {
        let sp = self.state.dfg.arc_savepoint();
        self.state.dfg.add_weak_precedence(from, to)?;
        if self.state.dfg.arc_savepoint() != sp {
            self.record(UndoOp::Arcs(sp));
        }
        Ok(())
    }

    /// Re-solve the schedule under the current constraint arcs and
    /// binding (as [`DesignState::reschedule`]), journaling the delta of
    /// the operations that moved.
    ///
    /// # Errors
    ///
    /// As [`DesignState::reschedule`]; on error nothing is recorded and
    /// the schedule is unchanged.
    pub fn reschedule(&mut self) -> Result<(), CoreError> {
        // In-place re-solve: the scheduler reads the conflict groups
        // straight from the binding tables and uses the schedule's own
        // steps as the stability priority, so a steady-state reschedule
        // allocates nothing.
        let delta = reschedule_in_place(
            &self.state.dfg,
            &self.state.allocation,
            &mut self.state.schedule,
            ListPriority::CriticalPath,
        )?;
        self.record(UndoOp::Schedule(delta));
        Ok(())
    }

    /// Merge module `b` into `a`, journaling the undo record.
    ///
    /// # Errors
    ///
    /// As [`Allocation::merge_modules`](hlts_alloc::Allocation::merge_modules);
    /// on error nothing is recorded and the binding is unchanged.
    pub fn merge_modules(&mut self, a: ModuleId, b: ModuleId) -> Result<ModuleId, AllocError> {
        let undo = self
            .state
            .allocation
            .merge_modules_journaled(&self.state.dfg, a, b)?;
        self.record(UndoOp::Modules(undo));
        Ok(a)
    }

    /// Merge register `b` into `a`, journaling the undo record.
    ///
    /// # Errors
    ///
    /// As [`Allocation::merge_registers`](hlts_alloc::Allocation::merge_registers);
    /// on error nothing is recorded and the binding is unchanged.
    pub fn merge_registers(&mut self, a: RegisterId, b: RegisterId) -> Result<RegisterId, AllocError> {
        let undo = self.state.allocation.merge_registers_journaled(a, b)?;
        self.record(UndoOp::Registers(undo));
        Ok(a)
    }

    /// Mark the current journal position. Everything recorded afterwards
    /// can be undone with [`StateTxn::rollback_to`] — the mechanism
    /// behind tentative what-if probes (SR2 order selection, per-pair
    /// feasibility checks) inside a larger trial.
    #[must_use]
    pub fn savepoint(&self) -> TxnSavepoint {
        TxnSavepoint(self.journal.len())
    }

    /// Undo every edit recorded since `sp` was taken, in LIFO order.
    ///
    /// # Panics
    ///
    /// Panics if `sp` is ahead of the journal (savepoints used out of
    /// LIFO order).
    pub fn rollback_to(&mut self, sp: TxnSavepoint) {
        assert!(
            sp.0 <= self.journal.len(),
            "transaction savepoint used out of LIFO order"
        );
        let mut replayed = 0u64;
        while self.journal.len() > sp.0 {
            let Some(op) = self.journal.pop() else { break };
            Self::undo(self.state, op);
            replayed += 1;
        }
        self.counters.ops_replayed.fetch_add(replayed, Ordering::Relaxed);
    }

    /// Keep every recorded edit: the journal is discarded and the
    /// borrowed state stays as edited.
    pub fn commit(mut self) {
        self.committed = true;
        self.counters.committed.fetch_add(1, Ordering::Relaxed);
    }

    fn record(&mut self, op: UndoOp) {
        self.counters.ops_recorded.fetch_add(1, Ordering::Relaxed);
        self.journal.push(op);
    }

    fn undo(state: &mut DesignState, op: UndoOp) {
        match op {
            UndoOp::Arcs(sp) => {
                state.dfg.truncate_arcs(sp);
            }
            UndoOp::Schedule(delta) => state.schedule.revert(&delta),
            UndoOp::Modules(undo) => state.allocation.undo_module_merge(undo),
            UndoOp::Registers(undo) => state.allocation.undo_register_merge(undo),
        }
    }
}

impl Drop for StateTxn<'_> {
    /// An uncommitted transaction rolls back on drop, restoring the
    /// borrowed state bit-identically to what it was at
    /// [`StateTxn::begin`].
    fn drop(&mut self) {
        if !self.committed {
            self.rollback_to(TxnSavepoint(0));
            self.counters.rolled_back.fetch_add(1, Ordering::Relaxed);
        }
        // Recycle the journal buffer (empty after a rollback; committed
        // entries are dropped here) for the next transaction.
        journal_release(mem::take(&mut self.journal));
    }
}

/// Evaluate one merge candidate as **apply → price → rollback**: the
/// merger (with merge-sort rescheduling under `strategy`) is applied to
/// `state` inside a transaction, `price` reads the post-merge state, and
/// the transaction rolls back, leaving `state` bit-identical to before.
///
/// Returns `None` when the merger is infeasible or `price` declines.
/// This is the one trial path shared by Algorithm 1 and the CAMAD
/// baseline — they differ only in the pricing closure. The price type
/// is generic: the classic loop prices a scalar ΔC (`f64`), the
/// warm-start capture path prices the `(ΔE, ΔH)` parts so a replayed
/// trace can be re-weighted without re-trialing.
///
/// In debug builds the rolled-back state is re-audited after every
/// trial (see [`DesignState::audit`]): a journal-replay bug corrupts
/// the *base* state all later candidates price, so it must be caught
/// at the rollback that introduced it, not at the end of the run.
pub fn trial_merge<T, F>(
    state: &mut DesignState,
    kind: MergeKind,
    strategy: OrderStrategy,
    price: F,
) -> Option<T>
where
    F: FnOnce(&DesignState) -> Option<T>,
{
    let priced = {
        let mut txn = StateTxn::begin(state);
        let feasible = apply_merge(&mut txn, kind, strategy).is_ok();
        // an injected CORE_FORCE_ROLLBACK discards the applied trial unpriced
        if feasible && !hlts_check::faults::fire(hlts_check::faults::sites::CORE_FORCE_ROLLBACK) {
            price(txn.state())
        } else {
            None // txn drop rolls back whatever was applied
        }
    }; // the transaction drops here: uncommitted edits roll back
    #[cfg(debug_assertions)]
    {
        let report = hlts_check::audit_design(&state.dfg, &state.schedule, &state.allocation);
        debug_assert!(report.is_clean(), "post-rollback audit failed:\n{report}");
    }
    priced
}

/// Cumulative transaction-layer counters of one synthesis run,
/// aggregated across all forks and evaluation threads sharing the
/// state's counter block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions opened ([`StateTxn::begin`]).
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Uncommitted transactions rolled back on drop.
    pub rolled_back: u64,
    /// Journal entries recorded across all transactions.
    pub ops_recorded: u64,
    /// Journal entries replayed by rollbacks (full and to-savepoint).
    pub ops_replayed: u64,
}

/// The shared atomic counter block behind [`TxnStats`]; every fork of a
/// [`DesignState`] references the same block, so parallel candidate
/// evaluation aggregates into one set of totals.
#[derive(Debug, Default)]
pub(crate) struct TxnCounters {
    begun: AtomicU64,
    committed: AtomicU64,
    rolled_back: AtomicU64,
    ops_recorded: AtomicU64,
    ops_replayed: AtomicU64,
}

impl TxnCounters {
    pub(crate) fn snapshot(&self) -> TxnStats {
        TxnStats {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            rolled_back: self.rolled_back.load(Ordering::Relaxed),
            ops_recorded: self.ops_recorded.load(Ordering::Relaxed),
            ops_replayed: self.ops_replayed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaEvaluator;
    use hlts_dfg::{Dfg, DfgBuilder, OpKind};

    fn fixture() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[a, c], "t2").unwrap();
        let t3 = b.op("N3", OpKind::Mul, &[t1, t2], "t3").unwrap();
        let y = b.op("N4", OpKind::Sub, &[t3, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    fn snapshot(s: &DesignState) -> (Dfg, hlts_sched::Schedule, hlts_alloc::Allocation, u64) {
        (
            s.dfg.deep_clone(),
            s.schedule.clone(),
            s.allocation.clone(),
            DeltaEvaluator::fingerprint(s),
        )
    }

    fn assert_restored(s: &DesignState, snap: &(Dfg, hlts_sched::Schedule, hlts_alloc::Allocation, u64)) {
        assert_eq!(s.dfg, snap.0);
        assert_eq!(s.schedule, snap.1);
        assert_eq!(s.allocation, snap.2);
        assert_eq!(DeltaEvaluator::fingerprint(s), snap.3);
    }

    #[test]
    fn drop_rolls_back_merge_and_reschedule() {
        let d = fixture();
        let mut s = DesignState::initial(&d).unwrap();
        let before = snapshot(&s);
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        let (m1, m2) = (s.allocation.module_of(n1), s.allocation.module_of(n2));
        {
            let mut txn = StateTxn::begin(&mut s);
            txn.add_precedence(n1, n2).unwrap();
            txn.merge_modules(m1, m2).unwrap();
            txn.reschedule().unwrap();
            assert_eq!(txn.state().allocation.num_modules(), 3);
        }
        assert_restored(&s, &before);
        let st = s.txn_stats();
        assert_eq!(st.begun, 1);
        assert_eq!(st.rolled_back, 1);
        assert_eq!(st.committed, 0);
        assert_eq!(st.ops_recorded, st.ops_replayed);
        assert!(st.ops_recorded >= 2);
    }

    #[test]
    fn commit_keeps_edits() {
        let d = fixture();
        let mut s = DesignState::initial(&d).unwrap();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        let (m1, m2) = (s.allocation.module_of(n1), s.allocation.module_of(n2));
        let mut txn = StateTxn::begin(&mut s);
        txn.add_precedence(n1, n2).unwrap();
        txn.merge_modules(m1, m2).unwrap();
        txn.reschedule().unwrap();
        txn.commit();
        assert_eq!(s.allocation.num_modules(), 3);
        s.validate().unwrap();
        let st = s.txn_stats();
        assert_eq!(st.committed, 1);
        assert_eq!(st.rolled_back, 0);
        assert_eq!(st.ops_replayed, 0);
    }

    #[test]
    fn savepoint_rollback_is_partial() {
        let d = fixture();
        let mut s = DesignState::initial(&d).unwrap();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        let n4 = s.dfg.op_by_name("N4").unwrap();
        let mut txn = StateTxn::begin(&mut s);
        txn.add_precedence(n1, n2).unwrap();
        let sp = txn.savepoint();
        txn.add_precedence(n2, n4).unwrap();
        assert_eq!(txn.state().dfg.extra_precedence().len(), 2);
        txn.rollback_to(sp);
        assert_eq!(txn.state().dfg.extra_precedence().len(), 1);
        txn.commit();
        assert_eq!(s.dfg.extra_precedence(), &[(n1, n2)]);
    }

    #[test]
    fn idempotent_arc_adds_record_nothing() {
        let d = fixture();
        let mut s = DesignState::initial(&d).unwrap();
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        let mut txn = StateTxn::begin(&mut s);
        txn.add_precedence(n1, n2).unwrap();
        txn.add_precedence(n1, n2).unwrap(); // already present: no-op
        assert_eq!(txn.journal.len(), 1);
        drop(txn);
        assert!(s.dfg.extra_precedence().is_empty());
    }

    #[test]
    fn trial_merge_prices_and_restores() {
        let d = fixture();
        let mut s = DesignState::initial(&d).unwrap();
        let before = snapshot(&s);
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n2 = s.dfg.op_by_name("N2").unwrap();
        let (m1, m2) = (s.allocation.module_of(n1), s.allocation.module_of(n2));
        let dc = trial_merge(
            &mut s,
            MergeKind::Modules(m1, m2),
            OrderStrategy::CoEnhancement,
            |trial| {
                assert_eq!(trial.allocation.num_modules(), 3);
                Some(1.5)
            },
        );
        assert_eq!(dc, Some(1.5));
        assert_restored(&s, &before);
    }

    #[test]
    fn infeasible_trial_returns_none_and_restores() {
        let d = fixture();
        let mut s = DesignState::initial(&d).unwrap();
        let before = snapshot(&s);
        let n1 = s.dfg.op_by_name("N1").unwrap();
        let n3 = s.dfg.op_by_name("N3").unwrap(); // mul: incompatible with add
        let (m1, m3) = (s.allocation.module_of(n1), s.allocation.module_of(n3));
        let dc = trial_merge(
            &mut s,
            MergeKind::Modules(m1, m3),
            OrderStrategy::CoEnhancement,
            |_| Some(0.0),
        );
        assert_eq!(dc, None);
        assert_restored(&s, &before);
    }
}
