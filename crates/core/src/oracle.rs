//! The clone-per-trial synthesis path, preserved as a **golden
//! oracle** for the transaction layer.
//!
//! Before transactions (`crate::txn`), every tentative merger — each
//! shortlisted candidate, every SR2 order probe, every per-pair
//! lifetime feasibility check — cloned the full design state, mutated
//! the clone and threw it away. This module keeps that formulation
//! alive, byte-for-byte in its decisions, with the clone cost the seed
//! actually paid: trial clones use [`DesignState::deep_trial_clone`],
//! which deep-copies the graph instead of sharing its immutable core.
//!
//! It exists for two purposes and is **not** part of the synthesis API:
//!
//! * the `txn_oracle` property tests assert that the transactional
//!   [`IntegratedSynthesizer`](crate::IntegratedSynthesizer) produces
//!   bit-identical results to [`synthesize`] on every bundled
//!   benchmark;
//! * the `merge_loop` benchmark gates the transaction layer's speedup
//!   (trials must run at least 2× faster than these clone trials).

use hlts_alloc::{ModuleId, RegisterId};
use hlts_dfg::{Dfg, OpId, ValueId};
use hlts_testability::total_co_depth;

use crate::algorithm::merge_description;
use crate::candidates::{enumerate_candidates, MergeCandidate, MergeKind};
use crate::delta_eval::DeltaEvaluator;
use crate::resched::{disjointness_arcs, OrderStrategy, PrecArc};
use crate::{CoreError, DesignState, SelectionPolicy, SynthesisParams, SynthesisResult};

/// The (SR1 depth, execution time) figure of merit of a tentative
/// state — identical to the transactional path's merit function.
fn sr1_merit(state: &DesignState) -> Result<(f64, usize), CoreError> {
    let etpn = state.lower()?;
    let analysis = state.testability_engine().analyze(etpn.data_path());
    Ok((
        total_co_depth(etpn.data_path(), &analysis),
        etpn.execution_time(),
    ))
}

/// Apply `arcs` to a deep clone of `state` and reschedule; `None` when
/// the arcs are cyclic or the reschedule fails. This is the seed's
/// trial shape: one full-copy state per probe.
fn try_arcs(state: &DesignState, arcs: &[PrecArc]) -> Option<DesignState> {
    let mut s = state.deep_trial_clone();
    for &PrecArc { from, to, weak } in arcs {
        if weak {
            if s.dfg.reaches(from, to) {
                continue;
            }
            s.dfg.add_weak_precedence(from, to).ok()?;
        } else {
            s.dfg.add_precedence(from, to).ok()?;
        }
    }
    s.reschedule().ok()?;
    Some(s)
}

/// Convenience for strict-only arc lists (module-merge ordering).
fn strict(pairs: &[(OpId, OpId)]) -> Vec<PrecArc> {
    pairs
        .iter()
        .map(|&(from, to)| PrecArc {
            from,
            to,
            weak: false,
        })
        .collect()
}

/// SR2 on clones: both tentative constraint sets are built as
/// independent deep-copied states.
fn sr2_choose(
    state: &DesignState,
    first: &[PrecArc],
    second: &[PrecArc],
    strategy: OrderStrategy,
) -> Option<bool> {
    let s1 = try_arcs(state, first);
    let s2 = try_arcs(state, second);
    match (s1, s2) {
        (None, None) => None,
        (Some(_), None) => Some(true),
        (None, Some(_)) => Some(false),
        (Some(a), Some(b)) => {
            let ma = sr1_merit(&a).ok()?;
            let mb = sr1_merit(&b).ok()?;
            match strategy {
                OrderStrategy::CoEnhancement => {
                    if (ma.0 - mb.0).abs() > 1e-9 {
                        Some(ma.0 < mb.0)
                    } else {
                        Some(ma.1 <= mb.1)
                    }
                }
                OrderStrategy::CriticalPath => Some(ma.1 <= mb.1),
            }
        }
    }
}

/// Clone-based module merge with merge-sort rescheduling — the seed's
/// formulation of `merge_modules_with_resched_using`.
///
/// # Errors
///
/// As [`crate::merge_modules_with_resched_using`].
pub fn merge_modules_cloned(
    state: &mut DesignState,
    a: ModuleId,
    b: ModuleId,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let ops_of = |m: ModuleId| -> Vec<OpId> {
        let mut ops = state
            .allocation
            .module(m)
            .map(|x| x.ops().to_vec())
            .unwrap_or_default();
        ops.sort_by_key(|&o| (state.schedule.step_of(o), o.index()));
        ops
    };
    let seq_a = ops_of(a);
    let seq_b = ops_of(b);
    if seq_a.is_empty() || seq_b.is_empty() {
        return Err(CoreError::MergeRejected(format!("{a} or {b} is stale")));
    }

    let mut work = state.deep_trial_clone();
    let mut merged: Vec<OpId> = Vec::with_capacity(seq_a.len() + seq_b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut first_free_decision = true;
    while i < seq_a.len() && j < seq_b.len() {
        let (ha, hb) = (seq_a[i], seq_b[j]);
        let take_a = if work.dfg.reaches(ha, hb) {
            true
        } else if work.dfg.reaches(hb, ha) {
            false
        } else if first_free_decision {
            first_free_decision = false;
            sr2_choose(&work, &strict(&[(ha, hb)]), &strict(&[(hb, ha)]), strategy).ok_or_else(
                || {
                    CoreError::MergeRejected(format!(
                        "no feasible order for `{}` and `{}`",
                        work.dfg.op(ha).name(),
                        work.dfg.op(hb).name()
                    ))
                },
            )?
        } else {
            (work.schedule.step_of(ha), ha.index()) <= (work.schedule.step_of(hb), hb.index())
        };
        if take_a {
            merged.push(ha);
            i += 1;
        } else {
            merged.push(hb);
            j += 1;
        }
    }
    merged.extend_from_slice(&seq_a[i..]);
    merged.extend_from_slice(&seq_b[j..]);

    for w in merged.windows(2) {
        let (x, y) = (w[0], w[1]);
        if !work.dfg.reaches(x, y) {
            work.dfg.add_precedence(x, y).map_err(|_| {
                CoreError::MergeRejected(format!(
                    "ordering `{}` before `{}` is cyclic",
                    work.dfg.op(x).name(),
                    work.dfg.op(y).name()
                ))
            })?;
        }
    }
    work.allocation.merge_modules(&work.dfg, a, b)?;
    work.reschedule()?;
    // Same defense as the transactional path: rescheduling can slide a
    // definition into the end-of-iteration copy slot of a loop-carried
    // value sharing a previously merged register — reject instead of
    // committing an overlapping register file.
    if work.validate().is_err() {
        return Err(CoreError::MergeRejected(
            "post-merge reschedule produced overlapping lifetimes".into(),
        ));
    }
    *state = work;
    Ok(())
}

/// Clone-based register merge with merge-sort rescheduling — the seed's
/// formulation of `merge_registers_with_resched_using`.
///
/// # Errors
///
/// As [`crate::merge_registers_with_resched_using`].
pub fn merge_registers_cloned(
    state: &mut DesignState,
    a: RegisterId,
    b: RegisterId,
    strategy: OrderStrategy,
) -> Result<(), CoreError> {
    let vals_of = |r: RegisterId| -> Vec<ValueId> {
        state
            .allocation
            .register(r)
            .map(|x| x.values().to_vec())
            .unwrap_or_default()
    };
    let va = vals_of(a);
    let vb = vals_of(b);
    if va.is_empty() || vb.is_empty() {
        return Err(CoreError::MergeRejected(format!("{a} or {b} is stale")));
    }

    for &x in &va {
        for &y in &vb {
            let clash = state
                .dfg
                .ops()
                .iter()
                .any(|op| op.inputs().contains(&x) && op.inputs().contains(&y));
            if clash {
                return Err(CoreError::MergeRejected(format!(
                    "`{}` and `{}` feed one operation together",
                    state.dfg.value(x).name(),
                    state.dfg.value(y).name()
                )));
            }
        }
    }

    let lt = state.lifetimes();
    let birth = |v: ValueId| lt.interval(v).map_or(usize::MAX, |iv| iv.birth);
    let mut seq_a = va;
    let mut seq_b = vb;
    seq_a.sort_by_key(|&v| (birth(v), v.index()));
    seq_b.sort_by_key(|&v| (birth(v), v.index()));

    let mut work = state.deep_trial_clone();
    let mut merged: Vec<ValueId> = Vec::with_capacity(seq_a.len() + seq_b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut first_free_decision = true;
    while i < seq_a.len() && j < seq_b.len() {
        let (ha, hb) = (seq_a[i], seq_b[j]);
        let ab = disjointness_arcs(&work.dfg, ha, hb).unwrap_or_default();
        let ba = disjointness_arcs(&work.dfg, hb, ha).unwrap_or_default();
        let a_feasible =
            disjointness_arcs(&work.dfg, ha, hb).is_some() && try_arcs(&work, &ab).is_some();
        let b_feasible =
            disjointness_arcs(&work.dfg, hb, ha).is_some() && try_arcs(&work, &ba).is_some();
        let take_a = match (a_feasible, b_feasible) {
            (false, false) => {
                return Err(CoreError::MergeRejected(format!(
                    "lifetimes of `{}` and `{}` can never be disjoint",
                    work.dfg.value(ha).name(),
                    work.dfg.value(hb).name()
                )))
            }
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                if first_free_decision {
                    first_free_decision = false;
                    sr2_choose(&work, &ab, &ba, strategy).unwrap_or(true)
                } else {
                    (birth(ha), ha.index()) <= (birth(hb), hb.index())
                }
            }
        };
        if take_a {
            merged.push(ha);
            i += 1;
        } else {
            merged.push(hb);
            j += 1;
        }
    }
    merged.extend_from_slice(&seq_a[i..]);
    merged.extend_from_slice(&seq_b[j..]);

    for w in merged.windows(2) {
        let reject_msg = format!(
            "lifetime ordering of `{}` before `{}` is infeasible",
            work.dfg.value(w[0]).name(),
            work.dfg.value(w[1]).name()
        );
        let arcs = disjointness_arcs(&work.dfg, w[0], w[1])
            .ok_or_else(|| CoreError::MergeRejected(reject_msg.clone()))?;
        for PrecArc { from, to, weak } in arcs {
            let added = if weak {
                work.dfg.add_weak_precedence(from, to)
            } else {
                work.dfg.add_precedence(from, to)
            };
            added.map_err(|_| CoreError::MergeRejected(reject_msg.clone()))?;
        }
    }
    work.allocation.merge_registers(a, b)?;
    work.reschedule()?;
    if work.validate().is_err() {
        return Err(CoreError::MergeRejected(
            "post-merge validation found overlapping lifetimes".into(),
        ));
    }
    *state = work;
    Ok(())
}

/// One clone-based candidate trial: deep-copy the state, merge, price.
/// The seed's `eval_candidate`, kept verbatim in shape.
fn eval_candidate_cloned(
    params: &SynthesisParams,
    state: &DesignState,
    cand: &MergeCandidate,
    e0: f64,
    h0: f64,
    evaluator: &DeltaEvaluator,
) -> Option<(f64, DesignState)> {
    let mut trial = state.deep_trial_clone();
    match cand.kind {
        MergeKind::Modules(a, b) => {
            merge_modules_cloned(&mut trial, a, b, params.order_strategy).ok()?;
        }
        MergeKind::Registers(a, b) => {
            merge_registers_cloned(&mut trial, a, b, params.order_strategy).ok()?;
        }
    }
    let (e1, h1) = evaluator.eval(&trial, params.bits, &params.library).ok()?;
    let dc = params.alpha * (e1 as f64 - e0) + params.beta * (h1 - h0);
    Some((dc, trial))
}

/// Run Algorithm 1 with clone-based trials (sequential, keep-the-trial
/// commit) — the seed's synthesis loop. Produces results bit-identical
/// to [`IntegratedSynthesizer::run`](crate::IntegratedSynthesizer::run)
/// with the same parameters; the `txn_oracle` tests enforce this.
///
/// # Errors
///
/// As [`IntegratedSynthesizer::run`](crate::IntegratedSynthesizer::run).
pub fn synthesize(dfg: &Dfg, params: &SynthesisParams) -> Result<SynthesisResult, CoreError> {
    let evaluator = DeltaEvaluator::new();
    let mut state = DesignState::initial(dfg)?;
    let mut merge_log: Vec<String> = Vec::new();

    for _ in 0..params.max_merges {
        let etpn = state.lower()?;
        let analysis = state.testability_engine().analyze(etpn.data_path());
        state.testability_engine().set_anchor(etpn.data_path(), &analysis);
        let mut candidates = enumerate_candidates(&state, &etpn, &analysis);
        if candidates.is_empty() {
            break;
        }
        if params.selection_policy == SelectionPolicy::Arbitrary {
            candidates.sort_by_key(|c| match c.kind {
                MergeKind::Modules(a, b) => (0u8, a.index(), b.index()),
                MergeKind::Registers(a, b) => (1u8, a.index(), b.index()),
            });
        }
        let (e0_steps, h0) = evaluator.eval(&state, params.bits, &params.library)?;
        let e0 = e0_steps as f64;

        let mut committed = false;
        for chunk in candidates.chunks(params.k.max(1)) {
            let mut best: Option<(f64, DesignState, MergeKind)> = None;
            for cand in chunk {
                let Some((dc, trial)) =
                    eval_candidate_cloned(params, &state, cand, e0, h0, &evaluator)
                else {
                    continue;
                };
                if best.as_ref().is_none_or(|(b, _, _)| dc < *b) {
                    best = Some((dc, trial, cand.kind));
                }
            }
            if let Some((dc, trial, kind)) = best {
                if dc <= params.accept_threshold {
                    let desc = merge_description(&trial, kind);
                    merge_log.push(format!("{desc} (ΔC = {dc:+.4})"));
                    state = trial;
                    committed = true;
                    break;
                }
            }
        }
        if !committed {
            break;
        }
    }

    debug_assert!(state.validate().is_ok());
    SynthesisResult::from_state(state, params.bits, &params.library, merge_log)
}
