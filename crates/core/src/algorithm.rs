//! Algorithm 1: the iterative integrated synthesis loop.

use hlts_cost::ModuleLibrary;
use hlts_dfg::Dfg;

use crate::candidates::{enumerate_candidates, MergeCandidate, MergeKind};
use crate::delta_eval::DeltaEvaluator;
use crate::resched::{
    apply_merge, merge_modules_with_resched_using, merge_registers_with_resched_using,
    OrderStrategy,
};
use crate::trace::{MergeTrace, ReplayStats, TraceEntry, TraceMergeKind, TraceWinner};
use crate::txn::{trial_merge, StateTxn};
use crate::{CoreError, DesignState, ProgressEvent, RunCtl, SynthesisResult};

/// How the *k* shortlisted candidates of each iteration are evaluated.
///
/// Both modes produce **bit-identical** results: each candidate trial
/// is applied and rolled back through the transaction journal (in
/// sequential mode in place on the base state, in parallel mode on a
/// per-thread [`DesignState::fork`]), every trial therefore prices the
/// identical post-merge design, and the winner is reduced by
/// (ΔC, shortlist index) — exactly the sequential first-strictly-smaller
/// rule. The parallel mode merely computes the trials on scoped threads
/// sharing one [`DeltaEvaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Evaluate candidates one at a time on the calling thread.
    #[cfg_attr(not(feature = "parallel"), default)]
    Sequential,
    /// Evaluate each shortlist chunk's candidates on scoped threads.
    /// Without the `parallel` cargo feature this mode still exists but
    /// behaves exactly like [`EvalMode::Sequential`].
    #[cfg_attr(feature = "parallel", default)]
    Parallel,
}

/// The user parameters of the synthesis algorithm.
///
/// `k`, `alpha` (α) and `beta` (β) are the paper's knobs: each iteration
/// shortlists the `k` most balance-complementary merge pairs, then
/// commits the one with the smallest ΔC = α·ΔE + β·ΔH. "A small value
/// of k means that more emphasis is placed on improving the testability
/// measure."
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Shortlist size per iteration (paper's `k`).
    pub k: usize,
    /// Weight of the incremental execution time ΔE (control steps).
    pub alpha: f64,
    /// Weight of the incremental hardware cost ΔH (area units).
    pub beta: f64,
    /// Data-path bit width used for area estimation.
    pub bits: u32,
    /// The module library pricing ΔH.
    pub library: ModuleLibrary,
    /// A merge commits only when its ΔC does not exceed this threshold.
    /// The paper iterates "until no merger exists"; with the default
    /// threshold 0 that reading becomes *until no merger improves the
    /// weighted cost*, which is what terminates the loop short of a
    /// single-ALU design.
    pub accept_threshold: f64,
    /// Hard cap on committed mergers (defensive; never reached by the
    /// benchmarks).
    pub max_merges: usize,
    /// How free ordering decisions inside mergers are resolved. The
    /// paper's strategy is [`OrderStrategy::CoEnhancement`] (SR2);
    /// [`OrderStrategy::CriticalPath`] ablates the testability steering
    /// while keeping the rest of Algorithm 1 intact.
    pub order_strategy: OrderStrategy,
    /// How the per-iteration candidate shortlist is ranked. The paper's
    /// principle is [`SelectionPolicy::CoBalance`] (§3);
    /// [`SelectionPolicy::Arbitrary`] ablates it (stable id order), so
    /// ΔC alone drives the merge choice.
    pub selection_policy: SelectionPolicy,
}

/// How merge candidates are ranked before the k-chunked ΔC evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// The paper's controllability/observability balance principle.
    #[default]
    CoBalance,
    /// Deterministic but testability-blind order (ablation).
    Arbitrary,
}

impl Default for SynthesisParams {
    fn default() -> Self {
        SynthesisParams {
            k: 3,
            alpha: 2.0,
            beta: 1.0,
            bits: 8,
            library: ModuleLibrary::new(),
            accept_threshold: 1e-9,
            max_merges: 10_000,
            order_strategy: OrderStrategy::CoEnhancement,
            selection_policy: SelectionPolicy::CoBalance,
        }
    }
}

impl SynthesisParams {
    /// The parameter sets the paper reports for its main experiments:
    /// `(k, α, β)` = (3, 2, 1), (3, 10, 1) and (3, 1, 10) for 4-, 8- and
    /// 16-bit implementations respectively.
    #[must_use]
    pub fn paper_defaults(bits: u32) -> Self {
        let (alpha, beta) = match bits {
            0..=4 => (2.0, 1.0),
            5..=8 => (10.0, 1.0),
            _ => (1.0, 10.0),
        };
        SynthesisParams {
            k: 3,
            alpha,
            beta,
            bits,
            ..SynthesisParams::default()
        }
    }

    /// Check the parameters are usable: `k >= 1` and finite,
    /// non-negative `alpha`/`beta`. Every library entry point calls
    /// this before any work starts, so embedders get an
    /// [`CoreError::InvalidParams`] instead of a silently corrupted
    /// ΔC = α·ΔE + β·ΔH ordering (NaN weights would make every
    /// comparison vacuous) or a degenerate shortlist.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParams`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::InvalidParams("k must be >= 1".into()));
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("accept_threshold", self.accept_threshold),
        ] {
            if !v.is_finite() {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be finite (got {v})"
                )));
            }
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if v < 0.0 {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be non-negative (got {v})"
                )));
            }
        }
        Ok(())
    }
}

/// The integrated scheduling/allocation test synthesizer (Algorithm 1).
#[derive(Debug, Clone)]
pub struct IntegratedSynthesizer {
    params: SynthesisParams,
}

impl IntegratedSynthesizer {
    /// Create a synthesizer with the given parameters.
    #[must_use]
    pub fn new(params: SynthesisParams) -> Self {
        IntegratedSynthesizer { params }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &SynthesisParams {
        &self.params
    }

    /// Run Algorithm 1 on `dfg`.
    ///
    /// Each iteration: run the testability analysis, shortlist the `k`
    /// most C/O-complementary merge pairs, estimate ΔE (critical path of
    /// the control Petri net) and ΔH (floorplanned area) for each by
    /// tentatively applying it (merge + merge-sort rescheduling with the
    /// SR1/SR2 strategy), and commit the pair with the smallest
    /// ΔC = α·ΔE + β·ΔH if it meets the acceptance threshold. When no
    /// pair in the shortlist qualifies, the next `k` candidates are
    /// examined, so the loop only stops when *no* merger qualifies.
    ///
    /// # Errors
    ///
    /// Only construction-level failures (cyclic input graph, inconsistent
    /// state) are errors; rejected mergers are part of normal operation.
    pub fn run(&self, dfg: &Dfg) -> Result<SynthesisResult, CoreError> {
        self.run_mode(dfg, EvalMode::default())
    }

    /// Run Algorithm 1 with an explicit candidate-evaluation mode (see
    /// [`EvalMode`]; results are bit-identical across modes).
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run).
    pub fn run_mode(&self, dfg: &Dfg, mode: EvalMode) -> Result<SynthesisResult, CoreError> {
        self.run_mode_with(dfg, mode, &DeltaEvaluator::new())
    }

    /// Run Algorithm 1 with an explicit mode and a caller-owned
    /// [`DeltaEvaluator`], whose cache statistics can be inspected
    /// afterwards. The evaluator must not have been used with a
    /// different graph, bit width or library (its cache is keyed on
    /// (schedule, binding) only).
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run).
    pub fn run_mode_with(
        &self,
        dfg: &Dfg,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Result<SynthesisResult, CoreError> {
        self.run_on(&DesignState::initial(dfg)?, mode, evaluator)
    }

    /// Run Algorithm 1 starting from a caller-owned base state, which is
    /// forked (not mutated): the run shares the base's graph core,
    /// [`TestabilityEngine`](hlts_testability::TestabilityEngine) and
    /// transaction counters, plus the given evaluator's (E, H) cache.
    ///
    /// This is the batch entry point: a design-space sweep builds one
    /// base state and one evaluator per behavior and runs every
    /// parameter point through them, so structurally identical trial
    /// states met by different points resolve from the shared caches.
    /// Sharing never changes a result — both caches are keyed on
    /// content (structure / schedule+binding), and the engine's anchor
    /// only steers *how* misses are computed — so concurrent runs on
    /// forks of one base are bit-identical to isolated runs.
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run).
    pub fn run_on(
        &self,
        base: &DesignState,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Result<SynthesisResult, CoreError> {
        self.run_on_ctl(base, mode, evaluator, &RunCtl::none())
    }

    /// [`run_on`](Self::run_on) under an external [`RunCtl`]: the
    /// job-engine entry point. The cancel token is checked once per
    /// iteration — between transactions, never inside one — so a fired
    /// token surfaces as [`CoreError::Cancelled`] with no partially
    /// applied merge behind it, and a token that never fires leaves the
    /// run **bit-identical** to [`run_on`](Self::run_on) (the check is
    /// one relaxed atomic load; nothing else differs). One
    /// [`ProgressEvent::Iteration`] streams to the sink per iteration.
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run), plus
    /// [`CoreError::Cancelled`] when `ctl.cancel` fires.
    pub fn run_on_ctl(
        &self,
        base: &DesignState,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
        ctl: &RunCtl<'_>,
    ) -> Result<SynthesisResult, CoreError> {
        self.params.validate()?;
        let mut state = base.fork();
        let mut merge_log: Vec<String> = Vec::new();

        for iteration in 0..self.params.max_merges {
            if ctl.cancel.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            ctl.progress.event(ProgressEvent::Iteration {
                iteration,
                merges: merge_log.len(),
            });
            let etpn = state.lower()?;
            // The baseline analysis goes through the shared engine (a
            // hit after iteration 1: the committed trial of iteration i
            // is re-lowered as the baseline of i+1) and becomes the
            // anchor that candidate misses re-analyze incrementally
            // from — each candidate differs from it by one merge cone.
            let analysis = state.testability_engine().analyze(etpn.data_path());
            state.testability_engine().set_anchor(etpn.data_path(), &analysis);
            let mut candidates = enumerate_candidates(&state, &etpn, &analysis);
            if candidates.is_empty() {
                break;
            }
            if self.params.selection_policy == SelectionPolicy::Arbitrary {
                candidates.sort_by_key(|c| match c.kind {
                    MergeKind::Modules(a, b) => (0u8, a.index(), b.index()),
                    MergeKind::Registers(a, b) => (1u8, a.index(), b.index()),
                });
            }
            // The baseline (E, H) goes through the evaluator too: after
            // the first iteration this is a cache hit (the committed
            // trial of iteration i is the baseline of iteration i+1).
            let (e0_steps, h0) = evaluator.eval(&state, self.params.bits, &self.params.library)?;
            let e0 = e0_steps as f64;

            let mut committed = false;
            for chunk in candidates.chunks(self.params.k.max(1)) {
                if let Some((dc, kind)) = self.best_in_chunk(&mut state, chunk, e0, h0, mode, evaluator) {
                    if dc <= self.params.accept_threshold {
                        // Re-apply the winning trial and commit it. The
                        // merge machinery is deterministic, so this
                        // reproduces the priced trial bit for bit — and
                        // cheaply: the reschedule and the testability /
                        // ΔC analyses all resolve from caches warmed by
                        // the trial itself.
                        self.apply_winner(&mut state, kind)?;
                        // Only now is the label worth building: trial
                        // candidates that lose or miss the threshold
                        // never reach the log.
                        let desc = merge_description(&state, kind);
                        merge_log.push(format!("{desc} (ΔC = {dc:+.4})"));
                        committed = true;
                        break;
                    }
                }
            }
            if !committed {
                break;
            }
        }

        debug_assert!(state.validate().is_ok());
        SynthesisResult::from_state(state, self.params.bits, &self.params.library, merge_log)
    }

    /// [`run_on_ctl`](Self::run_on_ctl) with trace capture and optional
    /// warm-start replay — the design-space-exploration entry point.
    ///
    /// The returned [`MergeTrace`] records every iteration's evaluated
    /// `(ΔE, ΔH)` price prefix and committed winner. When `seed` holds
    /// the trace of an already-synthesized neighbour point (same
    /// behavior, different `α`/`β`/`k`), each seed entry is re-priced
    /// under *this* run's weights with plain arithmetic — the parts are
    /// weight-independent — and committed through a [`StateTxn`] while
    /// it is still exactly the merge Algorithm 1 would pick, guarded by
    /// the recorded post-merge fingerprint (plus a full audit in debug
    /// builds). At the first divergence — a different winner, a price
    /// prefix too short to decide, a fingerprint mismatch — the run
    /// falls back to scratch synthesis from the current state, which is
    /// bit-identical to the scratch trajectory at that iteration.
    ///
    /// Replay changes *work, never results*: with any seed (or none)
    /// the [`SynthesisResult`] is bit-identical to
    /// [`run_on_ctl`](Self::run_on_ctl); only the
    /// [`ReplayStats`] split between replayed and recomputed merges
    /// varies.
    ///
    /// # Errors
    ///
    /// As [`run_on_ctl`](Self::run_on_ctl).
    pub fn run_on_warm(
        &self,
        base: &DesignState,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
        ctl: &RunCtl<'_>,
        seed: Option<&MergeTrace>,
    ) -> Result<WarmSynthesis, CoreError> {
        self.params.validate()?;
        let k = self.params.k.max(1);
        let mut state = base.fork();
        let mut merge_log: Vec<String> = Vec::new();
        let mut trace = MergeTrace::default();
        let mut replay = ReplayStats::default();
        // Replay cursor into the seed; `live` drops to false at the
        // first divergence (or exhaustion) and never recovers — the
        // scratch loop owns every later iteration.
        let mut cursor = 0usize;
        let mut live = seed.is_some();
        let mut converged = false;

        for iteration in 0..self.params.max_merges {
            if ctl.cancel.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            ctl.progress.event(ProgressEvent::Iteration {
                iteration,
                merges: merge_log.len(),
            });

            // Fast path: re-take the seed's decision from its recorded
            // prices — no lowering, no analysis, no enumeration, no
            // trial transactions.
            if live {
                let entry = seed.and_then(|s| s.entries.get(cursor));
                match entry.and_then(|e| self.replay_entry(&mut state, e)) {
                    Some(ReplayStep::Commit { kind, dc, entry }) => {
                        cursor += 1;
                        let desc = merge_description(&state, kind);
                        merge_log.push(format!("{desc} (ΔC = {dc:+.4})"));
                        trace.entries.push(entry);
                        replay.replayed += 1;
                        continue;
                    }
                    Some(ReplayStep::Done(entry)) => {
                        trace.entries.push(entry);
                        converged = true;
                        break;
                    }
                    None => live = false, // diverged/exhausted: scratch from here
                }
            }

            // Scratch path: the exact `run_on_ctl` iteration, capturing
            // the (ΔE, ΔH) parts it prices anyway. ΔC is computed from
            // the identical float expression, so decisions — and
            // therefore results — are bit-identical.
            let etpn = state.lower()?;
            let analysis = state.testability_engine().analyze(etpn.data_path());
            state.testability_engine().set_anchor(etpn.data_path(), &analysis);
            let mut candidates = enumerate_candidates(&state, &etpn, &analysis);
            if candidates.is_empty() {
                trace.entries.push(TraceEntry {
                    winner: None,
                    total: 0,
                    prices: Vec::new(),
                });
                converged = true;
                break;
            }
            if self.params.selection_policy == SelectionPolicy::Arbitrary {
                candidates.sort_by_key(|c| match c.kind {
                    MergeKind::Modules(a, b) => (0u8, a.index(), b.index()),
                    MergeKind::Registers(a, b) => (1u8, a.index(), b.index()),
                });
            }
            let (e0_steps, h0) = evaluator.eval(&state, self.params.bits, &self.params.library)?;
            let e0 = e0_steps as f64;

            let mut committed = false;
            let mut prices: Vec<Option<(f64, f64)>> = Vec::new();
            for (ci, chunk) in candidates.chunks(k).enumerate() {
                let parts = self.eval_chunk_parts(&mut state, chunk, e0, h0, mode, evaluator);
                let best = self.reduce_chunk(&parts);
                prices.extend(parts);
                if let Some((dc, local)) = best {
                    if dc <= self.params.accept_threshold {
                        let kind = chunk[local].kind;
                        let (sym_a, sym_b) = merge_symbols(&state, kind);
                        self.apply_winner(&mut state, kind)?;
                        let fingerprint = DeltaEvaluator::fingerprint(&state);
                        let desc = merge_description(&state, kind);
                        merge_log.push(format!("{desc} (ΔC = {dc:+.4})"));
                        trace.entries.push(TraceEntry {
                            winner: Some(TraceWinner {
                                kind: trace_kind(kind),
                                sym_a,
                                sym_b,
                                index: ci * k + local,
                                fingerprint,
                            }),
                            total: candidates.len(),
                            prices: std::mem::take(&mut prices),
                        });
                        replay.recomputed += 1;
                        committed = true;
                        break;
                    }
                }
            }
            if !committed {
                trace.entries.push(TraceEntry {
                    winner: None,
                    total: candidates.len(),
                    prices,
                });
                converged = true;
                break;
            }
        }
        // A run cut short by the iteration cap carries no terminal
        // entry; replaying such a trace simply exhausts the seed.
        let _ = converged;

        debug_assert!(state.validate().is_ok());
        let result =
            SynthesisResult::from_state(state, self.params.bits, &self.params.library, merge_log)?;
        Ok(WarmSynthesis {
            result,
            trace,
            replay,
        })
    }

    /// Re-take one recorded iteration's decision on the current state.
    ///
    /// Scans the recorded candidate prices in shortlist order, chunked
    /// by *this* run's `k`, re-weighting each `(ΔE, ΔH)` pair with the
    /// identical float expression the scratch loop uses. Returns
    /// `None` — diverged, fall back to scratch — when the re-priced
    /// winner differs from the recorded one, when a chunk extends past
    /// the recorded price prefix before any winner qualifies, or when
    /// applying the recorded merge fails its fingerprint check.
    fn replay_entry(&self, state: &mut DesignState, entry: &TraceEntry) -> Option<ReplayStep> {
        let k = self.params.k.max(1);
        let covered = entry.prices.len().min(entry.total);
        let mut start = 0usize;
        while start < entry.total {
            let end = (start + k).min(entry.total);
            if end > covered {
                // The recorded run stopped pricing here; this run's
                // chunking needs candidates it never evaluated.
                return None;
            }
            if let Some((dc, local)) = self.reduce_chunk(&entry.prices[start..end]) {
                if dc <= self.params.accept_threshold {
                    let winner = entry.winner.as_ref()?;
                    if winner.index != start + local {
                        return None; // the new weights pick a different merge
                    }
                    return self.replay_commit(state, winner, dc, entry);
                }
            }
            start = end;
        }
        // Every candidate is priced and none qualifies under the new
        // weights: the run terminates at this iteration.
        Some(ReplayStep::Done(TraceEntry {
            winner: None,
            total: entry.total,
            prices: entry.prices.clone(),
        }))
    }

    /// Apply a replayed winner through a transaction, committing only
    /// when the post-merge state matches the recorded fingerprint
    /// (audited in full in debug builds); any failure rolls back
    /// bit-identically and reports divergence.
    fn replay_commit(
        &self,
        state: &mut DesignState,
        winner: &TraceWinner,
        dc: f64,
        entry: &TraceEntry,
    ) -> Option<ReplayStep> {
        let kind = resolve_winner(state, winner)?;
        {
            let mut txn = StateTxn::begin(state);
            if apply_merge(&mut txn, kind, self.params.order_strategy).is_err() {
                return None; // txn drop rolls back
            }
            if DeltaEvaluator::fingerprint(txn.state()) != winner.fingerprint {
                return None; // txn drop rolls back
            }
            #[cfg(debug_assertions)]
            {
                let s = txn.state();
                let report = hlts_check::audit_design(&s.dfg, &s.schedule, &s.allocation);
                debug_assert!(report.is_clean(), "replayed merge failed the audit:\n{report}");
            }
            txn.commit();
        }
        Some(ReplayStep::Commit {
            kind,
            dc,
            entry: entry.clone(),
        })
    }

    /// The shared chunk reduction over `(ΔE, ΔH)` parts: weight each
    /// feasible candidate into ΔC = α·ΔE + β·ΔH and keep the strictly
    /// smallest (earliest index on ties) — the float-identical twin of
    /// the `Option<f64>` fold in [`best_in_chunk`](Self::best_in_chunk).
    /// Returns the winning ΔC and its index *within the chunk*.
    fn reduce_chunk(&self, parts: &[Option<(f64, f64)>]) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, entry) in parts.iter().enumerate() {
            let Some((de, dh)) = entry else { continue };
            let dc = self.params.alpha * de + self.params.beta * dh;
            if best
                .as_ref()
                .is_none_or(|(b, _)| dc.total_cmp(b) == std::cmp::Ordering::Less)
            {
                best = Some((dc, i));
            }
        }
        best
    }

    /// Tentatively apply each candidate of `chunk` (apply → price →
    /// rollback; `state` is bit-identical on return); return the
    /// smallest-ΔC applicable merge (ties keep the earliest shortlist
    /// position, in both modes).
    fn best_in_chunk(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Option<(f64, MergeKind)> {
        let evaluated: Vec<Option<f64>> = match mode {
            EvalMode::Sequential => chunk
                .iter()
                .map(|cand| self.eval_candidate(state, cand, e0, h0, evaluator))
                .collect(),
            EvalMode::Parallel => self.eval_chunk_parallel(state, chunk, e0, h0, evaluator),
        };
        // Deterministic reduction: strictly-smaller ΔC wins, so the
        // earliest shortlist index is kept on ties — exactly the
        // sequential fold regardless of evaluation order.
        let mut best: Option<(f64, MergeKind)> = None;
        for (entry, cand) in evaluated.into_iter().zip(chunk) {
            let Some(dc) = entry else { continue };
            // total_cmp: a NaN price (impossible with validated params,
            // defensive against a degenerate library) sorts above every
            // real ΔC instead of vacuously losing every comparison.
            if best
                .as_ref()
                .is_none_or(|(b, _)| dc.total_cmp(b) == std::cmp::Ordering::Less)
            {
                best = Some((dc, cand.kind));
            }
        }
        best
    }

    /// Commit the winning merge of an iteration onto `state`.
    fn apply_winner(&self, state: &mut DesignState, kind: MergeKind) -> Result<(), CoreError> {
        match kind {
            MergeKind::Modules(a, b) => {
                merge_modules_with_resched_using(state, a, b, self.params.order_strategy)
            }
            MergeKind::Registers(a, b) => {
                merge_registers_with_resched_using(state, a, b, self.params.order_strategy)
            }
        }
    }

    /// Evaluate one candidate against the baseline (`e0`, `h0`):
    /// tentatively apply it in place (merge + merge-sort rescheduling,
    /// which re-runs the lifetime checks), price ΔC through the shared
    /// evaluator, and roll the transaction back. `None` if the merger is
    /// infeasible. The human-readable description is *not* built here —
    /// only the committed winner ever needs one (see
    /// [`merge_description`]).
    fn eval_candidate(
        &self,
        state: &mut DesignState,
        cand: &MergeCandidate,
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Option<f64> {
        trial_merge(state, cand.kind, self.params.order_strategy, |trial| {
            let (e1, h1) = evaluator
                .eval(trial, self.params.bits, &self.params.library)
                .ok()?;
            Some(self.params.alpha * (e1 as f64 - e0) + self.params.beta * (h1 - h0))
        })
    }

    /// [`eval_candidate`](Self::eval_candidate) returning the raw
    /// weight-independent `(ΔE, ΔH)` parts instead of their weighted
    /// sum — the capture path of warm-start traces. Weighting the parts
    /// afterwards (`α·ΔE + β·ΔH` on the already-subtracted deltas)
    /// performs the identical float operations in the identical order,
    /// so the two paths price every candidate bit-identically.
    fn eval_candidate_parts(
        &self,
        state: &mut DesignState,
        cand: &MergeCandidate,
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Option<(f64, f64)> {
        trial_merge(state, cand.kind, self.params.order_strategy, |trial| {
            let (e1, h1) = evaluator
                .eval(trial, self.params.bits, &self.params.library)
                .ok()?;
            Some((e1 as f64 - e0, h1 - h0))
        })
    }

    /// Evaluate a shortlist chunk on scoped threads (one per candidate;
    /// `k` is small). Each thread runs its transaction on a private
    /// [`DesignState::fork`] of the base state — a cheap copy sharing
    /// the graph core, testability engine and counters — so the in-place
    /// trials never contend. Results come back in shortlist order, so
    /// the reduction in [`best_in_chunk`](Self::best_in_chunk) is
    /// unaffected by thread completion order.
    #[cfg(feature = "parallel")]
    fn eval_chunk_parallel(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<f64>> {
        if chunk.len() < 2 {
            return chunk
                .iter()
                .map(|cand| self.eval_candidate(state, cand, e0, h0, evaluator))
                .collect();
        }
        let base = &*state;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|cand| {
                    scope.spawn(move || {
                        let mut local = base.fork();
                        self.eval_candidate(&mut local, cand, e0, h0, evaluator)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(dc) => dc,
                    // Propagate the worker's panic payload on the
                    // calling thread: identical observable behavior to
                    // the sequential path, without asserting it can't
                    // happen.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }

    /// Sequential stand-in when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    fn eval_chunk_parallel(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<f64>> {
        chunk
            .iter()
            .map(|cand| self.eval_candidate(state, cand, e0, h0, evaluator))
            .collect()
    }

    /// Chunk evaluation for the capture path: the `(ΔE, ΔH)` twin of
    /// the scalar chunk evaluators, honoring `mode` with the same
    /// scoped-thread strategy (results in shortlist order either way).
    fn eval_chunk_parts(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<(f64, f64)>> {
        match mode {
            EvalMode::Sequential => chunk
                .iter()
                .map(|cand| self.eval_candidate_parts(state, cand, e0, h0, evaluator))
                .collect(),
            EvalMode::Parallel => self.eval_chunk_parts_parallel(state, chunk, e0, h0, evaluator),
        }
    }

    /// Scoped-thread `(ΔE, ΔH)` chunk evaluation (see
    /// [`eval_chunk_parallel`](Self::eval_chunk_parallel) for the
    /// forking/ordering contract).
    #[cfg(feature = "parallel")]
    fn eval_chunk_parts_parallel(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<(f64, f64)>> {
        if chunk.len() < 2 {
            return chunk
                .iter()
                .map(|cand| self.eval_candidate_parts(state, cand, e0, h0, evaluator))
                .collect();
        }
        let base = &*state;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|cand| {
                    scope.spawn(move || {
                        let mut local = base.fork();
                        self.eval_candidate_parts(&mut local, cand, e0, h0, evaluator)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(parts) => parts,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }

    /// Sequential stand-in when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    fn eval_chunk_parts_parallel(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<(f64, f64)>> {
        chunk
            .iter()
            .map(|cand| self.eval_candidate_parts(state, cand, e0, h0, evaluator))
            .collect()
    }
}

/// A completed warm-capable synthesis run: the result (bit-identical to
/// the classic loop), the accepted-merge trace it recorded, and how its
/// commits split between replay and scratch work.
#[derive(Debug)]
pub struct WarmSynthesis {
    /// The synthesized design, exactly as
    /// [`run_on_ctl`](IntegratedSynthesizer::run_on_ctl) would produce.
    pub result: SynthesisResult,
    /// This run's own accepted-merge trace — a valid seed for the next
    /// neighbour, whether the run replayed or recomputed.
    pub trace: MergeTrace,
    /// Replayed vs recomputed commit counts.
    pub replay: ReplayStats,
}

/// Internal verdict of one replayed seed entry.
enum ReplayStep {
    /// The recorded merge is still the winner; it was applied and
    /// committed.
    Commit {
        kind: MergeKind,
        dc: f64,
        entry: TraceEntry,
    },
    /// Every candidate is priced and none qualifies: the run terminates
    /// with this (re-derived) terminal entry.
    Done(TraceEntry),
}

/// Map a live [`MergeKind`] onto its trace tag.
fn trace_kind(kind: MergeKind) -> TraceMergeKind {
    match kind {
        MergeKind::Modules(..) => TraceMergeKind::Modules,
        MergeKind::Registers(..) => TraceMergeKind::Registers,
    }
}

/// Capture the stable operand symbols of a winner on the *pre-merge*
/// state: the first op name (modules) or first value name (registers)
/// of each side. Empty strings — impossible for a live winner — simply
/// never resolve at replay time, forcing a safe divergence.
fn merge_symbols(state: &DesignState, kind: MergeKind) -> (String, String) {
    let module_sym = |m| {
        state
            .allocation
            .module(m)
            .and_then(|x| x.ops().first())
            .map(|&o| state.dfg.op(o).name().to_owned())
            .unwrap_or_default()
    };
    let register_sym = |r| {
        state
            .allocation
            .register(r)
            .and_then(|x| x.values().first())
            .map(|&v| state.dfg.value(v).name().to_owned())
            .unwrap_or_default()
    };
    match kind {
        MergeKind::Modules(a, b) => (module_sym(a), module_sym(b)),
        MergeKind::Registers(a, b) => (register_sym(a), register_sym(b)),
    }
}

/// Resolve a recorded winner's symbols against the current state. The
/// replayed trajectory is bit-identical to the recorded one up to this
/// entry, so the op/value named at capture time lives in exactly the
/// module/register the recorder merged; `None` (unknown symbol, dead
/// register, or both symbols landing in one unit) reports divergence.
fn resolve_winner(state: &DesignState, winner: &TraceWinner) -> Option<MergeKind> {
    match winner.kind {
        TraceMergeKind::Modules => {
            let a = state.allocation.module_of(state.dfg.op_by_name(&winner.sym_a)?);
            let b = state.allocation.module_of(state.dfg.op_by_name(&winner.sym_b)?);
            (a != b).then_some(MergeKind::Modules(a, b))
        }
        TraceMergeKind::Registers => {
            let a = state
                .allocation
                .register_of(state.dfg.value_by_name(&winner.sym_a)?)?;
            let b = state
                .allocation
                .register_of(state.dfg.value_by_name(&winner.sym_b)?)?;
            (a != b).then_some(MergeKind::Registers(a, b))
        }
    }
}

/// The merge-log label for a committed merge, reconstructed from the
/// post-merge state: the surviving module's op names (or register's
/// value names), comma-joined in binding order. Shared with the clone
/// oracle so both paths produce byte-identical logs.
pub(crate) fn merge_description(state: &DesignState, kind: MergeKind) -> String {
    match kind {
        MergeKind::Modules(a, _) => {
            let label = state
                .allocation
                .module(a)
                .map(|m| {
                    m.ops()
                        .iter()
                        .map(|&o| state.dfg.op(o).name().to_owned())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            format!("merge modules -> {{{label}}}")
        }
        MergeKind::Registers(a, _) => {
            let label = state
                .allocation
                .register(a)
                .map(|r| {
                    r.values()
                        .iter()
                        .map(|&v| state.dfg.value(v).name().to_owned())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            format!("merge registers -> {{{label}}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let t3 = b.op("N3", OpKind::Mul, &[t1, t2], "t3").unwrap();
        let y = b.op("N4", OpKind::Sub, &[t3, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn run_produces_valid_compacted_design() {
        let d = small();
        let r = IntegratedSynthesizer::new(SynthesisParams::default())
            .run(&d)
            .unwrap();
        r.schedule.validate(&r.dfg).unwrap();
        r.schedule
            .validate_groups(&r.dfg, &r.allocation.conflict_groups())
            .unwrap();
        // registers must have merged below one-per-value
        assert!(r.allocation.num_registers() < 6);
        assert!(!r.merge_log.is_empty());
    }

    #[test]
    fn deterministic() {
        let d = small();
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let r1 = synth.run(&d).unwrap();
        let r2 = synth.run(&d).unwrap();
        assert_eq!(r1.allocation, r2.allocation);
        assert_eq!(r1.schedule, r2.schedule);
    }

    #[test]
    fn alpha_dominant_preserves_latency() {
        let d = small();
        let params = SynthesisParams {
            alpha: 1000.0,
            beta: 1.0,
            ..SynthesisParams::default()
        };
        let r = IntegratedSynthesizer::new(params).run(&d).unwrap();
        // with latency sacrosanct, the schedule stays at the critical path
        assert_eq!(r.metrics.execution_time, 4);
    }

    #[test]
    fn beta_dominant_compacts_harder() {
        let d = small();
        let lean = IntegratedSynthesizer::new(SynthesisParams {
            alpha: 0.01,
            beta: 100.0,
            ..SynthesisParams::default()
        })
        .run(&d)
        .unwrap();
        let tight = IntegratedSynthesizer::new(SynthesisParams {
            alpha: 1000.0,
            beta: 1.0,
            ..SynthesisParams::default()
        })
        .run(&d)
        .unwrap();
        let lean_units = lean.allocation.num_modules() + lean.allocation.num_registers();
        let tight_units = tight.allocation.num_modules() + tight.allocation.num_registers();
        assert!(lean_units <= tight_units);
    }

    #[test]
    fn paper_defaults_choose_by_bits() {
        assert_eq!(SynthesisParams::paper_defaults(4).alpha, 2.0);
        assert_eq!(SynthesisParams::paper_defaults(8).alpha, 10.0);
        assert_eq!(SynthesisParams::paper_defaults(16).beta, 10.0);
    }

    #[test]
    fn warm_capture_is_bit_identical_to_the_classic_loop() {
        let d = small();
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let base = DesignState::initial(&d).unwrap();
        let ev = DeltaEvaluator::new();
        let cold = synth
            .run_on_ctl(&base, EvalMode::Sequential, &ev, &RunCtl::none())
            .unwrap();
        let warm = synth
            .run_on_warm(&base, EvalMode::Sequential, &ev, &RunCtl::none(), None)
            .unwrap();
        assert_eq!(warm.result.schedule, cold.schedule);
        assert_eq!(warm.result.allocation, cold.allocation);
        assert_eq!(warm.result.merge_log, cold.merge_log);
        assert_eq!(warm.replay.replayed, 0);
        assert_eq!(warm.replay.recomputed, cold.merge_log.len());
        // converged runs end in a terminal entry
        assert_eq!(warm.trace.entries.len(), cold.merge_log.len() + 1);
        assert!(warm.trace.entries.last().unwrap().winner.is_none());
    }

    #[test]
    fn same_point_replays_fully_and_identically() {
        let d = small();
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let base = DesignState::initial(&d).unwrap();
        let ev = DeltaEvaluator::new();
        let first = synth
            .run_on_warm(&base, EvalMode::Sequential, &ev, &RunCtl::none(), None)
            .unwrap();
        let again = synth
            .run_on_warm(
                &base,
                EvalMode::Sequential,
                &ev,
                &RunCtl::none(),
                Some(&first.trace),
            )
            .unwrap();
        assert_eq!(again.result.schedule, first.result.schedule);
        assert_eq!(again.result.allocation, first.result.allocation);
        assert_eq!(again.result.merge_log, first.result.merge_log);
        assert_eq!(again.replay.recomputed, 0, "identical weights never diverge");
        assert_eq!(again.replay.replayed, first.result.merge_log.len());
        assert_eq!(again.trace, first.trace, "the replayed trace re-records itself");
    }

    #[test]
    fn divergent_weights_replay_and_fall_back_bit_identically() {
        let d = small();
        let base = DesignState::initial(&d).unwrap();
        let ev = DeltaEvaluator::new();
        let seed = IntegratedSynthesizer::new(SynthesisParams::default())
            .run_on_warm(&base, EvalMode::Sequential, &ev, &RunCtl::none(), None)
            .unwrap();
        // A grid of neighbours, including weights that walk a different
        // trajectory: warm output must equal the cold loop on every one.
        for (alpha, beta, k) in [
            (2.0, 1.0, 3),
            (2.5, 1.0, 3),
            (10.0, 1.0, 3),
            (0.01, 100.0, 3),
            (1.0, 10.0, 2),
            (2.0, 1.0, 1),
        ] {
            let synth = IntegratedSynthesizer::new(SynthesisParams {
                k,
                alpha,
                beta,
                ..SynthesisParams::default()
            });
            let cold = synth
                .run_on_ctl(&base, EvalMode::Sequential, &ev, &RunCtl::none())
                .unwrap();
            let warm = synth
                .run_on_warm(
                    &base,
                    EvalMode::Sequential,
                    &ev,
                    &RunCtl::none(),
                    Some(&seed.trace),
                )
                .unwrap();
            assert_eq!(
                warm.result.schedule, cold.schedule,
                "(α={alpha}, β={beta}, k={k})"
            );
            assert_eq!(warm.result.allocation, cold.allocation);
            assert_eq!(warm.result.merge_log, cold.merge_log);
            assert_eq!(
                warm.replay.replayed + warm.replay.recomputed,
                cold.merge_log.len()
            );
        }
    }
}
