//! Algorithm 1: the iterative integrated synthesis loop.

use hlts_cost::ModuleLibrary;
use hlts_dfg::Dfg;

use crate::candidates::{enumerate_candidates, MergeCandidate, MergeKind};
use crate::delta_eval::DeltaEvaluator;
use crate::resched::{
    merge_modules_with_resched_using, merge_registers_with_resched_using, OrderStrategy,
};
use crate::txn::trial_merge;
use crate::{CoreError, DesignState, ProgressEvent, RunCtl, SynthesisResult};

/// How the *k* shortlisted candidates of each iteration are evaluated.
///
/// Both modes produce **bit-identical** results: each candidate trial
/// is applied and rolled back through the transaction journal (in
/// sequential mode in place on the base state, in parallel mode on a
/// per-thread [`DesignState::fork`]), every trial therefore prices the
/// identical post-merge design, and the winner is reduced by
/// (ΔC, shortlist index) — exactly the sequential first-strictly-smaller
/// rule. The parallel mode merely computes the trials on scoped threads
/// sharing one [`DeltaEvaluator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Evaluate candidates one at a time on the calling thread.
    #[cfg_attr(not(feature = "parallel"), default)]
    Sequential,
    /// Evaluate each shortlist chunk's candidates on scoped threads.
    /// Without the `parallel` cargo feature this mode still exists but
    /// behaves exactly like [`EvalMode::Sequential`].
    #[cfg_attr(feature = "parallel", default)]
    Parallel,
}

/// The user parameters of the synthesis algorithm.
///
/// `k`, `alpha` (α) and `beta` (β) are the paper's knobs: each iteration
/// shortlists the `k` most balance-complementary merge pairs, then
/// commits the one with the smallest ΔC = α·ΔE + β·ΔH. "A small value
/// of k means that more emphasis is placed on improving the testability
/// measure."
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisParams {
    /// Shortlist size per iteration (paper's `k`).
    pub k: usize,
    /// Weight of the incremental execution time ΔE (control steps).
    pub alpha: f64,
    /// Weight of the incremental hardware cost ΔH (area units).
    pub beta: f64,
    /// Data-path bit width used for area estimation.
    pub bits: u32,
    /// The module library pricing ΔH.
    pub library: ModuleLibrary,
    /// A merge commits only when its ΔC does not exceed this threshold.
    /// The paper iterates "until no merger exists"; with the default
    /// threshold 0 that reading becomes *until no merger improves the
    /// weighted cost*, which is what terminates the loop short of a
    /// single-ALU design.
    pub accept_threshold: f64,
    /// Hard cap on committed mergers (defensive; never reached by the
    /// benchmarks).
    pub max_merges: usize,
    /// How free ordering decisions inside mergers are resolved. The
    /// paper's strategy is [`OrderStrategy::CoEnhancement`] (SR2);
    /// [`OrderStrategy::CriticalPath`] ablates the testability steering
    /// while keeping the rest of Algorithm 1 intact.
    pub order_strategy: OrderStrategy,
    /// How the per-iteration candidate shortlist is ranked. The paper's
    /// principle is [`SelectionPolicy::CoBalance`] (§3);
    /// [`SelectionPolicy::Arbitrary`] ablates it (stable id order), so
    /// ΔC alone drives the merge choice.
    pub selection_policy: SelectionPolicy,
}

/// How merge candidates are ranked before the k-chunked ΔC evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// The paper's controllability/observability balance principle.
    #[default]
    CoBalance,
    /// Deterministic but testability-blind order (ablation).
    Arbitrary,
}

impl Default for SynthesisParams {
    fn default() -> Self {
        SynthesisParams {
            k: 3,
            alpha: 2.0,
            beta: 1.0,
            bits: 8,
            library: ModuleLibrary::new(),
            accept_threshold: 1e-9,
            max_merges: 10_000,
            order_strategy: OrderStrategy::CoEnhancement,
            selection_policy: SelectionPolicy::CoBalance,
        }
    }
}

impl SynthesisParams {
    /// The parameter sets the paper reports for its main experiments:
    /// `(k, α, β)` = (3, 2, 1), (3, 10, 1) and (3, 1, 10) for 4-, 8- and
    /// 16-bit implementations respectively.
    #[must_use]
    pub fn paper_defaults(bits: u32) -> Self {
        let (alpha, beta) = match bits {
            0..=4 => (2.0, 1.0),
            5..=8 => (10.0, 1.0),
            _ => (1.0, 10.0),
        };
        SynthesisParams {
            k: 3,
            alpha,
            beta,
            bits,
            ..SynthesisParams::default()
        }
    }

    /// Check the parameters are usable: `k >= 1` and finite,
    /// non-negative `alpha`/`beta`. Every library entry point calls
    /// this before any work starts, so embedders get an
    /// [`CoreError::InvalidParams`] instead of a silently corrupted
    /// ΔC = α·ΔE + β·ΔH ordering (NaN weights would make every
    /// comparison vacuous) or a degenerate shortlist.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParams`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::InvalidParams("k must be >= 1".into()));
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("accept_threshold", self.accept_threshold),
        ] {
            if !v.is_finite() {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be finite (got {v})"
                )));
            }
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if v < 0.0 {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be non-negative (got {v})"
                )));
            }
        }
        Ok(())
    }
}

/// The integrated scheduling/allocation test synthesizer (Algorithm 1).
#[derive(Debug, Clone)]
pub struct IntegratedSynthesizer {
    params: SynthesisParams,
}

impl IntegratedSynthesizer {
    /// Create a synthesizer with the given parameters.
    #[must_use]
    pub fn new(params: SynthesisParams) -> Self {
        IntegratedSynthesizer { params }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &SynthesisParams {
        &self.params
    }

    /// Run Algorithm 1 on `dfg`.
    ///
    /// Each iteration: run the testability analysis, shortlist the `k`
    /// most C/O-complementary merge pairs, estimate ΔE (critical path of
    /// the control Petri net) and ΔH (floorplanned area) for each by
    /// tentatively applying it (merge + merge-sort rescheduling with the
    /// SR1/SR2 strategy), and commit the pair with the smallest
    /// ΔC = α·ΔE + β·ΔH if it meets the acceptance threshold. When no
    /// pair in the shortlist qualifies, the next `k` candidates are
    /// examined, so the loop only stops when *no* merger qualifies.
    ///
    /// # Errors
    ///
    /// Only construction-level failures (cyclic input graph, inconsistent
    /// state) are errors; rejected mergers are part of normal operation.
    pub fn run(&self, dfg: &Dfg) -> Result<SynthesisResult, CoreError> {
        self.run_mode(dfg, EvalMode::default())
    }

    /// Run Algorithm 1 with an explicit candidate-evaluation mode (see
    /// [`EvalMode`]; results are bit-identical across modes).
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run).
    pub fn run_mode(&self, dfg: &Dfg, mode: EvalMode) -> Result<SynthesisResult, CoreError> {
        self.run_mode_with(dfg, mode, &DeltaEvaluator::new())
    }

    /// Run Algorithm 1 with an explicit mode and a caller-owned
    /// [`DeltaEvaluator`], whose cache statistics can be inspected
    /// afterwards. The evaluator must not have been used with a
    /// different graph, bit width or library (its cache is keyed on
    /// (schedule, binding) only).
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run).
    pub fn run_mode_with(
        &self,
        dfg: &Dfg,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Result<SynthesisResult, CoreError> {
        self.run_on(&DesignState::initial(dfg)?, mode, evaluator)
    }

    /// Run Algorithm 1 starting from a caller-owned base state, which is
    /// forked (not mutated): the run shares the base's graph core,
    /// [`TestabilityEngine`](hlts_testability::TestabilityEngine) and
    /// transaction counters, plus the given evaluator's (E, H) cache.
    ///
    /// This is the batch entry point: a design-space sweep builds one
    /// base state and one evaluator per behavior and runs every
    /// parameter point through them, so structurally identical trial
    /// states met by different points resolve from the shared caches.
    /// Sharing never changes a result — both caches are keyed on
    /// content (structure / schedule+binding), and the engine's anchor
    /// only steers *how* misses are computed — so concurrent runs on
    /// forks of one base are bit-identical to isolated runs.
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run).
    pub fn run_on(
        &self,
        base: &DesignState,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Result<SynthesisResult, CoreError> {
        self.run_on_ctl(base, mode, evaluator, &RunCtl::none())
    }

    /// [`run_on`](Self::run_on) under an external [`RunCtl`]: the
    /// job-engine entry point. The cancel token is checked once per
    /// iteration — between transactions, never inside one — so a fired
    /// token surfaces as [`CoreError::Cancelled`] with no partially
    /// applied merge behind it, and a token that never fires leaves the
    /// run **bit-identical** to [`run_on`](Self::run_on) (the check is
    /// one relaxed atomic load; nothing else differs). One
    /// [`ProgressEvent::Iteration`] streams to the sink per iteration.
    ///
    /// # Errors
    ///
    /// As [`run`](IntegratedSynthesizer::run), plus
    /// [`CoreError::Cancelled`] when `ctl.cancel` fires.
    pub fn run_on_ctl(
        &self,
        base: &DesignState,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
        ctl: &RunCtl<'_>,
    ) -> Result<SynthesisResult, CoreError> {
        self.params.validate()?;
        let mut state = base.fork();
        let mut merge_log: Vec<String> = Vec::new();

        for iteration in 0..self.params.max_merges {
            if ctl.cancel.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            ctl.progress.event(ProgressEvent::Iteration {
                iteration,
                merges: merge_log.len(),
            });
            let etpn = state.lower()?;
            // The baseline analysis goes through the shared engine (a
            // hit after iteration 1: the committed trial of iteration i
            // is re-lowered as the baseline of i+1) and becomes the
            // anchor that candidate misses re-analyze incrementally
            // from — each candidate differs from it by one merge cone.
            let analysis = state.testability_engine().analyze(etpn.data_path());
            state.testability_engine().set_anchor(etpn.data_path(), &analysis);
            let mut candidates = enumerate_candidates(&state, &etpn, &analysis);
            if candidates.is_empty() {
                break;
            }
            if self.params.selection_policy == SelectionPolicy::Arbitrary {
                candidates.sort_by_key(|c| match c.kind {
                    MergeKind::Modules(a, b) => (0u8, a.index(), b.index()),
                    MergeKind::Registers(a, b) => (1u8, a.index(), b.index()),
                });
            }
            // The baseline (E, H) goes through the evaluator too: after
            // the first iteration this is a cache hit (the committed
            // trial of iteration i is the baseline of iteration i+1).
            let (e0_steps, h0) = evaluator.eval(&state, self.params.bits, &self.params.library)?;
            let e0 = e0_steps as f64;

            let mut committed = false;
            for chunk in candidates.chunks(self.params.k.max(1)) {
                if let Some((dc, kind)) = self.best_in_chunk(&mut state, chunk, e0, h0, mode, evaluator) {
                    if dc <= self.params.accept_threshold {
                        // Re-apply the winning trial and commit it. The
                        // merge machinery is deterministic, so this
                        // reproduces the priced trial bit for bit — and
                        // cheaply: the reschedule and the testability /
                        // ΔC analyses all resolve from caches warmed by
                        // the trial itself.
                        self.apply_winner(&mut state, kind)?;
                        // Only now is the label worth building: trial
                        // candidates that lose or miss the threshold
                        // never reach the log.
                        let desc = merge_description(&state, kind);
                        merge_log.push(format!("{desc} (ΔC = {dc:+.4})"));
                        committed = true;
                        break;
                    }
                }
            }
            if !committed {
                break;
            }
        }

        debug_assert!(state.validate().is_ok());
        SynthesisResult::from_state(state, self.params.bits, &self.params.library, merge_log)
    }

    /// Tentatively apply each candidate of `chunk` (apply → price →
    /// rollback; `state` is bit-identical on return); return the
    /// smallest-ΔC applicable merge (ties keep the earliest shortlist
    /// position, in both modes).
    fn best_in_chunk(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        mode: EvalMode,
        evaluator: &DeltaEvaluator,
    ) -> Option<(f64, MergeKind)> {
        let evaluated: Vec<Option<f64>> = match mode {
            EvalMode::Sequential => chunk
                .iter()
                .map(|cand| self.eval_candidate(state, cand, e0, h0, evaluator))
                .collect(),
            EvalMode::Parallel => self.eval_chunk_parallel(state, chunk, e0, h0, evaluator),
        };
        // Deterministic reduction: strictly-smaller ΔC wins, so the
        // earliest shortlist index is kept on ties — exactly the
        // sequential fold regardless of evaluation order.
        let mut best: Option<(f64, MergeKind)> = None;
        for (entry, cand) in evaluated.into_iter().zip(chunk) {
            let Some(dc) = entry else { continue };
            // total_cmp: a NaN price (impossible with validated params,
            // defensive against a degenerate library) sorts above every
            // real ΔC instead of vacuously losing every comparison.
            if best
                .as_ref()
                .is_none_or(|(b, _)| dc.total_cmp(b) == std::cmp::Ordering::Less)
            {
                best = Some((dc, cand.kind));
            }
        }
        best
    }

    /// Commit the winning merge of an iteration onto `state`.
    fn apply_winner(&self, state: &mut DesignState, kind: MergeKind) -> Result<(), CoreError> {
        match kind {
            MergeKind::Modules(a, b) => {
                merge_modules_with_resched_using(state, a, b, self.params.order_strategy)
            }
            MergeKind::Registers(a, b) => {
                merge_registers_with_resched_using(state, a, b, self.params.order_strategy)
            }
        }
    }

    /// Evaluate one candidate against the baseline (`e0`, `h0`):
    /// tentatively apply it in place (merge + merge-sort rescheduling,
    /// which re-runs the lifetime checks), price ΔC through the shared
    /// evaluator, and roll the transaction back. `None` if the merger is
    /// infeasible. The human-readable description is *not* built here —
    /// only the committed winner ever needs one (see
    /// [`merge_description`]).
    fn eval_candidate(
        &self,
        state: &mut DesignState,
        cand: &MergeCandidate,
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Option<f64> {
        trial_merge(state, cand.kind, self.params.order_strategy, |trial| {
            let (e1, h1) = evaluator
                .eval(trial, self.params.bits, &self.params.library)
                .ok()?;
            Some(self.params.alpha * (e1 as f64 - e0) + self.params.beta * (h1 - h0))
        })
    }

    /// Evaluate a shortlist chunk on scoped threads (one per candidate;
    /// `k` is small). Each thread runs its transaction on a private
    /// [`DesignState::fork`] of the base state — a cheap copy sharing
    /// the graph core, testability engine and counters — so the in-place
    /// trials never contend. Results come back in shortlist order, so
    /// the reduction in [`best_in_chunk`](Self::best_in_chunk) is
    /// unaffected by thread completion order.
    #[cfg(feature = "parallel")]
    fn eval_chunk_parallel(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<f64>> {
        if chunk.len() < 2 {
            return chunk
                .iter()
                .map(|cand| self.eval_candidate(state, cand, e0, h0, evaluator))
                .collect();
        }
        let base = &*state;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|cand| {
                    scope.spawn(move || {
                        let mut local = base.fork();
                        self.eval_candidate(&mut local, cand, e0, h0, evaluator)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(dc) => dc,
                    // Propagate the worker's panic payload on the
                    // calling thread: identical observable behavior to
                    // the sequential path, without asserting it can't
                    // happen.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }

    /// Sequential stand-in when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    fn eval_chunk_parallel(
        &self,
        state: &mut DesignState,
        chunk: &[MergeCandidate],
        e0: f64,
        h0: f64,
        evaluator: &DeltaEvaluator,
    ) -> Vec<Option<f64>> {
        chunk
            .iter()
            .map(|cand| self.eval_candidate(state, cand, e0, h0, evaluator))
            .collect()
    }
}

/// The merge-log label for a committed merge, reconstructed from the
/// post-merge state: the surviving module's op names (or register's
/// value names), comma-joined in binding order. Shared with the clone
/// oracle so both paths produce byte-identical logs.
pub(crate) fn merge_description(state: &DesignState, kind: MergeKind) -> String {
    match kind {
        MergeKind::Modules(a, _) => {
            let label = state
                .allocation
                .module(a)
                .map(|m| {
                    m.ops()
                        .iter()
                        .map(|&o| state.dfg.op(o).name().to_owned())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            format!("merge modules -> {{{label}}}")
        }
        MergeKind::Registers(a, _) => {
            let label = state
                .allocation
                .register(a)
                .map(|r| {
                    r.values()
                        .iter()
                        .map(|&v| state.dfg.value(v).name().to_owned())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            format!("merge registers -> {{{label}}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn small() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let t3 = b.op("N3", OpKind::Mul, &[t1, t2], "t3").unwrap();
        let y = b.op("N4", OpKind::Sub, &[t3, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn run_produces_valid_compacted_design() {
        let d = small();
        let r = IntegratedSynthesizer::new(SynthesisParams::default())
            .run(&d)
            .unwrap();
        r.schedule.validate(&r.dfg).unwrap();
        r.schedule
            .validate_groups(&r.dfg, &r.allocation.conflict_groups())
            .unwrap();
        // registers must have merged below one-per-value
        assert!(r.allocation.num_registers() < 6);
        assert!(!r.merge_log.is_empty());
    }

    #[test]
    fn deterministic() {
        let d = small();
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let r1 = synth.run(&d).unwrap();
        let r2 = synth.run(&d).unwrap();
        assert_eq!(r1.allocation, r2.allocation);
        assert_eq!(r1.schedule, r2.schedule);
    }

    #[test]
    fn alpha_dominant_preserves_latency() {
        let d = small();
        let params = SynthesisParams {
            alpha: 1000.0,
            beta: 1.0,
            ..SynthesisParams::default()
        };
        let r = IntegratedSynthesizer::new(params).run(&d).unwrap();
        // with latency sacrosanct, the schedule stays at the critical path
        assert_eq!(r.metrics.execution_time, 4);
    }

    #[test]
    fn beta_dominant_compacts_harder() {
        let d = small();
        let lean = IntegratedSynthesizer::new(SynthesisParams {
            alpha: 0.01,
            beta: 100.0,
            ..SynthesisParams::default()
        })
        .run(&d)
        .unwrap();
        let tight = IntegratedSynthesizer::new(SynthesisParams {
            alpha: 1000.0,
            beta: 1.0,
            ..SynthesisParams::default()
        })
        .run(&d)
        .unwrap();
        let lean_units = lean.allocation.num_modules() + lean.allocation.num_registers();
        let tight_units = tight.allocation.num_modules() + tight.allocation.num_registers();
        assert!(lean_units <= tight_units);
    }

    #[test]
    fn paper_defaults_choose_by_bits() {
        assert_eq!(SynthesisParams::paper_defaults(4).alpha, 2.0);
        assert_eq!(SynthesisParams::paper_defaults(8).alpha, 10.0);
        assert_eq!(SynthesisParams::paper_defaults(16).beta, 10.0);
    }
}
