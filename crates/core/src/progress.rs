//! Cooperative cancellation and progress streaming for long runs.
//!
//! The synthesis loops were written for one-shot invocations: once
//! [`IntegratedSynthesizer::run`] starts there is no way to stop it
//! short of killing the process, and no way to observe it short of
//! waiting for the result. A daemon serving many queued jobs needs
//! both, so the layers that loop — Algorithm 1, the CAMAD baseline,
//! the design-space worker pool — now thread a [`RunCtl`] through:
//!
//! * [`CancelToken`] — a shared flag checked **between** iterations
//!   (never inside a trial transaction), so cancellation lands on a
//!   consistent state and an uncancelled run is bit-identical to one
//!   executed without any token at all;
//! * [`ProgressSink`] — a callback receiving coarse
//!   [`ProgressEvent`]s (one per committed-merge iteration, one per
//!   completed sweep point). Sinks observe, they cannot steer:
//!   nothing in the loop reads anything back from them.
//!
//! [`IntegratedSynthesizer::run`]: crate::IntegratedSynthesizer::run

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning is cheap (an [`Arc`] bump) and
/// every clone observes the same state; [`CancelToken::cancel`] is
/// just an atomic store, so it is safe to call from a signal handler.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks (async-signal
    /// safe: one relaxed atomic store).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A coarse progress notification from one of the looping layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgressEvent {
    /// Algorithm 1 (or CAMAD) is starting iteration `iteration` with
    /// `merges` mergers committed so far.
    Iteration {
        /// 0-based iteration index.
        iteration: usize,
        /// Mergers committed before this iteration.
        merges: usize,
    },
    /// A design-space sweep completed one point.
    PointDone {
        /// The point's stable sweep ID.
        id: usize,
        /// Points completed so far (including resumed ones).
        completed: usize,
        /// Points in the whole sweep.
        total: usize,
    },
}

/// A consumer of [`ProgressEvent`]s. Implementations must be cheap
/// and non-blocking-ish: they run on the synthesis thread between
/// iterations. They must also tolerate being called from several
/// worker threads at once (`Send + Sync`).
pub trait ProgressSink: Send + Sync {
    /// Observe one event.
    fn event(&self, event: ProgressEvent);
}

/// A sink that drops every event — the default for one-shot runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn event(&self, _event: ProgressEvent) {}
}

/// The control handle threaded through a synthesis run: a cancellation
/// token plus a progress sink. [`RunCtl::none`] is the inert handle
/// the plain entry points use; constructing one costs an `Arc` and an
/// unused vtable pointer, nothing per iteration.
#[derive(Clone)]
pub struct RunCtl<'a> {
    /// Checked between iterations; a fired token makes the run return
    /// [`CoreError::Cancelled`](crate::CoreError::Cancelled).
    pub cancel: CancelToken,
    /// Receives one event per iteration.
    pub progress: &'a dyn ProgressSink,
}

impl std::fmt::Debug for RunCtl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCtl")
            .field("cancel", &self.cancel)
            .field("progress", &"<dyn ProgressSink>")
            .finish()
    }
}

impl RunCtl<'_> {
    /// An inert handle: never cancelled, events discarded.
    #[must_use]
    pub fn none() -> RunCtl<'static> {
        RunCtl {
            cancel: CancelToken::new(),
            progress: &NullSink,
        }
    }

    /// A handle that only cancels (events discarded).
    #[must_use]
    pub fn cancel_only(cancel: CancelToken) -> RunCtl<'static> {
        RunCtl {
            cancel,
            progress: &NullSink,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn sink_receives_events() {
        struct Collect(Mutex<Vec<ProgressEvent>>);
        impl ProgressSink for Collect {
            fn event(&self, event: ProgressEvent) {
                self.0.lock().unwrap().push(event);
            }
        }
        let sink = Collect(Mutex::new(Vec::new()));
        let ctl = RunCtl {
            cancel: CancelToken::new(),
            progress: &sink,
        };
        ctl.progress.event(ProgressEvent::Iteration {
            iteration: 0,
            merges: 0,
        });
        assert_eq!(sink.0.lock().unwrap().len(), 1);
    }
}
