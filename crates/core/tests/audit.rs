//! The PR's headline invariant: however a merger storm batters a
//! [`DesignState`] — trial merges that roll back, committed merges,
//! rejected merges, interleavings of all three — the cross-crate
//! auditor stays clean. A violation here means the transaction
//! journal replayed the state incorrectly, which would silently poison
//! every later candidate's pricing.

use hlts_core::{
    merge_modules_with_resched, merge_registers_with_resched, trial_merge, DesignState, MergeKind,
    OrderStrategy,
};
use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};

/// Draw a random merge pair from the state's *live* allocation.
fn random_kind(state: &DesignState, rng: &mut impl RngCore) -> Option<MergeKind> {
    if rng.gen_bool(0.5) {
        let ids: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
        if ids.len() < 2 {
            return None;
        }
        let a = rng.gen_range(0..ids.len());
        let mut b = rng.gen_range(0..ids.len() - 1);
        if b >= a {
            b += 1;
        }
        Some(MergeKind::Modules(ids[a], ids[b]))
    } else {
        let ids: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
        if ids.len() < 2 {
            return None;
        }
        let a = rng.gen_range(0..ids.len());
        let mut b = rng.gen_range(0..ids.len() - 1);
        if b >= a {
            b += 1;
        }
        Some(MergeKind::Registers(ids[a], ids[b]))
    }
}

fn assert_clean(state: &DesignState, context: &str) {
    let report = state.audit();
    assert!(report.is_clean(), "{context}:\n{report}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random apply/rollback storms on the paper benchmarks: after
    /// every trial (rolled back) and every commit (kept), the audit
    /// passes and a rolled-back state stays bit-identical in its
    /// observable fingerprints.
    #[test]
    fn merger_storms_always_audit_clean(
        seed in proptest::any::<u64>(),
        bench_sel in 0usize..4,
    ) {
        let name = ["ex", "tseng", "paulin", "diffeq"][bench_sel];
        let dfg = hlts_benchmarks::by_name(name).expect("known bench");
        let mut state = DesignState::initial(&dfg).expect("initial state");
        assert_clean(&state, "initial state");

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for step in 0..40 {
            let Some(kind) = random_kind(&state, &mut rng) else { break };
            if rng.gen_bool(0.7) {
                // Trial: apply, price, roll back. The state must come
                // back exactly; debug builds re-audit inside trial_merge
                // too, but release runs of this test rely on this check.
                let before_sched = state.schedule.content_hash();
                let before_alloc = state.allocation.content_hash();
                let _ = trial_merge(&mut state, kind, OrderStrategy::CoEnhancement, |s| {
                    Some(s.schedule.num_steps() as f64)
                });
                prop_assert_eq!(state.schedule.content_hash(), before_sched);
                prop_assert_eq!(state.allocation.content_hash(), before_alloc);
                assert_clean(&state, "after rolled-back trial");
            } else {
                // Commit (or get rejected; either way state stays legal).
                let _ = match kind {
                    MergeKind::Modules(a, b) => merge_modules_with_resched(&mut state, a, b),
                    MergeKind::Registers(a, b) => merge_registers_with_resched(&mut state, a, b),
                };
                assert_clean(&state, "after committed/rejected merge");
            }
            let _ = step;
        }
        state.validate().expect("validate agrees with audit");
    }
}

/// Full synthesizer runs over every paper benchmark leave a state the
/// auditor accepts — the acceptance criterion "audit passes on all
/// benchmarks".
#[test]
fn synthesized_benchmarks_audit_clean() {
    use hlts_core::{IntegratedSynthesizer, SynthesisParams};
    for name in hlts_benchmarks::NAMES {
        let dfg = hlts_benchmarks::by_name(name).expect("known bench");
        let result = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
            .run(&dfg)
            .expect("synthesis succeeds");
        let state = DesignState::from_parts(&result.dfg, result.schedule, result.allocation);
        let report = state.audit();
        assert!(report.is_clean(), "{name}:\n{report}");
    }
}

/// The library-level parameter validation the CLI used to be the only
/// guard for: NaN/negative weights and k == 0 are rejected before any
/// synthesis work happens.
#[test]
fn invalid_params_rejected_at_the_library_boundary() {
    use hlts_core::{baselines, CoreError, IntegratedSynthesizer, SynthesisParams};
    let dfg = hlts_benchmarks::by_name("ex").expect("known bench");
    let cases: Vec<(&str, SynthesisParams)> = vec![
        ("k = 0", SynthesisParams { k: 0, ..SynthesisParams::paper_defaults(8) }),
        (
            "alpha NaN",
            SynthesisParams { alpha: f64::NAN, ..SynthesisParams::paper_defaults(8) },
        ),
        (
            "beta negative",
            SynthesisParams { beta: -1.0, ..SynthesisParams::paper_defaults(8) },
        ),
        (
            "alpha infinite",
            SynthesisParams { alpha: f64::INFINITY, ..SynthesisParams::paper_defaults(8) },
        ),
    ];
    for (what, params) in cases {
        params.validate().expect_err(what);
        let run = IntegratedSynthesizer::new(params.clone()).run(&dfg);
        assert!(
            matches!(run, Err(CoreError::InvalidParams(_))),
            "{what}: synthesizer accepted invalid params"
        );
        assert!(
            matches!(baselines::camad(&dfg, &params), Err(CoreError::InvalidParams(_))),
            "{what}: camad accepted invalid params"
        );
        assert!(
            matches!(
                baselines::approach1(&dfg, &params),
                Err(CoreError::InvalidParams(_))
            ),
            "{what}: approach1 accepted invalid params"
        );
    }
    SynthesisParams::paper_defaults(8)
        .validate()
        .expect("paper defaults are valid");
}
