//! Fault-injection tests of the synthesis kernel (enabled by the
//! `test-faults` feature): forcing a rollback at every savepoint must
//! degrade the run to "no merge committed", never to a corrupted state.
//!
//! The fault plan is process-global, so everything lives in one test
//! function — parallel test threads would steal each other's charges.

#![cfg(feature = "test-faults")]

use hlts_check::faults::{sites, FaultPlan};
use hlts_core::{
    trial_merge, DesignState, IntegratedSynthesizer, MergeKind, OrderStrategy, SynthesisParams,
};

#[test]
fn forced_rollbacks_degrade_to_the_initial_design() {
    let dfg = hlts_benchmarks::by_name("tseng").expect("known bench");

    // 1. A single trial under a forced rollback: the price closure is
    // never consulted, the trial reports "declined", and the state
    // comes back bit-identical and audit-clean.
    {
        let mut state = DesignState::initial(&dfg).expect("initial state");
        let modules: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
        let before_sched = state.schedule.content_hash();
        let before_alloc = state.allocation.content_hash();

        let guard = FaultPlan::new().arm(sites::CORE_FORCE_ROLLBACK, 1).install();
        let mut priced = false;
        let dc = trial_merge(
            &mut state,
            MergeKind::Modules(modules[0], modules[1]),
            OrderStrategy::CoEnhancement,
            |_| {
                priced = true;
                Some(0.0)
            },
        );
        assert!(
            guard.fired().contains(&sites::CORE_FORCE_ROLLBACK),
            "the armed fault must actually fire"
        );
        drop(guard);

        assert_eq!(dc, None, "a forced rollback discards the trial");
        assert!(!priced, "the faulted trial must not be priced");
        assert_eq!(state.schedule.content_hash(), before_sched);
        assert_eq!(state.allocation.content_hash(), before_alloc);
        let report = state.audit();
        assert!(report.is_clean(), "{report}");
    }

    // 2. A whole synthesis run with *every* trial forced back: no
    // merge can ever price better than the current design, so the run
    // must terminate gracefully on the unmerged initial design — the
    // correct partial result of "all candidates rejected".
    {
        let guard = FaultPlan::new()
            .arm(sites::CORE_FORCE_ROLLBACK, u64::MAX)
            .install();
        let result = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
            .run(&dfg)
            .expect("a fully-faulted run still completes");
        drop(guard);

        let initial = DesignState::initial(&dfg).expect("initial state");
        assert_eq!(
            result.allocation.num_modules(),
            initial.allocation.num_modules(),
            "no module merge can commit when every trial rolls back"
        );
        assert_eq!(
            result.allocation.num_registers(),
            initial.allocation.num_registers(),
            "no register merge can commit when every trial rolls back"
        );
        assert!(result.merge_log.is_empty(), "{:?}", result.merge_log);
        let state = DesignState::from_parts(&result.dfg, result.schedule, result.allocation);
        let report = state.audit();
        assert!(report.is_clean(), "{report}");
    }

    // 3. With the plan dropped the sites are disarmed again: the same
    // run now merges normally.
    let result = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
        .run(&dfg)
        .expect("clean run");
    assert!(
        !result.merge_log.is_empty(),
        "disarmed faults must not leak into later runs"
    );
}
