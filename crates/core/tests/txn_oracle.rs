//! The two contracts of the transaction layer:
//!
//! 1. **Rollback is exact.** Applying a trial merger through a
//!    [`StateTxn`] and rolling it back (explicitly, by savepoint, or by
//!    drop) leaves the design state *bit-identical* — deep-equal graph,
//!    schedule and allocation, and an unchanged evaluator fingerprint —
//!    under random merger storms on random behaviors.
//! 2. **The journal changes nothing but cost.** Full synthesis through
//!    the in-place transaction path produces results equal to the
//!    retained clone-based formulation (`hlts_core::oracle`) on every
//!    bundled benchmark, in both evaluation modes.

use hlts_core::{
    oracle, trial_merge, DeltaEvaluator, DesignState, EvalMode, IntegratedSynthesizer, MergeKind,
    OrderStrategy, SynthesisParams,
};
use hlts_dfg::{Dfg, DfgBuilder, OpKind};
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Xor];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10)
}

/// Deep-equality + fingerprint check of `state` against a snapshot.
fn assert_restored(state: &DesignState, snap: &DesignState, fp: u64, what: &str) {
    assert_eq!(state.dfg, snap.dfg, "{what}: graph not restored");
    assert_eq!(state.schedule, snap.schedule, "{what}: schedule not restored");
    assert_eq!(
        state.allocation, snap.allocation,
        "{what}: allocation not restored"
    );
    assert_eq!(
        DeltaEvaluator::fingerprint(state),
        fp,
        "{what}: fingerprint drifted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A storm of trial mergers — some feasible, some not, some
    /// interleaved with committed ones — must leave the state
    /// bit-identical to its pre-trial snapshot after every rollback.
    #[test]
    fn trial_rollback_restores_state_bit_identically(
        spec in spec_strategy(),
        storm in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<bool>(), any::<bool>()), 0..10),
    ) {
        let d = build_dfg(&spec);
        let mut state = DesignState::initial(&d).expect("initial");
        for (x, y, register, commit) in storm {
            let kind = if register {
                let regs: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
                MergeKind::Registers(
                    regs[x as usize % regs.len()],
                    regs[y as usize % regs.len()],
                )
            } else {
                let mods: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
                MergeKind::Modules(
                    mods[x as usize % mods.len()],
                    mods[y as usize % mods.len()],
                )
            };
            let snap = state.deep_trial_clone();
            let fp = DeltaEvaluator::fingerprint(&state);
            // A pure-read pricing closure: trial applies, prices, rolls back.
            let priced = trial_merge(&mut state, kind, OrderStrategy::CoEnhancement, |t| {
                Some(t.schedule.num_steps() as f64)
            });
            assert_restored(&state, &snap, fp, "after trial_merge");
            prop_assert!(state.validate().is_ok());
            // Occasionally commit the same merger for real, so later
            // trials in the storm run against merged states too.
            if commit && priced.is_some() {
                let r = match kind {
                    MergeKind::Modules(a, b) => {
                        hlts_core::merge_modules_with_resched(&mut state, a, b)
                    }
                    MergeKind::Registers(a, b) => {
                        hlts_core::merge_registers_with_resched(&mut state, a, b)
                    }
                };
                prop_assert!(r.is_ok(), "priced merger must re-apply");
                prop_assert!(state.validate().is_ok());
            }
        }
    }

    /// Savepoint rollbacks inside one open transaction are exact too:
    /// open a txn, apply a merger, roll back to the savepoint, commit
    /// the (now empty) transaction — the state must be untouched.
    #[test]
    fn savepoint_rollback_is_bit_identical(
        spec in spec_strategy(),
        x in any::<u8>(),
        y in any::<u8>(),
    ) {
        let d = build_dfg(&spec);
        let mut state = DesignState::initial(&d).expect("initial");
        let snap = state.deep_trial_clone();
        let fp = DeltaEvaluator::fingerprint(&state);
        {
            let mut txn = state.begin();
            let sp = txn.savepoint();
            let mods: Vec<_> = txn.state().allocation.modules().map(|m| m.id()).collect();
            let (a, b) = (mods[x as usize % mods.len()], mods[y as usize % mods.len()]);
            if a != b {
                let _ = txn.merge_modules(a, b);
                let _ = txn.reschedule();
            }
            txn.rollback_to(sp);
            txn.commit();
        }
        assert_restored(&state, &snap, fp, "after savepoint rollback");
    }
}

/// Whole-algorithm equivalence: the transactional path must reproduce
/// the clone oracle's result exactly — same graph arcs, schedule,
/// binding, metrics and merge log — on every bundled benchmark.
/// (`SynthesisResult` equality excludes the cache/journal diagnostics.)
#[test]
fn txn_synthesis_matches_clone_oracle_on_benchmarks() {
    for (name, dfg) in hlts_benchmarks::all() {
        let params = SynthesisParams::paper_defaults(8);
        let want = oracle::synthesize(&dfg, &params).expect("oracle");
        let synth = IntegratedSynthesizer::new(params);
        for mode in [EvalMode::Sequential, EvalMode::Parallel] {
            let got = synth.run_mode(&dfg, mode).expect("txn synthesis");
            assert_eq!(
                got, want,
                "{name} ({mode:?}): transactional result diverges from clone oracle"
            );
        }
    }
}

/// The counters actually count: a benchmark run must report trials
/// begun, rollbacks for every rejected candidate, and replayed undo ops.
#[test]
fn txn_counters_are_populated() {
    let dfg = hlts_benchmarks::ex();
    let r = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
        .run(&dfg)
        .expect("synthesis");
    let s = r.txn_stats;
    assert!(s.begun > 0, "no transactions begun: {s:?}");
    assert_eq!(s.begun, s.committed + s.rolled_back, "txn accounting leak: {s:?}");
    assert!(s.rolled_back > 0, "no trial was rolled back: {s:?}");
    assert!(s.committed > 0, "no merger was committed: {s:?}");
    assert!(s.ops_recorded >= s.ops_replayed, "replayed more than recorded: {s:?}");
    assert!(s.ops_replayed > 0, "rollbacks replayed nothing: {s:?}");
}
