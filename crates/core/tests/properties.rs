//! Property-based tests for the synthesis core: random merger storms
//! must never produce an invalid design state, and the full algorithm
//! must stay valid and deterministic on random behaviors.

use hlts_core::{
    merge_modules_with_resched, merge_registers_with_resched, DesignState, EvalMode,
    IntegratedSynthesizer, SynthesisParams,
};
use hlts_dfg::{Dfg, DfgBuilder, OpKind};
use hlts_testability::TestabilityAnalysis;
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Xor];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply a random storm of module/register mergers: after every
    /// attempt — accepted or rejected — the design state must validate
    /// (schedule legal, binding legal, lifetimes disjoint).
    #[test]
    fn merger_storm_preserves_validity(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..8),
    ) {
        let d = build_dfg(&spec);
        let mut state = DesignState::initial(&d).expect("initial");
        for (x, y, register) in merges {
            if register {
                let regs: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
                let (a, b) = (
                    regs[x as usize % regs.len()],
                    regs[y as usize % regs.len()],
                );
                let _ = merge_registers_with_resched(&mut state, a, b);
            } else {
                let mods: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
                let (a, b) = (
                    mods[x as usize % mods.len()],
                    mods[y as usize % mods.len()],
                );
                let _ = merge_modules_with_resched(&mut state, a, b);
            }
            prop_assert!(state.validate().is_ok(), "state invalid after merger");
        }
    }

    /// The full algorithm always produces a valid, compacting design and
    /// is deterministic.
    #[test]
    fn algorithm_is_valid_and_deterministic(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let r1 = synth.run(&d).expect("synthesis");
        let r2 = synth.run(&d).expect("synthesis");
        prop_assert_eq!(&r1.allocation, &r2.allocation);
        prop_assert_eq!(&r1.schedule, &r2.schedule);
        r1.schedule.validate(&r1.dfg).expect("legal schedule");
        r1.schedule
            .validate_groups(&r1.dfg, &r1.allocation.conflict_groups())
            .expect("legal binding");
        let lt = hlts_sched::Lifetimes::compute(&r1.dfg, &r1.schedule);
        r1.allocation
            .validate(&r1.dfg, &r1.schedule, &lt)
            .expect("legal registers");
    }

    /// Parallel k-candidate evaluation is observationally identical to
    /// the sequential loop: on random behaviors both modes commit the
    /// same merger at every iteration and end with bit-identical
    /// results — same schedule, binding, metrics and merge log.
    #[test]
    fn parallel_picks_same_merges_as_sequential(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let seq = synth.run_mode(&d, EvalMode::Sequential).expect("sequential");
        let par = synth.run_mode(&d, EvalMode::Parallel).expect("parallel");
        prop_assert_eq!(&seq.merge_log, &par.merge_log, "different merge decisions");
        prop_assert_eq!(seq, par);
    }

    /// Two parallel runs on the same input are bit-identical: thread
    /// scheduling never leaks into the result.
    #[test]
    fn parallel_evaluation_is_deterministic(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let synth = IntegratedSynthesizer::new(SynthesisParams::default());
        let r1 = synth.run_mode(&d, EvalMode::Parallel).expect("parallel");
        let r2 = synth.run_mode(&d, EvalMode::Parallel).expect("parallel");
        prop_assert_eq!(r1, r2);
    }

    /// Incremental testability re-analysis tracks a random merger
    /// storm: after every accepted merger (which perturbs the binding,
    /// the schedule and the precedence arcs at once), re-analyzing from
    /// the previous solution's history over the dirty region yields
    /// exactly the dense reference fixpoint of the new data path.
    #[test]
    fn incremental_testability_tracks_merger_storms(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..8),
    ) {
        let d = build_dfg(&spec);
        let mut state = DesignState::initial(&d).expect("initial");
        let mut prev_dp = state.lower().expect("lower").data_path().clone();
        let mut prev_ta = TestabilityAnalysis::analyze(&prev_dp);
        for (x, y, register) in merges {
            let accepted = if register {
                let regs: Vec<_> = state.allocation.registers().map(|r| r.id()).collect();
                let (a, b) = (
                    regs[x as usize % regs.len()],
                    regs[y as usize % regs.len()],
                );
                merge_registers_with_resched(&mut state, a, b).is_ok()
            } else {
                let mods: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
                let (a, b) = (
                    mods[x as usize % mods.len()],
                    mods[y as usize % mods.len()],
                );
                merge_modules_with_resched(&mut state, a, b).is_ok()
            };
            if !accepted {
                continue;
            }
            let dp = state.lower().expect("lower").data_path().clone();
            let re = prev_ta.reanalyze(&prev_dp, &dp, &[]);
            let dense = TestabilityAnalysis::analyze_dense(&dp);
            prop_assert_eq!(&re, &dense, "incremental diverged from dense");
            prev_dp = dp;
            prev_ta = re;
        }
    }

    /// The worklist solver the shared engine uses agrees with the dense
    /// reference fixpoint on fully synthesized (heavily merged) designs,
    /// not just on random deltas.
    #[test]
    fn final_design_analysis_matches_dense(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let r = IntegratedSynthesizer::new(SynthesisParams::default())
            .run(&d)
            .expect("synthesis");
        let etpn = hlts_etpn::Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation)
            .expect("lowerable");
        let worklist = TestabilityAnalysis::analyze(etpn.data_path());
        let dense = TestabilityAnalysis::analyze_dense(etpn.data_path());
        prop_assert_eq!(&worklist, &dense);
    }

    /// Execution time is monotone under the α knob: an α-dominant run
    /// never ends slower than a β-dominant run of the same behavior.
    #[test]
    fn alpha_protects_latency(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let fast = IntegratedSynthesizer::new(SynthesisParams {
            alpha: 1000.0,
            beta: 1.0,
            ..SynthesisParams::default()
        })
        .run(&d)
        .expect("synthesis");
        let small = IntegratedSynthesizer::new(SynthesisParams {
            alpha: 0.01,
            beta: 100.0,
            ..SynthesisParams::default()
        })
        .run(&d)
        .expect("synthesis");
        prop_assert!(fast.metrics.execution_time <= small.metrics.execution_time);
    }
}
