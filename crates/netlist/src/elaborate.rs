//! Elaboration of an allocated, scheduled data path into a flat gate
//! netlist.
//!
//! Mapping:
//!
//! * every control place becomes a **control primary input** (the paper
//!   assumes "the controller can be modified to support the test plan",
//!   so the test generator may drive the control state freely);
//! * every behavioral primary input becomes an input word, every
//!   constant a hardwired word;
//! * every register becomes a DFF word with a load enable (`next = en ?
//!   d : q`), where `en` is the OR of its incoming transfers' guard
//!   signals and `d` a guard-selected mux chain over the sources;
//! * every module becomes the gate network of each operation kind it
//!   hosts, with guard-selected input-port mux chains and a
//!   kind-selecting output mux chain (the ALU function select);
//! * primary outputs observe their register's Q word; condition outputs
//!   observe the comparator bit.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use hlts_alloc::Allocation;
use hlts_dfg::{Dfg, OpKind};
use hlts_etpn::{DataPath, DpArc, DpNodeId, DpNodeKind, Etpn, PlaceId};
use hlts_sched::Schedule;

use crate::{GateId, GateKind, Netlist, WordBuilder};

/// Errors from elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElaborateError {
    /// A module depends combinationally on another module in a cycle
    /// (cannot happen for register-transfer data paths; defensive).
    CombinationalCycle(String),
    /// A node has no driver for a required port.
    MissingSource(String),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::CombinationalCycle(s) => {
                write!(f, "combinational cycle through `{s}`")
            }
            ElaborateError::MissingSource(s) => write!(f, "no source drives `{s}`"),
        }
    }
}

impl Error for ElaborateError {}

/// Elaborate `etpn` (built from `dfg`, `schedule`, `allocation`) into a
/// gate netlist at the given data width.
///
/// # Errors
///
/// See [`ElaborateError`].
pub fn elaborate(
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
    etpn: &Etpn,
    bits: u32,
) -> Result<Netlist, ElaborateError> {
    elaborate_with(dfg, schedule, allocation, etpn, bits, false)
}

/// [`elaborate`] with an explicit output-strobe choice.
///
/// With `strobe_outputs` set, every data primary output is gated by the
/// final-state control signal (`out = q & ctrl_final`): the tester
/// observes results only when the schedule completes, as the paper's
/// designs do. Without it, register outputs are observable every cycle
/// (a per-cycle ATE strobe).
///
/// # Errors
///
/// See [`ElaborateError`].
pub fn elaborate_with(
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
    etpn: &Etpn,
    bits: u32,
    strobe_outputs: bool,
) -> Result<Netlist, ElaborateError> {
    let dp = etpn.data_path();
    let mut nl = Netlist::new();

    // 1. Control-step primary inputs, one per place used as a guard.
    let mut ctrl: HashMap<PlaceId, GateId> = HashMap::new();
    let mut guard_places: Vec<PlaceId> = dp
        .arcs()
        .iter()
        .flat_map(|a| a.guards().iter().copied())
        .collect();
    guard_places.sort();
    guard_places.dedup();
    for p in guard_places {
        let label = etpn.control().place_label(p).to_owned();
        ctrl.insert(p, nl.input(format!("ctrl_{label}")));
    }

    // Map control-step number -> control signal (place labels are "S<n>").
    let mut step_sig: HashMap<usize, GateId> = HashMap::new();
    for (&p, &sig) in &ctrl {
        let label = etpn.control().place_label(p);
        if let Some(s) = label
            .strip_prefix('S')
            .and_then(|x| x.parse::<usize>().ok())
        {
            step_sig.insert(s, sig);
        }
    }

    // 2. Source words per node, filled as nodes are built.
    let mut word: HashMap<DpNodeId, Vec<GateId>> = HashMap::new();
    let mut cond_bit: HashMap<DpNodeId, GateId> = HashMap::new();

    for node in dp.nodes() {
        match node.kind() {
            DpNodeKind::PrimaryInput(v) => {
                let w =
                    WordBuilder::input_word(&mut nl, &format!("in_{}", dfg.value(*v).name()), bits);
                word.insert(node.id(), w);
            }
            DpNodeKind::Const(v) => {
                let value = match dfg.value(*v).kind() {
                    hlts_dfg::ValueKind::Const(x) => x,
                    _ => 0,
                };
                let w = WordBuilder::new(&mut nl).const_word(value, bits);
                word.insert(node.id(), w);
            }
            DpNodeKind::Register(r) => {
                let w = WordBuilder::new(&mut nl).register(&format!("R{}", r.index()), bits);
                word.insert(node.id(), w);
            }
            _ => {}
        }
    }

    // 3. Modules in dependency order (module-to-module arcs are rare —
    //    conditions consumed as data — but handled).
    let modules = dp.module_nodes();
    let mut remaining: Vec<DpNodeId> = modules.clone();
    let guard_act = |nl: &mut Netlist, arc: &DpArc| -> GateId {
        let sigs: Vec<GateId> = arc.guards().iter().map(|p| ctrl[p]).collect();
        WordBuilder::new(nl).or_many(&sigs)
    };
    let mut rounds = 0usize;
    while !remaining.is_empty() {
        rounds += 1;
        if rounds > modules.len() + 1 {
            let stuck = dp.node(remaining[0]).label().to_owned();
            return Err(ElaborateError::CombinationalCycle(stuck));
        }
        remaining.retain(|&m| {
            // buildable when all source nodes have words (or cond bits)
            let ready = dp.in_arc_ids(m).iter().all(|&a| {
                let from = dp.arc(a).from();
                word.contains_key(&from) || cond_bit.contains_key(&from)
            });
            if !ready {
                return true;
            }
            let (data, cond) = build_module(
                &mut nl, dfg, schedule, allocation, dp, m, &word, &cond_bit, &ctrl, &step_sig, bits,
            );
            if let Some(w) = data {
                word.insert(m, w);
            }
            if let Some(c) = cond {
                cond_bit.insert(m, c);
            }
            false
        });
    }

    // 4. Register D networks.
    for rn in dp.register_nodes() {
        let q = word[&rn].clone();
        let ins = dp.in_arc_ids(rn);
        if ins.is_empty() {
            // dead register: holds reset value
            let zero = {
                let mut wb = WordBuilder::new(&mut nl);
                wb.const_word(0, bits)
            };
            let en = nl.constant(false);
            WordBuilder::new(&mut nl).connect_register(&q, en, &zero);
            continue;
        }
        let mut acts = Vec::new();
        let mut d: Option<Vec<GateId>> = None;
        for &aid in ins {
            let arc = dp.arc(aid);
            let src = word
                .get(&arc.from())
                .cloned()
                .or_else(|| {
                    cond_bit
                        .get(&arc.from())
                        .map(|&c| expand_bit(&mut nl, c, bits))
                })
                .ok_or_else(|| {
                    ElaborateError::MissingSource(dp.node(arc.from()).label().to_owned())
                })?;
            let act = guard_act(&mut nl, arc);
            acts.push(act);
            d = Some(match d {
                None => src,
                Some(prev) => WordBuilder::new(&mut nl).mux(act, &prev, &src),
            });
        }
        let en = WordBuilder::new(&mut nl).or_many(&acts);
        let d = d.expect("at least one source");
        WordBuilder::new(&mut nl).connect_register(&q, en, &d);
    }

    // 5. Observation points.
    for node in dp.nodes() {
        match node.kind() {
            DpNodeKind::PrimaryOutput(v) => {
                let src = dp
                    .in_arc_ids(node.id())
                    .first()
                    .map(|&a| dp.arc(a).from())
                    .ok_or_else(|| ElaborateError::MissingSource(node.label().to_owned()))?;
                let w = word
                    .get(&src)
                    .cloned()
                    .ok_or_else(|| ElaborateError::MissingSource(node.label().to_owned()))?;
                // The arc into the output port is guarded by the final
                // place; under strobing, gate the observation with it.
                let strobe = if strobe_outputs {
                    dp.in_arc_ids(node.id())
                        .first()
                        .and_then(|&a| dp.arc(a).guards().iter().next().copied())
                        .and_then(|p| ctrl.get(&p).copied())
                } else {
                    None
                };
                for (i, &g) in w.iter().enumerate() {
                    let tapped = match strobe {
                        Some(s) => nl.gate(GateKind::And, &[g, s]),
                        None => g,
                    };
                    nl.output(format!("out_{}[{i}]", dfg.value(*v).name()), tapped);
                }
            }
            DpNodeKind::ConditionOut(v) => {
                let src = dp
                    .in_arc_ids(node.id())
                    .first()
                    .map(|&a| dp.arc(a).from())
                    .ok_or_else(|| ElaborateError::MissingSource(node.label().to_owned()))?;
                let c = cond_bit
                    .get(&src)
                    .copied()
                    .ok_or_else(|| ElaborateError::MissingSource(node.label().to_owned()))?;
                nl.output(format!("cond_{}", dfg.value(*v).name()), c);
            }
            _ => {}
        }
    }

    Ok(nl)
}

fn expand_bit(nl: &mut Netlist, bit: GateId, bits: u32) -> Vec<GateId> {
    let zero = nl.constant(false);
    let mut w = vec![bit];
    w.extend(std::iter::repeat_n(zero, bits as usize - 1));
    w
}

/// Build one module: guard-selected port words, one result network per
/// hosted kind, kind-select output mux. Returns `(data word, condition
/// bit)` — either may be absent.
#[allow(clippy::too_many_arguments)]
fn build_module(
    nl: &mut Netlist,
    dfg: &Dfg,
    schedule: &Schedule,
    allocation: &Allocation,
    dp: &DataPath,
    m: DpNodeId,
    word: &HashMap<DpNodeId, Vec<GateId>>,
    cond_bit: &HashMap<DpNodeId, GateId>,
    ctrl: &HashMap<PlaceId, GateId>,
    step_sig: &HashMap<usize, GateId>,
    bits: u32,
) -> (Option<Vec<GateId>>, Option<GateId>) {
    let DpNodeKind::Module {
        id: module_id,
        kinds,
    } = dp.node(m).kind().clone()
    else {
        unreachable!("build_module called on non-module");
    };
    // Port words: mux chain over sources by guard activity.
    let ins = dp.in_arc_ids(m);
    let max_port = ins.iter().map(|&a| dp.arc(a).port()).max().unwrap_or(0);
    let mut ports: Vec<Vec<GateId>> = Vec::new();
    for p in 0..=max_port {
        let mut w: Option<Vec<GateId>> = None;
        for arc in ins.iter().map(|&a| dp.arc(a)).filter(|a| a.port() == p) {
            let src = word
                .get(&arc.from())
                .cloned()
                .or_else(|| cond_bit.get(&arc.from()).map(|&c| expand_bit(nl, c, bits)))
                .expect("module sources resolved before build");
            let sigs: Vec<GateId> = arc.guards().iter().map(|pl| ctrl[pl]).collect();
            let act = WordBuilder::new(nl).or_many(&sigs);
            w = Some(match w {
                None => src,
                Some(prev) => WordBuilder::new(nl).mux(act, &prev, &src),
            });
        }
        ports.push(w.unwrap_or_else(|| WordBuilder::new(nl).const_word(0, bits)));
    }

    // Which control steps run each kind on this module (the function
    // select of a multi-function ALU).
    let mut kind_act: HashMap<OpKind, Vec<GateId>> = HashMap::new();
    if let Some(module) = allocation.module(module_id) {
        for &op in module.ops() {
            let step = schedule.step_of(op);
            let kind = dfg.op(op).kind();
            if let Some(&sig) = step_sig.get(&step) {
                kind_act.entry(kind).or_default().push(sig);
            }
        }
    }
    let _ = ctrl;

    let mut data: Option<Vec<GateId>> = None;
    let mut cond: Option<GateId> = None;
    let mut sorted_kinds: Vec<OpKind> = kinds.iter().copied().collect();
    sorted_kinds.sort();
    for kind in sorted_kinds {
        let a = ports.first().cloned().unwrap_or_default();
        let b = ports.get(1).cloned();
        let mut wb = WordBuilder::new(nl);
        if kind.is_condition() {
            let b = b.clone().unwrap_or_else(|| a.clone());
            let c = match kind {
                OpKind::Lt => wb.lt(&a, &b),
                OpKind::Gt => wb.gt(&a, &b),
                _ => wb.eq(&a, &b),
            };
            cond = Some(match cond {
                None => c,
                Some(prev) => {
                    let acts = kind_act.get(&kind).cloned().unwrap_or_default();
                    let act = WordBuilder::new(nl).or_many(&acts);
                    nl.gate(GateKind::Mux, &[act, prev, c])
                }
            });
            continue;
        }
        let result = match kind {
            OpKind::Add => wb.add(&a, b.as_ref().expect("binary op")),
            OpKind::Sub => wb.sub(&a, b.as_ref().expect("binary op")),
            OpKind::Mul => wb.mul(&a, b.as_ref().expect("binary op")),
            OpKind::And => wb.bitwise(GateKind::And, &a, b.as_deref()),
            OpKind::Or => wb.bitwise(GateKind::Or, &a, b.as_deref()),
            OpKind::Xor => wb.bitwise(GateKind::Xor, &a, b.as_deref()),
            OpKind::Not => wb.bitwise(GateKind::Not, &a, None),
            OpKind::Shl => wb.shl(&a),
            OpKind::Shr => wb.shr(&a),
            OpKind::Mov => a.clone(),
            _ => a.clone(),
        };
        data = Some(match data {
            None => result,
            Some(prev) => {
                let acts = kind_act.get(&kind).cloned().unwrap_or_default();
                let act = WordBuilder::new(nl).or_many(&acts);
                WordBuilder::new(nl).mux(act, &prev, &result)
            }
        });
    }
    (data, cond)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::DfgBuilder;
    use hlts_sched::{list_schedule, ListPriority};

    /// A tiny cycle-accurate simulator over one pattern (bit 0 of the
    /// 64-wide evaluation).
    struct Sim {
        nl: Netlist,
        vals: Vec<u64>,
        order: Vec<GateId>,
    }

    impl Sim {
        fn new(mut nl: Netlist) -> Self {
            let order = nl.topo_levels();
            let vals = vec![0u64; nl.num_gates()];
            let mut s = Sim { nl, vals, order };
            for (i, g) in s.nl.gates().iter().enumerate() {
                if matches!(g.kind(), GateKind::Const1) {
                    s.vals[i] = !0;
                }
            }
            s
        }

        fn set(&mut self, name: &str, value: bool) {
            let id = self
                .nl
                .inputs()
                .iter()
                .copied()
                .find(|&g| self.nl.name(g) == Some(name))
                .unwrap_or_else(|| panic!("no input {name}"));
            self.vals[id.index()] = if value { !0 } else { 0 };
        }

        fn set_word(&mut self, base: &str, value: u64, bits: u32) {
            for i in 0..bits {
                self.set(&format!("{base}[{i}]"), (value >> i) & 1 == 1);
            }
        }

        fn settle(&mut self) {
            for &g in &self.order.clone() {
                let ins: Vec<u64> = self
                    .nl
                    .gate_at(g)
                    .inputs()
                    .iter()
                    .map(|&i| self.vals[i.index()])
                    .collect();
                self.vals[g.index()] = self.nl.gate_at(g).kind().eval(&ins);
            }
        }

        fn clock(&mut self) {
            self.settle();
            let next: Vec<(GateId, u64)> = self
                .nl
                .dffs()
                .iter()
                .map(|&q| (q, self.vals[self.nl.gate_at(q).inputs()[0].index()]))
                .collect();
            for (q, v) in next {
                self.vals[q.index()] = v;
            }
        }

        fn out_word(&mut self, base: &str, bits: u32) -> u64 {
            self.settle();
            let mut v = 0u64;
            for i in 0..bits {
                let name = format!("{base}[{i}]");
                let g = self
                    .nl
                    .outputs()
                    .iter()
                    .find(|(n, _)| *n == name)
                    .unwrap_or_else(|| panic!("no output {name}"))
                    .1;
                v |= (self.vals[g.index()] & 1) << i;
            }
            v
        }
    }

    /// Build `(a + c) * c`, elaborate at 8 bits, and run the schedule
    /// protocol: setup (load a, c), S0 (add), S1 (mul); check the output.
    #[test]
    fn elaborated_netlist_computes_the_behavior() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op("N1", hlts_dfg::OpKind::Add, &[a, c], "t").unwrap();
        let y = b.op("N2", hlts_dfg::OpKind::Mul, &[t, c], "y").unwrap();
        b.mark_output(y);
        let _ = t;
        let dfg = b.finish().unwrap();
        let schedule = list_schedule(&dfg, &[], ListPriority::CriticalPath).unwrap();
        let allocation = Allocation::one_to_one(&dfg);
        let etpn = Etpn::from_parts(&dfg, &schedule, &allocation).unwrap();
        let nl = elaborate(&dfg, &schedule, &allocation, &etpn, 8).unwrap();
        assert!(nl.num_logic_gates() > 50, "multiplier should dominate");

        let mut sim = Sim::new(nl);
        sim.set_word("in_a", 7, 8);
        sim.set_word("in_c", 5, 8);
        // setup: latch inputs (final place doubles as setup)
        sim.set("ctrl_final", true);
        sim.clock();
        sim.set("ctrl_final", false);
        // S0: t = a + c
        sim.set("ctrl_S0", true);
        sim.clock();
        sim.set("ctrl_S0", false);
        // S1: y = t * c
        sim.set("ctrl_S1", true);
        sim.clock();
        sim.set("ctrl_S1", false);
        assert_eq!(sim.out_word("out_y", 8), (7 + 5) * 5);
    }

    /// With no control signal asserted, registers hold their state.
    #[test]
    fn idle_cycles_hold_state() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.op("N1", hlts_dfg::OpKind::Add, &[a, c], "y").unwrap();
        b.mark_output(y);
        let dfg = b.finish().unwrap();
        let schedule = list_schedule(&dfg, &[], ListPriority::CriticalPath).unwrap();
        let allocation = Allocation::one_to_one(&dfg);
        let etpn = Etpn::from_parts(&dfg, &schedule, &allocation).unwrap();
        let nl = elaborate(&dfg, &schedule, &allocation, &etpn, 4).unwrap();
        let mut sim = Sim::new(nl);
        sim.set_word("in_a", 3, 4);
        sim.set_word("in_c", 4, 4);
        sim.set("ctrl_final", true);
        sim.clock();
        sim.set("ctrl_final", false);
        sim.set("ctrl_S0", true);
        sim.clock();
        sim.set("ctrl_S0", false);
        assert_eq!(sim.out_word("out_y", 4), 7);
        // idle clocks change nothing
        sim.clock();
        sim.clock();
        assert_eq!(sim.out_word("out_y", 4), 7);
    }

    /// A multi-function ALU selects its function by control step.
    #[test]
    fn shared_alu_function_select() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let s = b.op("N1", hlts_dfg::OpKind::Add, &[a, c], "s").unwrap();
        let d = b.op("N2", hlts_dfg::OpKind::Sub, &[a, c], "d").unwrap();
        b.mark_output(s);
        b.mark_output(d);
        let dfg = b.finish().unwrap();
        let n1 = dfg.op_by_name("N1").unwrap();
        let n2 = dfg.op_by_name("N2").unwrap();
        let groups = vec![vec![n1, n2]];
        let schedule = list_schedule(&dfg, &groups, ListPriority::CriticalPath).unwrap();
        let mut allocation = Allocation::one_to_one(&dfg);
        allocation
            .merge_modules(&dfg, allocation.module_of(n1), allocation.module_of(n2))
            .unwrap();
        let etpn = Etpn::from_parts(&dfg, &schedule, &allocation).unwrap();
        let nl = elaborate(&dfg, &schedule, &allocation, &etpn, 8).unwrap();
        let mut sim = Sim::new(nl);
        sim.set_word("in_a", 9, 8);
        sim.set_word("in_c", 4, 8);
        sim.set("ctrl_final", true);
        sim.clock();
        sim.set("ctrl_final", false);
        let s0 = format!("ctrl_S{}", schedule.step_of(n1));
        let s1 = format!("ctrl_S{}", schedule.step_of(n2));
        sim.set(&s0, true);
        sim.clock();
        sim.set(&s0, false);
        sim.set(&s1, true);
        sim.clock();
        sim.set(&s1, false);
        assert_eq!(sim.out_word("out_s", 8), 13);
        assert_eq!(sim.out_word("out_d", 8), 5);
    }

    /// Comparator conditions are observable outputs.
    #[test]
    fn condition_output_observable() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let _f = b.op("N1", hlts_dfg::OpKind::Lt, &[a, c], "f").unwrap();
        let dfg = b.finish().unwrap();
        let schedule = list_schedule(&dfg, &[], ListPriority::CriticalPath).unwrap();
        let allocation = Allocation::one_to_one(&dfg);
        let etpn = Etpn::from_parts(&dfg, &schedule, &allocation).unwrap();
        let nl = elaborate(&dfg, &schedule, &allocation, &etpn, 4).unwrap();
        assert!(nl.outputs().iter().any(|(n, _)| n == "cond_f"));
    }
}
