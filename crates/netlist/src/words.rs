//! Word-level construction helpers: parametric-width arithmetic and
//! steering logic built from gates.
//!
//! Words are LSB-first vectors of nets. The generators mirror mid-1990s
//! standard-cell datapath macros: ripple-carry adder/subtractor, ripple
//! magnitude comparator, array multiplier (truncated to the data width),
//! word-wide logic, constant-shift wiring and 2-to-1 mux words.

use crate::{GateId, GateKind, Netlist};

/// Word-level builder over a [`Netlist`].
///
/// # Example
///
/// ```
/// use hlts_netlist::{Netlist, WordBuilder};
///
/// let mut nl = Netlist::new();
/// let a = WordBuilder::input_word(&mut nl, "a", 4);
/// let b = WordBuilder::input_word(&mut nl, "b", 4);
/// let mut wb = WordBuilder::new(&mut nl);
/// let sum = wb.add(&a, &b);
/// assert_eq!(sum.len(), 4);
/// ```
#[derive(Debug)]
pub struct WordBuilder<'a> {
    nl: &'a mut Netlist,
}

impl<'a> WordBuilder<'a> {
    /// Wrap a netlist.
    pub fn new(nl: &'a mut Netlist) -> Self {
        WordBuilder { nl }
    }

    /// Create an input word `name[0..bits]`.
    pub fn input_word(nl: &mut Netlist, name: &str, bits: u32) -> Vec<GateId> {
        (0..bits)
            .map(|i| nl.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Create a constant word holding `value` (two's complement,
    /// truncated).
    pub fn const_word(&mut self, value: i64, bits: u32) -> Vec<GateId> {
        (0..bits)
            .map(|i| self.nl.constant((value >> i) & 1 == 1))
            .collect()
    }

    /// A full adder; returns `(sum, carry)`.
    fn full_adder(&mut self, a: GateId, b: GateId, cin: GateId) -> (GateId, GateId) {
        let axb = self.nl.gate(GateKind::Xor, &[a, b]);
        let sum = self.nl.gate(GateKind::Xor, &[axb, cin]);
        let ab = self.nl.gate(GateKind::And, &[a, b]);
        let cx = self.nl.gate(GateKind::And, &[axb, cin]);
        let cout = self.nl.gate(GateKind::Or, &[ab, cx]);
        (sum, cout)
    }

    /// Ripple-carry addition (result truncated to the word width). The
    /// most significant carry-out is not generated — the result is
    /// truncated, and dead carry logic would only add untestable faults
    /// a synthesis tool would never emit.
    ///
    /// # Panics
    ///
    /// Panics if the words have different widths (all word ops do).
    pub fn add(&mut self, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let mut carry = self.nl.constant(false);
        let mut out = Vec::with_capacity(a.len());
        let last = a.len() - 1;
        for i in 0..a.len() {
            if i == last {
                let axb = self.nl.gate(GateKind::Xor, &[a[i], b[i]]);
                out.push(self.nl.gate(GateKind::Xor, &[axb, carry]));
            } else {
                let (s, c) = self.full_adder(a[i], b[i], carry);
                out.push(s);
                carry = c;
            }
        }
        out
    }

    /// Ripple-carry subtraction `a - b` (two's complement, truncated;
    /// like [`WordBuilder::add`], no dead MSB carry logic).
    pub fn sub(&mut self, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let mut carry = self.nl.constant(true);
        let mut out = Vec::with_capacity(a.len());
        let last = a.len() - 1;
        for i in 0..a.len() {
            let nb = self.nl.gate(GateKind::Not, &[b[i]]);
            if i == last {
                let axb = self.nl.gate(GateKind::Xor, &[a[i], nb]);
                out.push(self.nl.gate(GateKind::Xor, &[axb, carry]));
            } else {
                let (s, c) = self.full_adder(a[i], nb, carry);
                out.push(s);
                carry = c;
            }
        }
        out
    }

    /// Unsigned less-than comparison `a < b` (single-bit result), built
    /// as a ripple comparator.
    pub fn lt(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        assert_eq!(a.len(), b.len(), "width mismatch");
        // lt_i = (!a_i & b_i) | (a_i == b_i) & lt_{i-1}, MSB last
        let mut lt = self.nl.constant(false);
        for i in 0..a.len() {
            let na = self.nl.gate(GateKind::Not, &[a[i]]);
            let below = self.nl.gate(GateKind::And, &[na, b[i]]);
            let eq = self.nl.gate(GateKind::Xnor, &[a[i], b[i]]);
            let keep = self.nl.gate(GateKind::And, &[eq, lt]);
            lt = self.nl.gate(GateKind::Or, &[below, keep]);
        }
        lt
    }

    /// Unsigned greater-than `a > b`.
    pub fn gt(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        self.lt(b, a)
    }

    /// Equality `a == b`.
    pub fn eq(&mut self, a: &[GateId], b: &[GateId]) -> GateId {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let mut acc = self.nl.constant(true);
        for i in 0..a.len() {
            let eq = self.nl.gate(GateKind::Xnor, &[a[i], b[i]]);
            acc = self.nl.gate(GateKind::And, &[acc, eq]);
        }
        acc
    }

    /// Array multiplication truncated to the word width: partial
    /// products ANDed and accumulated by ripple adders. Each row is
    /// added only over the bit positions it actually covers, so no
    /// dead constant-operand adder slices are generated.
    pub fn mul(&mut self, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let n = a.len();
        let mut acc: Vec<GateId> = a
            .iter()
            .map(|&ai| self.nl.gate(GateKind::And, &[ai, b[0]]))
            .collect();
        for (j, &bj) in b.iter().enumerate().skip(1) {
            let row: Vec<GateId> = (0..n - j)
                .map(|i| self.nl.gate(GateKind::And, &[a[i], bj]))
                .collect();
            let upper = self.add(&acc[j..], &row);
            acc.truncate(j);
            acc.extend(upper);
        }
        acc
    }

    /// Bitwise AND/OR/XOR/NOT words.
    pub fn bitwise(&mut self, kind: GateKind, a: &[GateId], b: Option<&[GateId]>) -> Vec<GateId> {
        match b {
            Some(b) => {
                assert_eq!(a.len(), b.len(), "width mismatch");
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| self.nl.gate(kind, &[x, y]))
                    .collect()
            }
            None => a.iter().map(|&x| self.nl.gate(kind, &[x])).collect(),
        }
    }

    /// Logical shift left by one (wired).
    pub fn shl(&mut self, a: &[GateId]) -> Vec<GateId> {
        let zero = self.nl.constant(false);
        let mut out = vec![zero];
        out.extend_from_slice(&a[..a.len() - 1]);
        out
    }

    /// Logical shift right by one (wired).
    pub fn shr(&mut self, a: &[GateId]) -> Vec<GateId> {
        let zero = self.nl.constant(false);
        let mut out: Vec<GateId> = a[1..].to_vec();
        out.push(zero);
        out
    }

    /// 2-to-1 word mux: `sel ? b : a`.
    pub fn mux(&mut self, sel: GateId, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
        assert_eq!(a.len(), b.len(), "width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.nl.gate(GateKind::Mux, &[sel, x, y]))
            .collect()
    }

    /// A register word with load enable: `bits` flip-flops whose next
    /// state is `en ? d : q`. Returns the Q word; call with the D word
    /// later via [`WordBuilder::connect_register`].
    pub fn register(&mut self, name: &str, bits: u32) -> Vec<GateId> {
        (0..bits)
            .map(|i| self.nl.dff(format!("{name}[{i}]")))
            .collect()
    }

    /// Connect a register created with [`WordBuilder::register`]:
    /// `q.next = en ? d : q`.
    pub fn connect_register(&mut self, q: &[GateId], en: GateId, d: &[GateId]) {
        assert_eq!(q.len(), d.len(), "width mismatch");
        for i in 0..q.len() {
            let next = self.nl.gate(GateKind::Mux, &[en, q[i], d[i]]);
            self.nl.connect_dff(q[i], next);
        }
    }

    /// N-way OR (constant 0 for an empty list, a buffer for one input).
    pub fn or_many(&mut self, xs: &[GateId]) -> GateId {
        match xs.len() {
            0 => self.nl.constant(false),
            1 => self.nl.gate(GateKind::Buf, &[xs[0]]),
            _ => self.nl.gate(GateKind::Or, xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate a purely combinational netlist on concrete input words.
    fn eval(nl: &mut Netlist, assign: &[(GateId, bool)]) -> Vec<(String, bool)> {
        let mut vals = vec![0u64; nl.num_gates()];
        for &(g, v) in assign {
            vals[g.index()] = if v { !0 } else { 0 };
        }
        for g in nl.gates().iter().enumerate() {
            if matches!(g.1.kind(), GateKind::Const1) {
                vals[g.0] = !0;
            }
        }
        for g in nl.topo_levels() {
            let ins: Vec<u64> = nl
                .gate_at(g)
                .inputs()
                .iter()
                .map(|&i| vals[i.index()])
                .collect();
            vals[g.index()] = nl.gate_at(g).kind().eval(&ins);
        }
        nl.outputs()
            .iter()
            .map(|(n, g)| (n.clone(), vals[g.index()] & 1 == 1))
            .collect()
    }

    fn word_val(nl: &mut Netlist, word: &[GateId], assigns: &[(GateId, bool)]) -> u64 {
        let mut nl2 = nl.clone();
        for (i, &g) in word.iter().enumerate() {
            nl2.output(format!("w[{i}]"), g);
        }
        let outs = eval(&mut nl2, assigns);
        outs.iter()
            .enumerate()
            .fold(0u64, |acc, (i, (_, v))| acc | ((*v as u64) << i))
    }

    fn assigns_for(word: &[GateId], value: u64) -> Vec<(GateId, bool)> {
        word.iter()
            .enumerate()
            .map(|(i, &g)| (g, (value >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn adder_adds() {
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", 8);
        let b = WordBuilder::input_word(&mut nl, "b", 8);
        let sum = WordBuilder::new(&mut nl).add(&a, &b);
        for (x, y) in [(0u64, 0u64), (3, 5), (200, 100), (255, 1), (127, 128)] {
            let mut asg = assigns_for(&a, x);
            asg.extend(assigns_for(&b, y));
            assert_eq!(word_val(&mut nl, &sum, &asg), (x + y) & 0xff, "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_subtracts() {
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", 8);
        let b = WordBuilder::input_word(&mut nl, "b", 8);
        let d = WordBuilder::new(&mut nl).sub(&a, &b);
        for (x, y) in [(5u64, 3u64), (3, 5), (0, 1), (255, 255), (128, 1)] {
            let mut asg = assigns_for(&a, x);
            asg.extend(assigns_for(&b, y));
            assert_eq!(
                word_val(&mut nl, &d, &asg),
                x.wrapping_sub(y) & 0xff,
                "{x}-{y}"
            );
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", 8);
        let b = WordBuilder::input_word(&mut nl, "b", 8);
        let p = WordBuilder::new(&mut nl).mul(&a, &b);
        for (x, y) in [(0u64, 7u64), (3, 5), (15, 17), (255, 255), (12, 12)] {
            let mut asg = assigns_for(&a, x);
            asg.extend(assigns_for(&b, y));
            assert_eq!(word_val(&mut nl, &p, &asg), (x * y) & 0xff, "{x}*{y}");
        }
    }

    #[test]
    fn comparators_compare() {
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", 6);
        let b = WordBuilder::input_word(&mut nl, "b", 6);
        let mut wb = WordBuilder::new(&mut nl);
        let lt = wb.lt(&a, &b);
        let gt = wb.gt(&a, &b);
        let eq = wb.eq(&a, &b);
        for (x, y) in [(0u64, 0u64), (1, 2), (2, 1), (63, 62), (31, 31)] {
            let mut asg = assigns_for(&a, x);
            asg.extend(assigns_for(&b, y));
            assert_eq!(word_val(&mut nl, &[lt], &asg) == 1, x < y, "{x}<{y}");
            assert_eq!(word_val(&mut nl, &[gt], &asg) == 1, x > y, "{x}>{y}");
            assert_eq!(word_val(&mut nl, &[eq], &asg) == 1, x == y, "{x}=={y}");
        }
    }

    #[test]
    fn shifts_shift() {
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", 8);
        let mut wb = WordBuilder::new(&mut nl);
        let l = wb.shl(&a);
        let r = wb.shr(&a);
        let asg = assigns_for(&a, 0b1011_0110);
        assert_eq!(word_val(&mut nl, &l, &asg), 0b0110_1100);
        assert_eq!(word_val(&mut nl, &r, &asg), 0b0101_1011);
    }

    #[test]
    fn const_word_encodes_value() {
        let mut nl = Netlist::new();
        let mut wb = WordBuilder::new(&mut nl);
        let w = wb.const_word(0x5a, 8);
        assert_eq!(word_val(&mut nl, &w, &[]), 0x5a);
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", 4);
        let b = WordBuilder::input_word(&mut nl, "b", 4);
        let s = nl.input("s");
        let m = WordBuilder::new(&mut nl).mux(s, &a, &b);
        let mut asg = assigns_for(&a, 0b0011);
        asg.extend(assigns_for(&b, 0b1100));
        asg.push((s, false));
        assert_eq!(word_val(&mut nl, &m, &asg), 0b0011);
        let mut asg2 = assigns_for(&a, 0b0011);
        asg2.extend(assigns_for(&b, 0b1100));
        asg2.push((s, true));
        assert_eq!(word_val(&mut nl, &m, &asg2), 0b1100);
    }
}
