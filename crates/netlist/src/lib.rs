//! # hlts-netlist — gate-level elaboration of RTL data paths
//!
//! The structural substrate under the test-generation experiments: a
//! gate-level netlist IR ([`Netlist`], [`GateKind`]), parametric-width
//! word operators ([`WordBuilder`] — ripple adders/subtractors,
//! comparators, array multipliers, mux trees, registers with load
//! enables), and the elaboration of an allocated ETPN data path into a
//! flat netlist ([`elaborate`]).
//!
//! Control handling follows the paper's assumption that "the controller
//! can be modified to support the test plan": every control-step signal
//! (register load enables, mux source selects, ALU function selects)
//! is exposed as an extra primary input, so the ATPG may exercise the
//! data path freely; register contents are observable only through the
//! data path to the primary outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elaborate;
mod gates;
mod verilog;
mod words;

pub use elaborate::{elaborate, elaborate_with, ElaborateError};
pub use gates::{Gate, GateId, GateKind, Netlist};
pub use verilog::to_verilog;
pub use words::WordBuilder;
