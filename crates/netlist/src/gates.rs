//! The flat gate-level IR.
//!
//! Every gate's output is identified by the gate's own [`GateId`]
//! (ISCAS style); primary inputs are `Input` gates, state elements are
//! `Dff` gates whose single input is the D pin and whose output is Q.

use std::fmt;

/// Identifier of a gate (and of the net its output drives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index fits in u32"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Gate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Primary input (no gate inputs).
    Input,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
    /// Buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2-to-1 multiplexer; inputs `[sel, a, b]`, output = `sel ? b : a`.
    Mux,
    /// D flip-flop; input `[d]`, output Q. Reset to 0.
    Dff,
}

impl GateKind {
    /// Whether the kind is a state element.
    #[must_use]
    pub fn is_dff(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Evaluate the gate over 64 parallel patterns (bit-sliced).
    ///
    /// `inputs` are the input values in pin order; `Dff`, `Input` and
    /// constants are not evaluated here (they are sources).
    #[must_use]
    pub fn eval(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Or => inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Nand => !inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Nor => !inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Mux => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0u64,
            GateKind::Input | GateKind::Dff => unreachable!("sources are not evaluated"),
        }
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub(crate) kind: GateKind,
    pub(crate) inputs: Vec<GateId>,
}

impl Gate {
    /// The gate's function.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's input nets in pin order.
    #[must_use]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    names: Vec<Option<String>>,
    inputs: Vec<GateId>,
    outputs: Vec<(String, GateId)>,
    dffs: Vec<GateId>,
    /// Topological order of combinational gates (sources excluded),
    /// rebuilt lazily.
    levels: Option<Vec<GateId>>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, kind: GateKind, inputs: Vec<GateId>) -> GateId {
        let id = GateId::from_index(self.gates.len());
        for &i in &inputs {
            assert!(i.index() < self.gates.len(), "undefined input {i}");
        }
        self.gates.push(Gate { kind, inputs });
        self.names.push(None);
        self.levels = None;
        id
    }

    /// Add a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push(GateKind::Input, Vec::new());
        self.names[id.index()] = Some(name.into());
        self.inputs.push(id);
        id
    }

    /// Add a constant gate.
    pub fn constant(&mut self, value: bool) -> GateId {
        self.push(
            if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            },
            Vec::new(),
        )
    }

    /// Add a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if an input id is undefined, the arity does not fit the
    /// kind, or `kind` is a source kind (`Input`/`Dff`).
    pub fn gate(&mut self, kind: GateKind, inputs: &[GateId]) -> GateId {
        let ok = match kind {
            GateKind::Buf | GateKind::Not => inputs.len() == 1,
            GateKind::Xor | GateKind::Xnor => inputs.len() == 2,
            GateKind::Mux => inputs.len() == 3,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => inputs.len() >= 2,
            GateKind::Const0 | GateKind::Const1 => inputs.is_empty(),
            GateKind::Input | GateKind::Dff => false,
        };
        assert!(ok, "bad arity {} for {kind:?}", inputs.len());
        self.push(kind, inputs.to_vec())
    }

    /// Add a D flip-flop whose D pin is connected later via
    /// [`Netlist::connect_dff`] (registers are created before the logic
    /// computing their next state).
    pub fn dff(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push(GateKind::Dff, Vec::new());
        self.names[id.index()] = Some(name.into());
        self.dffs.push(id);
        id
    }

    /// Connect the D pin of a flip-flop created with [`Netlist::dff`].
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop or is already connected.
    pub fn connect_dff(&mut self, dff: GateId, d: GateId) {
        let g = &mut self.gates[dff.index()];
        assert!(g.kind.is_dff(), "{dff} is not a flip-flop");
        assert!(g.inputs.is_empty(), "{dff} already connected");
        assert!(d.index() < self.names.len(), "undefined D net {d}");
        g.inputs.push(d);
    }

    /// Mark a net as a primary output.
    pub fn output(&mut self, name: impl Into<String>, net: GateId) {
        self.outputs.push((name.into(), net));
    }

    /// Number of gates (including inputs, constants and flip-flops).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// All gates in id order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// A gate by id.
    #[must_use]
    pub fn gate_at(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Optional instance name of a gate.
    #[must_use]
    pub fn name(&self, id: GateId) -> Option<&str> {
        self.names[id.index()].as_deref()
    }

    /// Primary inputs in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs `(name, net)` in creation order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, GateId)] {
        &self.outputs
    }

    /// Flip-flops in creation order.
    #[must_use]
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Topological order of the combinational gates (inputs, constants
    /// and flip-flop outputs are sources and excluded). Cached.
    ///
    /// # Panics
    ///
    /// Panics if the combinational logic contains a cycle (elaboration
    /// never produces one).
    pub fn topo_levels(&mut self) -> Vec<GateId> {
        if let Some(l) = &self.levels {
            return l.clone();
        }
        let n = self.gates.len();
        let mut indeg = vec![0usize; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_dff() {
                continue; // DFF D-pin edges do not participate
            }
            for &inp in &g.inputs {
                indeg[i] += 1;
                fanout[inp.index()].push(i as u32);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if !matches!(
                self.gates[u].kind,
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
            ) {
                order.push(GateId::from_index(u));
            }
            for &v in &fanout[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        assert_eq!(
            queue.len(),
            n,
            "combinational cycle in netlist (elaboration bug)"
        );
        self.levels = Some(order.clone());
        order
    }

    /// Count combinational gates (excluding sources and constants).
    #[must_use]
    pub fn num_logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| {
                !matches!(
                    g.kind,
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate(GateKind::And, &[a, b]);
        nl.output("x", x);
        assert_eq!(nl.num_gates(), 3);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.name(a), Some("a"));
        assert_eq!(nl.num_logic_gates(), 1);
    }

    #[test]
    fn eval_semantics() {
        assert_eq!(GateKind::And.eval(&[0b1100, 0b1010]), 0b1000);
        assert_eq!(GateKind::Or.eval(&[0b1100, 0b1010]), 0b1110);
        assert_eq!(GateKind::Xor.eval(&[0b1100, 0b1010]), 0b0110);
        assert_eq!(GateKind::Not.eval(&[0]), !0u64);
        // mux: sel ? b : a
        assert_eq!(GateKind::Mux.eval(&[0b10, 0b01, 0b11]), 0b11);
        assert_eq!(GateKind::Nand.eval(&[!0, !0]), 0);
        assert_eq!(GateKind::Nor.eval(&[0, 0]), !0u64);
        assert_eq!(GateKind::Xnor.eval(&[0b1, 0b1]), !0u64);
    }

    #[test]
    fn dff_connection() {
        let mut nl = Netlist::new();
        let q = nl.dff("r0");
        let a = nl.input("a");
        let d = nl.gate(GateKind::Xor, &[q, a]);
        nl.connect_dff(q, d);
        assert_eq!(nl.dffs(), &[q]);
        assert_eq!(nl.gate_at(q).inputs(), &[d]);
    }

    #[test]
    #[should_panic(expected = "bad arity")]
    fn arity_checked() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let _ = nl.gate(GateKind::Xor, &[a]);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.gate(GateKind::And, &[a, b]);
        let y = nl.gate(GateKind::Or, &[x, a]);
        let order = nl.topo_levels();
        let px = order.iter().position(|&g| g == x).unwrap();
        let py = order.iter().position(|&g| g == y).unwrap();
        assert!(px < py);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn feedback_through_dff_is_not_a_cycle() {
        let mut nl = Netlist::new();
        let q = nl.dff("r");
        let a = nl.input("a");
        let d = nl.gate(GateKind::Xor, &[q, a]);
        nl.connect_dff(q, d);
        let order = nl.topo_levels();
        assert_eq!(order, vec![d]);
    }
}
