//! Property-based tests for the word-level generators: every arithmetic
//! macro must agree with the corresponding machine arithmetic on random
//! operands at random widths.

use hlts_netlist::{GateId, GateKind, Netlist, WordBuilder};
use proptest::prelude::*;

/// Evaluate a combinational netlist on one pattern.
fn eval(nl: &mut Netlist, assigns: &[(GateId, bool)], word: &[GateId]) -> u64 {
    let mut vals = vec![0u64; nl.num_gates()];
    for (i, g) in nl.gates().iter().enumerate() {
        if matches!(g.kind(), GateKind::Const1) {
            vals[i] = !0;
        }
    }
    for &(g, v) in assigns {
        vals[g.index()] = if v { !0 } else { 0 };
    }
    for g in nl.topo_levels() {
        let ins: Vec<u64> = nl
            .gate_at(g)
            .inputs()
            .iter()
            .map(|&i| vals[i.index()])
            .collect();
        vals[g.index()] = nl.gate_at(g).kind().eval(&ins);
    }
    word.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &g)| acc | ((vals[g.index()] & 1) << i))
}

fn assigns_for(word: &[GateId], value: u64) -> Vec<(GateId, bool)> {
    word.iter()
        .enumerate()
        .map(|(i, &g)| (g, (value >> i) & 1 == 1))
        .collect()
}

proptest! {
    #[test]
    fn adder_matches_machine_addition(bits in 2u32..12, x in any::<u64>(), y in any::<u64>()) {
        let mask = (1u64 << bits) - 1;
        let (x, y) = (x & mask, y & mask);
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", bits);
        let b = WordBuilder::input_word(&mut nl, "b", bits);
        let sum = WordBuilder::new(&mut nl).add(&a, &b);
        let mut asg = assigns_for(&a, x);
        asg.extend(assigns_for(&b, y));
        prop_assert_eq!(eval(&mut nl, &asg, &sum), x.wrapping_add(y) & mask);
    }

    #[test]
    fn subtractor_matches_machine_subtraction(bits in 2u32..12, x in any::<u64>(), y in any::<u64>()) {
        let mask = (1u64 << bits) - 1;
        let (x, y) = (x & mask, y & mask);
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", bits);
        let b = WordBuilder::input_word(&mut nl, "b", bits);
        let diff = WordBuilder::new(&mut nl).sub(&a, &b);
        let mut asg = assigns_for(&a, x);
        asg.extend(assigns_for(&b, y));
        prop_assert_eq!(eval(&mut nl, &asg, &diff), x.wrapping_sub(y) & mask);
    }

    #[test]
    fn multiplier_matches_machine_multiplication(bits in 2u32..10, x in any::<u64>(), y in any::<u64>()) {
        let mask = (1u64 << bits) - 1;
        let (x, y) = (x & mask, y & mask);
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", bits);
        let b = WordBuilder::input_word(&mut nl, "b", bits);
        let prod = WordBuilder::new(&mut nl).mul(&a, &b);
        let mut asg = assigns_for(&a, x);
        asg.extend(assigns_for(&b, y));
        prop_assert_eq!(eval(&mut nl, &asg, &prod), x.wrapping_mul(y) & mask);
    }

    #[test]
    fn comparators_match_machine_comparisons(bits in 2u32..12, x in any::<u64>(), y in any::<u64>()) {
        let mask = (1u64 << bits) - 1;
        let (x, y) = (x & mask, y & mask);
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", bits);
        let b = WordBuilder::input_word(&mut nl, "b", bits);
        let mut wb = WordBuilder::new(&mut nl);
        let lt = wb.lt(&a, &b);
        let gt = wb.gt(&a, &b);
        let eq = wb.eq(&a, &b);
        let mut asg = assigns_for(&a, x);
        asg.extend(assigns_for(&b, y));
        prop_assert_eq!(eval(&mut nl, &asg.clone(), &[lt]) == 1, x < y);
        prop_assert_eq!(eval(&mut nl, &asg.clone(), &[gt]) == 1, x > y);
        prop_assert_eq!(eval(&mut nl, &asg, &[eq]) == 1, x == y);
    }

    #[test]
    fn const_word_roundtrips(bits in 1u32..16, v in any::<i64>()) {
        let mask = (1u64 << bits) - 1;
        let mut nl = Netlist::new();
        let w = WordBuilder::new(&mut nl).const_word(v, bits);
        prop_assert_eq!(eval(&mut nl, &[], &w), (v as u64) & mask);
    }

    #[test]
    fn mux_selects_either_side(bits in 1u32..12, x in any::<u64>(), y in any::<u64>(), sel in any::<bool>()) {
        let mask = (1u64 << bits) - 1;
        let (x, y) = (x & mask, y & mask);
        let mut nl = Netlist::new();
        let a = WordBuilder::input_word(&mut nl, "a", bits);
        let b = WordBuilder::input_word(&mut nl, "b", bits);
        let s = nl.input("s");
        let m = WordBuilder::new(&mut nl).mux(s, &a, &b);
        let mut asg = assigns_for(&a, x);
        asg.extend(assigns_for(&b, y));
        asg.push((s, sel));
        prop_assert_eq!(eval(&mut nl, &asg, &m), if sel { y } else { x });
    }
}
