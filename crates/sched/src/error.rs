use std::error::Error;
use std::fmt;

use hlts_dfg::DfgError;

/// Errors produced by the scheduling algorithms and legality checks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The underlying graph is malformed or cyclic.
    Dfg(DfgError),
    /// A precedence arc `from -> to` is violated: `from` is not scheduled
    /// strictly before `to`.
    PrecedenceViolated {
        /// Name of the earlier operation.
        from: String,
        /// Name of the later operation.
        to: String,
    },
    /// Two operations bound to the same functional unit share a control
    /// step.
    GroupConflict {
        /// First operation's name.
        a: String,
        /// Second operation's name.
        b: String,
        /// The offending control step.
        step: usize,
    },
    /// The schedule does not cover every operation of the graph.
    IncompleteSchedule {
        /// Operations expected.
        expected: usize,
        /// Operations scheduled.
        got: usize,
    },
    /// No feasible schedule exists under the given latency bound.
    Infeasible {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Dfg(e) => write!(f, "graph error: {e}"),
            SchedError::PrecedenceViolated { from, to } => {
                write!(f, "precedence violated: `{from}` must precede `{to}`")
            }
            SchedError::GroupConflict { a, b, step } => write!(
                f,
                "operations `{a}` and `{b}` share a functional unit but both occupy step {step}"
            ),
            SchedError::IncompleteSchedule { expected, got } => {
                write!(f, "schedule covers {got} of {expected} operations")
            }
            SchedError::Infeasible { reason } => write!(f, "no feasible schedule: {reason}"),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Dfg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for SchedError {
    fn from(e: DfgError) -> Self {
        SchedError::Dfg(e)
    }
}
