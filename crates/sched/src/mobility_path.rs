//! Mobility-path scheduling in the style of Lee, Wolf & Jha (ICCAD 1992).
//!
//! Lee et al. schedule operations along *mobility paths* — chains of
//! operations with equal scheduling freedom — under functional-unit
//! resource limits, applying their testability rules: give priority to
//! paths that move values quickly from controllable (primary-input-fed)
//! registers toward observable (primary-output) registers, which shortens
//! the sequential depth the subsequent allocation can achieve (rule SR1).
//!
//! The original paper gives the algorithm only in prose; this module is a
//! documented reconstruction (see DESIGN.md §4.8): operations are
//! processed in increasing mobility (critical paths first, following each
//! chain of equal mobility), and each is placed at the earliest
//! resource-feasible step — earliest placement minimizes the number of
//! register-to-register hops between inputs and outputs, which is the
//! SR1 objective at scheduling time. This is the front end of the paper's
//! **Approach 2** baseline.

use std::collections::HashMap;

use hlts_dfg::{AsapAlap, Dfg, FuClass, OpId};

use crate::{SchedError, Schedule};

/// Per-class functional-unit limits for resource-constrained scheduling.
///
/// A class without an entry is unlimited.
///
/// # Example
///
/// ```
/// use hlts_dfg::FuClass;
/// use hlts_sched::FuLimits;
///
/// let limits = FuLimits::new()
///     .with(FuClass::Multiplier, 2)
///     .with(FuClass::AddSub, 1);
/// assert_eq!(limits.limit(FuClass::Multiplier), Some(2));
/// assert_eq!(limits.limit(FuClass::Logic), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuLimits {
    limits: HashMap<FuClass, usize>,
}

impl FuLimits {
    /// No limits.
    #[must_use]
    pub fn new() -> Self {
        FuLimits::default()
    }

    /// Set the limit for one class (builder style).
    #[must_use]
    pub fn with(mut self, class: FuClass, n: usize) -> Self {
        self.limits.insert(class, n);
        self
    }

    /// The limit for `class`, or `None` when unlimited.
    #[must_use]
    pub fn limit(&self, class: FuClass) -> Option<usize> {
        self.limits.get(&class).copied()
    }
}

/// Schedule `dfg` by mobility-path scheduling under `limits`.
///
/// `latency` is a target; when resource limits force it, the schedule
/// grows beyond the target (resource-constrained mode). `None` targets
/// the critical-path length.
///
/// # Errors
///
/// * [`SchedError::Dfg`] for cyclic precedence;
/// * [`SchedError::Infeasible`] if any class limit is zero while the graph
///   contains an operation of that class.
pub fn mobility_path_schedule(
    dfg: &Dfg,
    limits: &FuLimits,
    latency: Option<usize>,
) -> Result<Schedule, SchedError> {
    let n = dfg.num_ops();
    if n == 0 {
        return Ok(Schedule::from_step_vec(Vec::new()));
    }
    for op in dfg.ops() {
        if limits.limit(op.kind().fu_class()) == Some(0) {
            return Err(SchedError::Infeasible {
                reason: format!(
                    "limit for class `{}` is 0 but `{}` needs it",
                    op.kind().fu_class(),
                    op.name()
                ),
            });
        }
    }
    let aa = AsapAlap::compute(dfg, None)?;
    let target = latency.unwrap_or(aa.latency()).max(aa.latency());

    // Mobility under the target latency.
    let aat = AsapAlap::compute(dfg, Some(target))?;

    // Process order: follow mobility paths — repeatedly take the
    // least-mobile unvisited op (ties: smaller ASAP, then id), then walk
    // down its successors of equal mobility, appending each chain.
    let mut order: Vec<OpId> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut seeds: Vec<OpId> = (0..n).map(OpId::from_index).collect();
    seeds.sort_by_key(|&o| (aat.mobility(o).0, aat.asap(o), o.index()));
    for seed in seeds {
        let mut cur = seed;
        while !visited[cur.index()] {
            visited[cur.index()] = true;
            order.push(cur);
            // continue the path through an equal-mobility successor
            let next = dfg
                .succs(cur)
                .filter(|&s| !visited[s.index()] && aat.mobility(s) == aat.mobility(cur))
                .min_by_key(|&s| (aat.asap(s), s.index()));
            match next {
                Some(s) => cur = s,
                None => break,
            }
        }
    }

    // Greedy placement at the earliest resource-feasible step.
    let mut step_of = vec![usize::MAX; n];
    let mut usage: HashMap<(FuClass, usize), usize> = HashMap::new();
    for &op in &order {
        let i = op.index();
        let class = dfg.op(op).kind().fu_class();
        // Earliest step allowed by already-placed predecessors (unplaced
        // predecessors come later in path order only if they have larger
        // mobility; guard by also respecting ASAP).
        let mut lo = aat.asap(op);
        for p in dfg.preds(op) {
            if step_of[p.index()] != usize::MAX {
                lo = lo.max(step_of[p.index()] + 1);
            }
        }
        // Latest bound from already-placed successors.
        let mut hi = usize::MAX;
        for s in dfg.succs(op) {
            if step_of[s.index()] != usize::MAX {
                hi = hi.min(step_of[s.index()].saturating_sub(1));
            }
        }
        let mut t = lo;
        let mut feasible = true;
        loop {
            if t > hi {
                // Resource pressure pushed this op past an already-pinned
                // successor: the path-order placement is stuck. Fall back
                // to a strict topological greedy, which cannot deadlock.
                feasible = false;
                break;
            }
            let used = usage.get(&(class, t)).copied().unwrap_or(0);
            let free = limits.limit(class).is_none_or(|l| used < l);
            if free {
                break;
            }
            t += 1;
        }
        if !feasible {
            return greedy_topological(dfg, limits, &aat);
        }
        step_of[i] = t;
        *usage.entry((class, t)).or_insert(0) += 1;
    }

    let schedule = Schedule::from_step_vec(step_of);
    schedule.validate(dfg)?;
    Ok(schedule)
}

/// Fallback placement in dependence order (repeated ready-set sweeps,
/// mobility-informed ASAP priority): predecessors are always placed
/// first, so every operation has a feasible step and resource limits
/// can only delay, never deadlock.
fn greedy_topological(
    dfg: &Dfg,
    limits: &FuLimits,
    aat: &AsapAlap,
) -> Result<Schedule, SchedError> {
    let mut order = dfg.topo_order()?;
    order.sort_by_key(|&o| (aat.asap(o), aat.mobility(o).0, o.index()));
    let mut step_of = vec![usize::MAX; dfg.num_ops()];
    let mut usage: HashMap<(FuClass, usize), usize> = HashMap::new();
    let mut placed = 0usize;
    while placed < dfg.num_ops() {
        let mut progressed = false;
        for &op in &order {
            if step_of[op.index()] != usize::MAX {
                continue;
            }
            let preds_placed = dfg
                .preds(op)
                .chain(dfg.weak_preds(op).iter().copied())
                .all(|p| step_of[p.index()] != usize::MAX);
            if !preds_placed {
                continue;
            }
            let mut lo = 0usize;
            for p in dfg.preds(op) {
                lo = lo.max(step_of[p.index()] + 1);
            }
            for p in dfg.weak_preds(op) {
                lo = lo.max(step_of[p.index()]);
            }
            let class = dfg.op(op).kind().fu_class();
            let mut t = lo;
            while limits
                .limit(class)
                .is_some_and(|l| usage.get(&(class, t)).copied().unwrap_or(0) >= l)
            {
                t += 1;
            }
            step_of[op.index()] = t;
            *usage.entry((class, t)).or_insert(0) += 1;
            placed += 1;
            progressed = true;
        }
        if !progressed {
            return Err(SchedError::Infeasible {
                reason: "cyclic precedence in fallback placement".into(),
            });
        }
    }
    let schedule = Schedule::from_step_vec(step_of);
    schedule.validate(dfg)?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn mixed_dfg() -> Dfg {
        // two mul chains + one add, as in small HAL-like kernels
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let m1 = b.op("M1", OpKind::Mul, &[a, c], "m1").unwrap();
        let _m2 = b.op("M2", OpKind::Mul, &[m1, c], "m2").unwrap();
        let m3 = b.op("M3", OpKind::Mul, &[a, c], "m3").unwrap();
        let _m4 = b.op("M4", OpKind::Mul, &[m3, c], "m4").unwrap();
        let s = b.op("A1", OpKind::Add, &[a, c], "s").unwrap();
        b.mark_output(s);
        b.finish().unwrap()
    }

    #[test]
    fn respects_single_multiplier_limit() {
        let d = mixed_dfg();
        let limits = FuLimits::new().with(FuClass::Multiplier, 1);
        let s = mobility_path_schedule(&d, &limits, None).unwrap();
        s.validate(&d).unwrap();
        for st in 0..s.num_steps() {
            let muls = s
                .ops_in_step(st)
                .iter()
                .filter(|&&o| d.op(o).kind() == OpKind::Mul)
                .count();
            assert!(muls <= 1, "step {st} has {muls} muls:\n{}", s.render(&d));
        }
        // 4 muls on 1 multiplier: at least 4 steps
        assert!(s.num_steps() >= 4);
    }

    #[test]
    fn unlimited_matches_asap_latency() {
        let d = mixed_dfg();
        let s = mobility_path_schedule(&d, &FuLimits::new(), None).unwrap();
        assert_eq!(s.num_steps(), 2);
    }

    #[test]
    fn zero_limit_rejected() {
        let d = mixed_dfg();
        let limits = FuLimits::new().with(FuClass::Multiplier, 0);
        assert!(matches!(
            mobility_path_schedule(&d, &limits, None),
            Err(SchedError::Infeasible { .. })
        ));
    }

    #[test]
    fn critical_chain_scheduled_first_and_contiguously() {
        let d = mixed_dfg();
        let limits = FuLimits::new().with(FuClass::Multiplier, 2);
        let s = mobility_path_schedule(&d, &limits, None).unwrap();
        let m1 = d.op_by_name("M1").unwrap();
        let m2 = d.op_by_name("M2").unwrap();
        assert_eq!(s.step_of(m1), 0);
        assert_eq!(s.step_of(m2), 1);
    }

    #[test]
    fn empty_graph_ok() {
        let d = DfgBuilder::new("e").finish().unwrap();
        let s = mobility_path_schedule(&d, &FuLimits::new(), None).unwrap();
        assert_eq!(s.num_ops(), 0);
    }

    #[test]
    fn honors_extra_precedence() {
        let mut d = mixed_dfg();
        let m1 = d.op_by_name("M1").unwrap();
        let a1 = d.op_by_name("A1").unwrap();
        d.add_precedence(a1, m1).unwrap();
        let s = mobility_path_schedule(&d, &FuLimits::new(), None).unwrap();
        assert!(s.step_of(a1) < s.step_of(m1));
    }
}
