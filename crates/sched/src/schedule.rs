use std::cell::RefCell;
use std::fmt;
use std::mem;

use hlts_dfg::{Dfg, OpId};

use crate::{GroupSource, SchedError};

/// An assignment of every operation of a [`Dfg`] to a 0-based control step.
///
/// A schedule is *legal* for a graph when every precedence arc
/// `a -> b` satisfies `step(a) < step(b)` ([`Schedule::validate`]), and
/// legal for a binding when operations sharing a functional unit occupy
/// pairwise distinct steps ([`Schedule::validate_groups`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    step_of: Vec<usize>,
    latency: usize,
}

impl Schedule {
    /// Build a schedule from a per-operation step vector (indexed by
    /// [`OpId::index`]).
    ///
    /// The latency is `max(step) + 1` (or 0 for an empty vector).
    #[must_use]
    pub fn from_step_vec(step_of: Vec<usize>) -> Self {
        let latency = step_of.iter().copied().max().map_or(0, |m| m + 1);
        Schedule { step_of, latency }
    }

    /// A 64-bit fingerprint of the full step assignment (FNV-1a over
    /// the per-op step vector). Two schedules of the same graph collide
    /// only if they assign every operation the same step — used to key
    /// the ΔE/ΔH evaluation cache in `hlts-core`.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.step_of.len() as u64);
        for &s in &self.step_of {
            mix(s as u64);
        }
        h
    }

    /// The control step of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range for the scheduled graph.
    #[must_use]
    pub fn step_of(&self, op: OpId) -> usize {
        self.step_of[op.index()]
    }

    /// Number of control steps (latency).
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.latency
    }

    /// Number of scheduled operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.step_of.len()
    }

    /// Operations scheduled in `step`, in id order.
    #[must_use]
    pub fn ops_in_step(&self, step: usize) -> Vec<OpId> {
        (0..self.step_of.len())
            .filter(|&i| self.step_of[i] == step)
            .map(OpId::from_index)
            .collect()
    }

    /// The per-step operation lists, `0..num_steps()`.
    #[must_use]
    pub fn steps(&self) -> Vec<Vec<OpId>> {
        let mut steps = vec![Vec::new(); self.latency];
        for (i, &s) in self.step_of.iter().enumerate() {
            steps[s].push(OpId::from_index(i));
        }
        steps
    }

    /// Check that the schedule covers `dfg` and respects its full
    /// precedence relation (data dependences plus extra arcs).
    ///
    /// # Errors
    ///
    /// [`SchedError::IncompleteSchedule`] or
    /// [`SchedError::PrecedenceViolated`].
    pub fn validate(&self, dfg: &Dfg) -> Result<(), SchedError> {
        if self.step_of.len() != dfg.num_ops() {
            return Err(SchedError::IncompleteSchedule {
                expected: dfg.num_ops(),
                got: self.step_of.len(),
            });
        }
        for op in dfg.ops() {
            for p in dfg.preds(op.id()) {
                if self.step_of[p.index()] >= self.step_of[op.id().index()] {
                    return Err(SchedError::PrecedenceViolated {
                        from: dfg.op(p).name().to_owned(),
                        to: op.name().to_owned(),
                    });
                }
            }
            for &p in dfg.weak_preds(op.id()) {
                if self.step_of[p.index()] > self.step_of[op.id().index()] {
                    return Err(SchedError::PrecedenceViolated {
                        from: dfg.op(p).name().to_owned(),
                        to: op.name().to_owned(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Check that operations inside each conflict group occupy pairwise
    /// distinct steps (required when they share one functional unit).
    ///
    /// # Errors
    ///
    /// [`SchedError::GroupConflict`] naming the first clashing pair.
    pub fn validate_groups(&self, dfg: &Dfg, groups: &[Vec<OpId>]) -> Result<(), SchedError> {
        self.validate_groups_src(dfg, groups)
    }

    /// [`Schedule::validate_groups`] generalized over any
    /// [`GroupSource`] — validating directly against e.g. a module
    /// binding's own operation lists, without building a
    /// `Vec<Vec<OpId>>`. Allocation-free on success.
    ///
    /// # Errors
    ///
    /// [`SchedError::GroupConflict`] naming the first clashing pair.
    pub fn validate_groups_src(
        &self,
        dfg: &Dfg,
        groups: impl GroupSource,
    ) -> Result<(), SchedError> {
        let mut bad: Option<SchedError> = None;
        groups.for_each_group(|_, group| {
            if bad.is_some() {
                return;
            }
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if self.step_of[a.index()] == self.step_of[b.index()] {
                        bad = Some(SchedError::GroupConflict {
                            a: dfg.op(a).name().to_owned(),
                            b: dfg.op(b).name().to_owned(),
                            step: self.step_of[a.index()],
                        });
                        return;
                    }
                }
            }
        });
        match bad {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The raw per-op step assignment, indexed by [`OpId::index`].
    #[must_use]
    pub fn step_slice(&self) -> &[usize] {
        &self.step_of
    }

    /// Overwrite this schedule's assignment with `steps`, returning the
    /// journaled difference (one `(op, previous step)` move per changed
    /// operation — the same record [`Schedule::delta_from`] produces).
    /// The delta's move buffer comes from a thread-local pool and this
    /// schedule's storage is reused, so the steady state allocates
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `steps` has a different length (the schedules must
    /// belong to the same graph).
    pub fn replace_steps(&mut self, steps: &[usize]) -> ScheduleDelta {
        assert_eq!(
            self.step_of.len(),
            steps.len(),
            "schedule delta requires schedules of the same graph"
        );
        let mut moves = delta_pool_acquire();
        for (i, (&now, was)) in steps.iter().zip(&mut self.step_of).enumerate() {
            if now != *was {
                moves.push((OpId::from_index(i), *was));
                *was = now;
            }
        }
        self.latency = self.step_of.iter().copied().max().map_or(0, |m| m + 1);
        ScheduleDelta { moves }
    }

    /// The fine-grained moves that turned `prev` into `self`: one
    /// `(op, previous step)` record per operation whose step changed.
    /// This is the schedule half of the synthesis transaction journal —
    /// a tentative reschedule is undone by [`Schedule::revert`]ing the
    /// delta instead of keeping a full copy of the old assignment.
    ///
    /// # Panics
    ///
    /// Panics if the two schedules cover different operation counts
    /// (they must belong to the same graph).
    #[must_use]
    pub fn delta_from(&self, prev: &Schedule) -> ScheduleDelta {
        assert_eq!(
            self.step_of.len(),
            prev.step_of.len(),
            "schedule delta requires schedules of the same graph"
        );
        let mut moves = delta_pool_acquire();
        moves.extend(
            self.step_of
                .iter()
                .zip(&prev.step_of)
                .enumerate()
                .filter(|(_, (now, was))| now != was)
                .map(|(i, (_, &was))| (OpId::from_index(i), was)),
        );
        ScheduleDelta { moves }
    }

    /// Undo a [`ScheduleDelta`] taken against this schedule's
    /// predecessor: every moved operation returns to its previous step
    /// and the latency is recomputed. After
    /// `let d = new.delta_from(&old);` the call `new.revert(&d)` makes
    /// `new` bit-identical to `old` (the latency invariant
    /// `max(step) + 1` is re-established, exactly as
    /// [`Schedule::from_step_vec`] computes it).
    pub fn revert(&mut self, delta: &ScheduleDelta) {
        for &(op, was) in &delta.moves {
            self.step_of[op.index()] = was;
        }
        self.latency = self.step_of.iter().copied().max().map_or(0, |m| m + 1);
    }

    /// Render the schedule as a step-by-step listing using the graph's
    /// operation names — the form of the paper's Figures 2 and 3.
    #[must_use]
    pub fn render(&self, dfg: &Dfg) -> String {
        let mut out = String::new();
        for (s, ops) in self.steps().iter().enumerate() {
            let names: Vec<&str> = ops.iter().map(|&o| dfg.op(o).name()).collect();
            out.push_str(&format!("step {:>2}: {}\n", s, names.join("  ")));
        }
        out
    }
}

/// The recorded difference between two schedules of one graph: which
/// operations moved and where they were. Produced by
/// [`Schedule::delta_from`]/[`Schedule::replace_steps`], undone by
/// [`Schedule::revert`].
///
/// Move buffers are recycled through a thread-local pool on drop, so
/// the journal of a steady-state trial-and-rollback cycle reuses
/// capacity instead of allocating.
#[derive(Debug, PartialEq, Eq)]
pub struct ScheduleDelta {
    /// `(op, previous step)` for every operation whose step changed.
    moves: Vec<(OpId, usize)>,
}

// Thread-local recycling pool for delta move buffers (bounded so a
// pathological burst of deltas cannot pin memory).
thread_local! {
    static DELTA_POOL: RefCell<Vec<Vec<(OpId, usize)>>> = const { RefCell::new(Vec::new()) };
}
const DELTA_POOL_CAP: usize = 64;

fn delta_pool_acquire() -> Vec<(OpId, usize)> {
    DELTA_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

impl Drop for ScheduleDelta {
    fn drop(&mut self) {
        let mut moves = mem::take(&mut self.moves);
        if moves.capacity() > 0 {
            moves.clear();
            DELTA_POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < DELTA_POOL_CAP {
                    p.push(moves);
                }
            });
        }
    }
}

impl Clone for ScheduleDelta {
    fn clone(&self) -> Self {
        let mut moves = delta_pool_acquire();
        moves.extend_from_slice(&self.moves);
        ScheduleDelta { moves }
    }
}

impl ScheduleDelta {
    /// Number of per-operation moves recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the two schedules were identical.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule({} ops in {} steps)",
            self.step_of.len(),
            self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn two_op_dfg() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t1, c], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn step_queries() {
        let s = Schedule::from_step_vec(vec![0, 1]);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.step_of(OpId::from_index(1)), 1);
        assert_eq!(s.ops_in_step(0), vec![OpId::from_index(0)]);
        assert_eq!(s.steps().len(), 2);
    }

    #[test]
    fn validate_accepts_legal() {
        let d = two_op_dfg();
        Schedule::from_step_vec(vec![0, 1]).validate(&d).unwrap();
    }

    #[test]
    fn validate_rejects_precedence_violation() {
        let d = two_op_dfg();
        let e = Schedule::from_step_vec(vec![1, 1])
            .validate(&d)
            .unwrap_err();
        assert!(matches!(e, SchedError::PrecedenceViolated { .. }));
        let e = Schedule::from_step_vec(vec![1, 0])
            .validate(&d)
            .unwrap_err();
        assert!(matches!(e, SchedError::PrecedenceViolated { .. }));
    }

    #[test]
    fn validate_rejects_incomplete() {
        let d = two_op_dfg();
        let e = Schedule::from_step_vec(vec![0]).validate(&d).unwrap_err();
        assert!(matches!(e, SchedError::IncompleteSchedule { .. }));
    }

    #[test]
    fn group_conflicts_detected() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        b.op("N2", OpKind::Add, &[a, c], "t2").unwrap();
        let d = b.finish().unwrap();
        let s = Schedule::from_step_vec(vec![0, 0]);
        let groups = vec![vec![OpId::from_index(0), OpId::from_index(1)]];
        let e = s.validate_groups(&d, &groups).unwrap_err();
        assert!(matches!(e, SchedError::GroupConflict { step: 0, .. }));
        let s2 = Schedule::from_step_vec(vec![0, 1]);
        s2.validate_groups(&d, &groups).unwrap();
    }

    #[test]
    fn render_lists_names() {
        let d = two_op_dfg();
        let s = Schedule::from_step_vec(vec![0, 1]);
        let r = s.render(&d);
        assert!(r.contains("step  0: N1"));
        assert!(r.contains("step  1: N2"));
    }
}
