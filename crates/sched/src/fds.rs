//! Force-directed scheduling (Paulin & Knight, IEEE TCAD 8(6), 1989).
//!
//! FDS minimizes expected functional-unit concurrency under a fixed
//! latency: each unscheduled operation is uniformly distributed over its
//! time frame `[asap, alap]`; *distribution graphs* accumulate the expected
//! number of concurrent operations per FU class per step; and the
//! operation/step pair with the lowest total *force* (self force plus the
//! force its assignment exerts on predecessor/successor frames) is fixed
//! each iteration.
//!
//! This is the scheduling front end of the paper's **Approach 1** baseline
//! ("force-directed scheduling without testability consideration followed
//! by the same allocation algorithm as in Approach 2").

use std::collections::HashMap;

use hlts_dfg::{AsapAlap, Dfg, FuClass, OpId};

use crate::{SchedError, Schedule};

/// Schedule `dfg` with force-directed scheduling at the given latency.
///
/// `latency = None` uses the critical-path length (the tightest feasible
/// latency), which is how the DATE'98 comparison configures Approach 1.
///
/// # Errors
///
/// * [`SchedError::Dfg`] for cyclic precedence;
/// * [`SchedError::Infeasible`] if `latency` is below the critical path.
///
/// # Example
///
/// ```
/// use hlts_dfg::parse;
/// use hlts_sched::fds_schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = parse("dfg t { input a, b; N1: x = a * b; N2: y = a + b;
///                  N3: z = x + y; output z; }")?;
/// let s = fds_schedule(&dfg, None)?;
/// assert_eq!(s.num_steps(), 2);
/// # Ok(())
/// # }
/// ```
pub fn fds_schedule(dfg: &Dfg, latency: Option<usize>) -> Result<Schedule, SchedError> {
    let aa = AsapAlap::compute(dfg, latency).map_err(|e| match e {
        hlts_dfg::DfgError::InvalidId(msg) => SchedError::Infeasible { reason: msg },
        other => SchedError::Dfg(other),
    })?;
    let latency = aa.latency();
    let n = dfg.num_ops();
    if n == 0 {
        return Ok(Schedule::from_step_vec(Vec::new()));
    }

    // Current time frames, collapsing as operations are fixed.
    let mut lo: Vec<usize> = (0..n).map(|i| aa.asap(OpId::from_index(i))).collect();
    let mut hi: Vec<usize> = (0..n).map(|i| aa.alap(OpId::from_index(i))).collect();
    let mut fixed = vec![false; n];

    for _round in 0..n {
        // Anything already collapsed counts as fixed.
        for i in 0..n {
            if lo[i] == hi[i] {
                fixed[i] = true;
            }
        }
        if fixed.iter().all(|&f| f) {
            break;
        }

        let dg = distribution_graphs(dfg, &lo, &hi, latency);

        // Evaluate the force of every feasible (op, step) assignment.
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            for t in lo[i]..=hi[i] {
                let force = assignment_force(dfg, &dg, &lo, &hi, i, t);
                let better = match best {
                    None => true,
                    Some((bf, bi, bt)) => {
                        force < bf - 1e-12 || ((force - bf).abs() <= 1e-12 && (i, t) < (bi, bt))
                    }
                };
                if better {
                    best = Some((force, i, t));
                }
            }
        }
        let (_, i, t) = best.expect("at least one unfixed op");
        lo[i] = t;
        hi[i] = t;
        fixed[i] = true;
        propagate_frames(dfg, &mut lo, &mut hi, i);
    }

    let schedule = Schedule::from_step_vec(lo);
    schedule.validate(dfg)?;
    Ok(schedule)
}

/// Expected concurrency per (FU class, step).
fn distribution_graphs(
    dfg: &Dfg,
    lo: &[usize],
    hi: &[usize],
    latency: usize,
) -> HashMap<FuClass, Vec<f64>> {
    let mut dg: HashMap<FuClass, Vec<f64>> = HashMap::new();
    for op in dfg.ops() {
        let i = op.id().index();
        let class = op.kind().fu_class();
        let row = dg.entry(class).or_insert_with(|| vec![0.0; latency]);
        let width = (hi[i] - lo[i] + 1) as f64;
        for slot in row.iter_mut().take(hi[i] + 1).skip(lo[i]) {
            *slot += 1.0 / width;
        }
    }
    dg
}

/// Probability-weighted DG sum of op `i` over frame `[l, h]`.
fn frame_force(dfg: &Dfg, dg: &HashMap<FuClass, Vec<f64>>, i: usize, l: usize, h: usize) -> f64 {
    let class = dfg.ops()[i].kind().fu_class();
    let row = &dg[&class];
    let width = (h - l + 1) as f64;
    (l..=h).map(|s| row[s]).sum::<f64>() / width
}

/// Total force of tentatively fixing op `i` at step `t`: the self force
/// plus the force change on every predecessor/successor whose frame the
/// assignment tightens (one level of look-ahead, per Paulin & Knight).
fn assignment_force(
    dfg: &Dfg,
    dg: &HashMap<FuClass, Vec<f64>>,
    lo: &[usize],
    hi: &[usize],
    i: usize,
    t: usize,
) -> f64 {
    let op = OpId::from_index(i);
    let mut force = frame_force(dfg, dg, i, t, t) - frame_force(dfg, dg, i, lo[i], hi[i]);
    for p in dfg.preds(op) {
        let j = p.index();
        if hi[j] >= t {
            // predecessor must now finish by t-1
            let new_hi = t.saturating_sub(1).min(hi[j]);
            if new_hi < hi[j] && new_hi >= lo[j] {
                force +=
                    frame_force(dfg, dg, j, lo[j], new_hi) - frame_force(dfg, dg, j, lo[j], hi[j]);
            }
        }
    }
    for s in dfg.succs(op) {
        let j = s.index();
        if lo[j] <= t {
            let new_lo = (t + 1).max(lo[j]);
            if new_lo > lo[j] && new_lo <= hi[j] {
                force +=
                    frame_force(dfg, dg, j, new_lo, hi[j]) - frame_force(dfg, dg, j, lo[j], hi[j]);
            }
        }
    }
    force
}

/// After fixing op `i`, tighten the frames of all transitively affected
/// operations.
fn propagate_frames(dfg: &Dfg, lo: &mut [usize], hi: &mut [usize], i: usize) {
    // Backward: predecessors must end before lo[i].
    let mut stack = vec![OpId::from_index(i)];
    while let Some(u) = stack.pop() {
        for p in dfg.preds(u) {
            let j = p.index();
            let bound = lo[u.index()].saturating_sub(1);
            if hi[j] > bound {
                hi[j] = bound;
                stack.push(p);
            }
        }
    }
    // Forward: successors must start after hi[i].
    let mut stack = vec![OpId::from_index(i)];
    while let Some(u) = stack.pop() {
        for s in dfg.succs(u) {
            let j = s.index();
            let bound = hi[u.index()] + 1;
            if lo[j] < bound {
                lo[j] = bound;
                stack.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    /// Two independent multiply chains of length 2 and a latency of 3:
    /// FDS should stagger the multiplies to use one multiplier.
    #[test]
    fn fds_balances_multipliers() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let m1 = b.op("M1", OpKind::Mul, &[a, c], "m1").unwrap();
        let _m2 = b.op("M2", OpKind::Mul, &[m1, c], "m2").unwrap();
        let m3 = b.op("M3", OpKind::Mul, &[a, c], "m3").unwrap();
        let _m4 = b.op("M4", OpKind::Mul, &[m3, c], "m4").unwrap();
        let d = b.finish().unwrap();
        let s = fds_schedule(&d, Some(4)).unwrap();
        s.validate(&d).unwrap();
        // count max concurrent multiplies
        let max_conc = (0..s.num_steps())
            .map(|st| s.ops_in_step(st).len())
            .max()
            .unwrap();
        assert!(
            max_conc <= 1,
            "FDS should serialize the chains at latency 4, got schedule\n{}",
            s.render(&d)
        );
    }

    #[test]
    fn fds_at_critical_path_is_legal() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Sub, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let s = fds_schedule(&d, None).unwrap();
        assert_eq!(s.num_steps(), 2);
        s.validate(&d).unwrap();
    }

    #[test]
    fn fds_rejects_infeasible_latency() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let _ = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let d = b.finish().unwrap();
        assert!(matches!(
            fds_schedule(&d, Some(1)),
            Err(SchedError::Infeasible { .. })
        ));
    }

    #[test]
    fn fds_empty_graph() {
        let b = DfgBuilder::new("empty");
        let d = b.finish().unwrap();
        let s = fds_schedule(&d, None).unwrap();
        assert_eq!(s.num_steps(), 0);
    }

    #[test]
    fn fds_is_deterministic() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        for i in 0..6 {
            b.op(&format!("N{i}"), OpKind::Add, &[a, c], &format!("t{i}"))
                .unwrap();
        }
        let d = b.finish().unwrap();
        let s1 = fds_schedule(&d, Some(3)).unwrap();
        let s2 = fds_schedule(&d, Some(3)).unwrap();
        assert_eq!(s1, s2);
    }
}
