//! # hlts-sched — scheduling substrate
//!
//! Operation scheduling for the `hlts` high-level test synthesis system:
//!
//! * [`Schedule`] — an assignment of operations to control steps, with
//!   legality checking against a [`Dfg`]'s precedence relation and against
//!   *conflict groups* (sets of operations bound to one functional unit);
//! * [`list_schedule`] — priority list scheduling under precedence and
//!   conflict-group constraints; this is the rescheduling engine the
//!   integrated synthesis algorithm invokes after each merger;
//! * [`fds_schedule`] — force-directed scheduling (Paulin & Knight,
//!   TCAD 1989), the front end of the paper's *Approach 1* baseline;
//! * [`mobility_path_schedule`] — mobility-path scheduling in the style of
//!   Lee, Wolf & Jha (ICCAD 1992), the front end of the paper's
//!   *Approach 2* baseline;
//! * [`Lifetimes`] — variable lifetime analysis over a schedule, the input
//!   to register allocation and register-merge legality checks.
//!
//! [`Dfg`]: hlts_dfg::Dfg

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fds;
mod lifetime;
mod list;
mod mobility_path;
mod schedule;

pub use error::SchedError;
pub use fds::fds_schedule;
pub use lifetime::{Interval, Lifetimes};
pub use list::{list_schedule, list_schedule_src, reschedule_in_place, GroupSource, ListPriority};
pub use mobility_path::{mobility_path_schedule, FuLimits};
pub use schedule::{Schedule, ScheduleDelta};
