//! Variable lifetime analysis over a schedule.
//!
//! Register-transfer timing convention: a functional unit reads its source
//! registers at the *beginning* of its control step and its result is
//! latched at the *end* of the step. A value defined in step `s` therefore
//! occupies a register from step `s + 1` on, and a value last read in step
//! `d` must be held through step `d`.
//!
//! Two values can share a register exactly when their intervals are
//! disjoint — the legality condition for the paper's register mergers.
//!
//! **Loop-carried pairs** `(src, dst)` get special treatment: the source
//! must stay alive until the loop edge (it *is* the next iteration's
//! `dst`), so its death extends to the latency `L`; and unless the pair
//! shares one register, a copy into `dst`'s register fires at the end of
//! the last step, so `dst` additionally occupies the virtual slot
//! `[L, L]`. The pair itself is exempted from the `[L, L]` clash (the
//! copy carries the very value the source holds).

use std::cell::RefCell;
use std::mem;

use hlts_dfg::{Dfg, ValueId, ValueKind};

use crate::Schedule;

/// A closed interval of control steps `[birth, death]` during which a value
/// occupies a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First step the value occupies a register.
    pub birth: usize,
    /// Last step the value must be held.
    pub death: usize,
}

impl Interval {
    /// Whether two intervals overlap (i.e. the values cannot share a
    /// register).
    #[must_use]
    pub fn overlaps(self, other: Interval) -> bool {
        self.birth <= other.death && other.birth <= self.death
    }

    /// Interval length in steps (at least 1).
    #[must_use]
    pub fn len(self) -> usize {
        self.death - self.birth + 1
    }

    /// Intervals are never empty under this convention.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }
}

/// The computed lifetime of every value of a [`Dfg`] under a [`Schedule`].
///
/// Backing buffers are recycled through a thread-local pool on drop:
/// the per-trial lifetime analysis of the synthesis inner loop reuses
/// capacity instead of allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifetimes {
    intervals: Vec<Option<Interval>>,
    /// Additional loop-copy occupation (`[L, L]`) per value.
    extra: Vec<Option<Interval>>,
    /// Loop-carried pairs by value index (src, dst).
    loop_pairs: Vec<(usize, usize)>,
    latency: usize,
}

/// Recycled buffer set for [`Lifetimes`]. Bounded pool per thread.
struct LtBufs {
    intervals: Vec<Option<Interval>>,
    extra: Vec<Option<Interval>>,
    loop_pairs: Vec<(usize, usize)>,
}

thread_local! {
    static LT_POOL: RefCell<Vec<LtBufs>> = const { RefCell::new(Vec::new()) };
}
const LT_POOL_CAP: usize = 16;

fn lt_pool_acquire() -> LtBufs {
    LT_POOL.with(|p| p.borrow_mut().pop()).unwrap_or(LtBufs {
        intervals: Vec::new(),
        extra: Vec::new(),
        loop_pairs: Vec::new(),
    })
}

impl Drop for Lifetimes {
    fn drop(&mut self) {
        let mut bufs = LtBufs {
            intervals: mem::take(&mut self.intervals),
            extra: mem::take(&mut self.extra),
            loop_pairs: mem::take(&mut self.loop_pairs),
        };
        if bufs.intervals.capacity() == 0 {
            return;
        }
        bufs.intervals.clear();
        bufs.extra.clear();
        bufs.loop_pairs.clear();
        LT_POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < LT_POOL_CAP {
                p.push(bufs);
            }
        });
    }
}

impl Lifetimes {
    /// Compute lifetimes.
    ///
    /// Conventions (following the paper's treatment of the benchmarks —
    /// its register tables share registers among primary inputs, e.g. Ex's
    /// `R: a, c, x`, which requires inputs loaded on demand rather than
    /// preloaded, and share a register between two outputs, which requires
    /// outputs observed when produced rather than held to the end):
    ///
    /// * a **primary input** is latched from its port at the start of the
    ///   step of its first consumer and held through its last consumer's
    ///   step;
    /// * an **intermediate** defined in step `s` is born at `s + 1` and
    ///   held through its last consumer's step;
    /// * a **primary output** is born at `def + 1`, observed there, and
    ///   held through any later internal consumer's step;
    /// * a **constant** occupies no register (hardwired): no interval;
    /// * a **condition flag** feeds the controller, not a data register:
    ///   no interval;
    /// * a value with no consumers is held one step;
    /// * **loop-carried sources** are held through the latency; their
    ///   destinations additionally occupy the virtual end-of-iteration
    ///   slot (see the module docs).
    #[must_use]
    pub fn compute(dfg: &Dfg, schedule: &Schedule) -> Self {
        let latency = schedule.num_steps();
        let LtBufs {
            mut intervals,
            mut extra,
            mut loop_pairs,
        } = lt_pool_acquire();
        for v in dfg.values() {
            let id = v.id();
            let interval = match v.kind() {
                ValueKind::Const(_) => None,
                _ if v.is_condition() => None,
                ValueKind::Input => {
                    let birth = dfg
                        .uses_of(id)
                        .iter()
                        .map(|&o| schedule.step_of(o))
                        .min()
                        .unwrap_or(0);
                    let death = dfg
                        .uses_of(id)
                        .iter()
                        .map(|&o| schedule.step_of(o))
                        .max()
                        .unwrap_or(birth);
                    Some(Interval { birth, death })
                }
                // Outputs and intermediates share the defined-value rule;
                // `ValueKind` is non-exhaustive and unknown future kinds
                // are treated the same conservative way (they get a
                // register).
                _ => {
                    let birth = dfg.def_of(id).map(|o| schedule.step_of(o) + 1).unwrap_or(0);
                    let death = dfg
                        .uses_of(id)
                        .iter()
                        .map(|&o| schedule.step_of(o))
                        .max()
                        .unwrap_or(birth);
                    Some(Interval {
                        birth,
                        death: death.max(birth),
                    })
                }
            };
            intervals.push(interval);
        }
        // Loop-carried handling.
        extra.resize(dfg.num_values(), None);
        for &(src, dst) in dfg.loop_carried() {
            loop_pairs.push((src.index(), dst.index()));
            if let Some(iv) = intervals[src.index()].as_mut() {
                iv.death = iv.death.max(latency);
            }
            if intervals[dst.index()].is_some() {
                extra[dst.index()] = Some(Interval {
                    birth: latency,
                    death: latency,
                });
            }
        }
        Lifetimes {
            intervals,
            extra,
            loop_pairs,
            latency,
        }
    }

    /// The primary interval of `value`, or `None` when the value occupies
    /// no register (constants, condition flags).
    #[must_use]
    pub fn interval(&self, value: ValueId) -> Option<Interval> {
        self.intervals[value.index()]
    }

    /// The loop-copy occupation slot of `value`, if any.
    #[must_use]
    pub fn loop_slot(&self, value: ValueId) -> Option<Interval> {
        self.extra[value.index()]
    }

    /// Whether the two values may share a register: every interval of one
    /// is disjoint from every interval of the other. A loop-carried
    /// `(src, dst)` pair is exempt from clashes involving the pair's own
    /// extended/virtual slots (the copy carries the source's value).
    #[must_use]
    pub fn disjoint(&self, a: ValueId, b: ValueId) -> bool {
        let (ia, ib) = (a.index(), b.index());
        let (Some(pa), Some(pb)) = (self.intervals[ia], self.intervals[ib]) else {
            return false;
        };
        let is_loop_pair = self
            .loop_pairs
            .iter()
            .any(|&(s, d)| (s, d) == (ia, ib) || (s, d) == (ib, ia));
        if is_loop_pair {
            // Compare the un-extended cores: the src tail and dst loop
            // slot describe the same physical hand-over.
            let core = |i: usize, iv: Interval| -> Interval {
                let extended = self
                    .loop_pairs
                    .iter()
                    .any(|&(s, _)| s == i && iv.death >= self.latency);
                if extended && iv.birth < self.latency {
                    Interval {
                        birth: iv.birth,
                        death: iv.death.min(self.latency.saturating_sub(1)),
                    }
                } else {
                    iv
                }
            };
            return !core(ia, pa).overlaps(core(ib, pb));
        }
        if pa.overlaps(pb) {
            return false;
        }
        if let Some(ea) = self.extra[ia] {
            if ea.overlaps(pb) || self.extra[ib].is_some_and(|eb| eb.overlaps(ea)) {
                return false;
            }
        }
        if let Some(eb) = self.extra[ib] {
            if eb.overlaps(pa) {
                return false;
            }
        }
        true
    }

    /// The latency the analysis was computed for.
    #[must_use]
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Maximum number of simultaneously live values over all steps
    /// (including the virtual end-of-iteration slot) — a lower bound on
    /// the number of registers any allocation needs.
    #[must_use]
    pub fn max_live(&self) -> usize {
        (0..=self.latency)
            .map(|s| {
                (0..self.intervals.len())
                    .filter(|&i| {
                        self.intervals[i].is_some_and(|iv| iv.birth <= s && s <= iv.death)
                            || self.extra[i].is_some_and(|iv| iv.birth <= s && s <= iv.death)
                    })
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Ids of all values that occupy a register, sorted by increasing
    /// birth then death (left-edge order).
    #[must_use]
    pub fn register_values(&self) -> Vec<ValueId> {
        let mut ids: Vec<ValueId> = (0..self.intervals.len())
            .filter(|&i| self.intervals[i].is_some())
            .map(ValueId::from_index)
            .collect();
        ids.sort_by_key(|&v| {
            let iv = self.intervals[v.index()].expect("filtered to Some");
            (iv.birth, iv.death, v.index())
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    /// a,b inputs; t = a+b (step 0); y = t*b (step 1); y output.
    fn fixture() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let bb = b.input("b");
        let t = b.op("N1", OpKind::Add, &[a, bb], "t").unwrap();
        let y = b.op("N2", OpKind::Mul, &[t, bb], "y").unwrap();
        b.mark_output(y);
        (b.finish().unwrap(), Schedule::from_step_vec(vec![0, 1]))
    }

    #[test]
    fn input_lifetime_spans_uses() {
        let (d, s) = fixture();
        let lt = Lifetimes::compute(&d, &s);
        let a = d.value_by_name("a").unwrap();
        let b = d.value_by_name("b").unwrap();
        assert_eq!(lt.interval(a), Some(Interval { birth: 0, death: 0 }));
        // b is read by N2 in step 1.
        assert_eq!(lt.interval(b), Some(Interval { birth: 0, death: 1 }));
    }

    #[test]
    fn intermediate_born_after_def() {
        let (d, s) = fixture();
        let lt = Lifetimes::compute(&d, &s);
        let t = d.value_by_name("t").unwrap();
        assert_eq!(lt.interval(t), Some(Interval { birth: 1, death: 1 }));
    }

    #[test]
    fn output_observed_at_production() {
        let (d, s) = fixture();
        let lt = Lifetimes::compute(&d, &s);
        let y = d.value_by_name("y").unwrap();
        assert_eq!(lt.interval(y), Some(Interval { birth: 2, death: 2 }));
    }

    #[test]
    fn disjointness() {
        let (d, s) = fixture();
        let lt = Lifetimes::compute(&d, &s);
        let a = d.value_by_name("a").unwrap();
        let t = d.value_by_name("t").unwrap();
        let b = d.value_by_name("b").unwrap();
        // a dies at 0, t born at 1: can share.
        assert!(lt.disjoint(a, t));
        // b alive through 1, t born 1: overlap.
        assert!(!lt.disjoint(b, t));
    }

    #[test]
    fn constants_and_conditions_have_no_register() {
        let mut b = DfgBuilder::new("t");
        let three = b.constant("three", 3);
        let x = b.input("x");
        let a = b.input("a");
        let p = b.op("N1", OpKind::Mul, &[three, x], "p").unwrap();
        let c = b.op("N2", OpKind::Lt, &[p, a], "c").unwrap();
        let d = b.finish().unwrap();
        let s = Schedule::from_step_vec(vec![0, 1]);
        let lt = Lifetimes::compute(&d, &s);
        assert_eq!(lt.interval(three), None);
        assert_eq!(lt.interval(c), None);
        assert!(!lt.disjoint(three, c));
    }

    #[test]
    fn max_live_counts_overlaps() {
        let (d, s) = fixture();
        let lt = Lifetimes::compute(&d, &s);
        assert_eq!(lt.max_live(), 2);
    }

    #[test]
    fn register_values_left_edge_order() {
        let (d, s) = fixture();
        let lt = Lifetimes::compute(&d, &s);
        let order = lt.register_values();
        let births: Vec<usize> = order
            .iter()
            .map(|&v| lt.interval(v).expect("register value").birth)
            .collect();
        let mut sorted = births.clone();
        sorted.sort_unstable();
        assert_eq!(births, sorted);
    }

    #[test]
    fn interval_overlap_is_symmetric() {
        let x = Interval { birth: 0, death: 2 };
        let y = Interval { birth: 2, death: 5 };
        let z = Interval { birth: 3, death: 4 };
        assert!(x.overlaps(y) && y.overlaps(x));
        assert!(!x.overlaps(z) && !z.overlaps(x));
        assert_eq!(x.len(), 3);
    }

    /// x1 = x + dx with loop x1 -> x.
    fn loopy() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new("loopy");
        let x = b.input("x");
        let dx = b.input("dx");
        let x1 = b.op("N1", OpKind::Add, &[x, dx], "x1").unwrap();
        let y = b.op("N2", OpKind::Mul, &[x1, dx], "y").unwrap();
        b.mark_output(x1);
        b.mark_output(y);
        b.loop_carried(x1, x);
        (b.finish().unwrap(), Schedule::from_step_vec(vec![0, 1]))
    }

    #[test]
    fn loop_source_held_to_latency() {
        let (d, s) = loopy();
        let lt = Lifetimes::compute(&d, &s);
        let x1 = d.value_by_name("x1").unwrap();
        // born 1, used at 1, but held to the loop edge (latency 2)
        assert_eq!(lt.interval(x1), Some(Interval { birth: 1, death: 2 }));
    }

    #[test]
    fn loop_destination_occupies_copy_slot() {
        let (d, s) = loopy();
        let lt = Lifetimes::compute(&d, &s);
        let x = d.value_by_name("x").unwrap();
        assert_eq!(lt.loop_slot(x), Some(Interval { birth: 2, death: 2 }));
        // a value born at the latency slot (output y, def step 1 -> born
        // 2) cannot share x's register: the loop copy lands there.
        let y = d.value_by_name("y").unwrap();
        assert!(!lt.disjoint(x, y));
    }

    #[test]
    fn loop_pair_itself_may_share() {
        let (d, s) = loopy();
        let lt = Lifetimes::compute(&d, &s);
        let x = d.value_by_name("x").unwrap();
        let x1 = d.value_by_name("x1").unwrap();
        // x dies at 0, x1 born 1; the extended tail / copy slot belongs
        // to the pair's own hand-over.
        assert!(lt.disjoint(x, x1));
    }
}
