//! Priority list scheduling under precedence and conflict-group
//! constraints.
//!
//! This is the rescheduling engine of the integrated synthesis algorithm:
//! after every module/register merger the accumulated scheduling
//! constraints (precedence arcs added to the [`Dfg`] plus the conflict
//! groups induced by the module binding) are re-solved into a concrete
//! schedule.
//!
//! Two entry points share one solver core: [`list_schedule`] builds a
//! fresh [`Schedule`] (cold path — initial schedules, oracle), while
//! [`reschedule_in_place`] rewrites an existing schedule and returns the
//! journaled delta without allocating: all working vectors live in a
//! thread-local scratch arena whose capacity is reused across trials.

use std::cell::RefCell;

use hlts_dfg::{AsapAlap, Dfg, OpId};

use crate::{SchedError, Schedule, ScheduleDelta};

/// Priority function for [`list_schedule`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ListPriority {
    /// Critical-path first: smaller ALAP time wins (classic list
    /// scheduling; minimizes latency growth).
    #[default]
    CriticalPath,
    /// Stability: keep operations close to a previous schedule — the
    /// vector is the previous per-op step (indexed by [`OpId::index`]);
    /// ties broken by ALAP.
    Previous(Vec<usize>),
}

/// A source of conflict groups: operations inside one group share a
/// functional unit and must occupy pairwise distinct control steps.
///
/// The solver consumes groups through this trait so that callers whose
/// groups already exist as slices (e.g. the module binding's per-module
/// operation lists) plug in without building a `Vec<Vec<OpId>>` per
/// reschedule.
pub trait GroupSource {
    /// Number of groups yielded by [`GroupSource::for_each_group`].
    fn num_groups(&self) -> usize;
    /// Visit each group as `(index, members)`, `index` in `0..num_groups()`.
    fn for_each_group(&self, f: impl FnMut(usize, &[OpId]));
}

impl GroupSource for [Vec<OpId>] {
    fn num_groups(&self) -> usize {
        self.len()
    }
    fn for_each_group(&self, mut f: impl FnMut(usize, &[OpId])) {
        for (gi, g) in self.iter().enumerate() {
            f(gi, g);
        }
    }
}

impl<G: GroupSource + ?Sized> GroupSource for &G {
    fn num_groups(&self) -> usize {
        (**self).num_groups()
    }
    fn for_each_group(&self, f: impl FnMut(usize, &[OpId])) {
        (**self).for_each_group(f);
    }
}

/// Reusable working set of the list scheduler. One lives per thread;
/// every vector is cleared (not freed) between runs, so steady-state
/// scheduling performs no heap allocation.
struct SchedScratch {
    group_of: Vec<u32>,
    unsched_preds: Vec<u32>,
    ready: Vec<OpId>,
    step_of: Vec<usize>,
    group_busy: Vec<bool>,
    aa: AsapAlap,
}

thread_local! {
    static SCRATCH: RefCell<SchedScratch> = RefCell::new(SchedScratch {
        group_of: Vec::new(),
        unsched_preds: Vec::new(),
        ready: Vec::new(),
        step_of: Vec::new(),
        group_busy: Vec::new(),
        aa: AsapAlap::default(),
    });
}

const NO_GROUP: u32 = u32::MAX;

/// The solver core: schedules `dfg` into `s.step_of`.
///
/// `prev` is the previous per-op step assignment for the stability
/// priority (`None` selects the critical-path priority). Exactly the
/// greedy fixpoint of the original `list_schedule` — the priority keys,
/// tie-breaks and placement order are bit-identical.
fn solve(
    dfg: &Dfg,
    groups: impl GroupSource,
    prev: Option<&[usize]>,
    s: &mut SchedScratch,
) -> Result<(), SchedError> {
    let n = dfg.num_ops();
    let SchedScratch {
        group_of,
        unsched_preds,
        ready,
        step_of,
        group_busy,
        aa,
    } = s;
    // Map op -> group index; detect overlap.
    group_of.clear();
    group_of.resize(n, NO_GROUP);
    let num_groups = groups.num_groups();
    {
        let mut bad: Option<SchedError> = None;
        groups.for_each_group(|gi, g| {
            if bad.is_some() {
                return;
            }
            let gi = u32::try_from(gi).expect("group index fits in u32");
            for &op in g {
                if op.index() >= n {
                    bad = Some(SchedError::Infeasible {
                        reason: format!("group references unknown op {op}"),
                    });
                    return;
                }
                if group_of[op.index()] != NO_GROUP && group_of[op.index()] != gi {
                    bad = Some(SchedError::Infeasible {
                        reason: format!(
                            "operation `{}` appears in two conflict groups",
                            dfg.op(op).name()
                        ),
                    });
                    return;
                }
                group_of[op.index()] = gi;
            }
        });
        if let Some(e) = bad {
            return Err(e);
        }
    }

    aa.recompute(dfg, None)?;

    unsched_preds.clear();
    ready.clear();
    for i in 0..n {
        let o = OpId::from_index(i);
        let deg = dfg.preds(o).count() + dfg.weak_preds(o).len();
        unsched_preds.push(u32::try_from(deg).expect("degree fits in u32"));
        if deg == 0 {
            ready.push(o);
        }
    }
    step_of.clear();
    step_of.resize(n, usize::MAX);
    let mut scheduled = 0usize;
    let mut step = 0usize;
    while scheduled < n {
        group_busy.clear();
        group_busy.resize(num_groups, false);
        // Place ready ops in `step`, best priority first, iterating to a
        // fixpoint: an op enabled by a *weak* predecessor placed in this
        // very step may legally join the same step (strict predecessors
        // always push their successors to step + 1 via the lower bound).
        loop {
            // The priority key ends in the unique op index, so the order
            // is total and an unstable sort is deterministic (and does
            // not allocate, unlike the stable sort).
            ready.sort_unstable_by_key(|&o| match prev {
                None => (aa.alap(o), aa.asap(o), o.index()),
                Some(p) => (
                    p.get(o.index()).copied().unwrap_or(usize::MAX),
                    aa.alap(o),
                    o.index(),
                ),
            });
            let mut placed_any = false;
            let mut i = 0;
            while i < ready.len() {
                let op = ready[i];
                let lower = dfg
                    .preds(op)
                    .map(|p| step_of[p.index()] + 1)
                    .chain(dfg.weak_preds(op).iter().map(|p| step_of[p.index()]))
                    .max()
                    .unwrap_or(0);
                let g = group_of[op.index()];
                if lower <= step && (g == NO_GROUP || !group_busy[g as usize]) {
                    if g != NO_GROUP {
                        group_busy[g as usize] = true;
                    }
                    step_of[op.index()] = step;
                    scheduled += 1;
                    ready.remove(i);
                    placed_any = true;
                    for succ in dfg.succs(op) {
                        unsched_preds[succ.index()] -= 1;
                        if unsched_preds[succ.index()] == 0 {
                            ready.push(succ);
                        }
                    }
                    for &succ in dfg.weak_succs(op) {
                        unsched_preds[succ.index()] -= 1;
                        if unsched_preds[succ.index()] == 0 {
                            ready.push(succ);
                        }
                    }
                } else {
                    i += 1;
                }
            }
            if !placed_any {
                break;
            }
        }
        step += 1;
        // Safety valve: with a DAG and per-step conflicts the loop always
        // makes progress once `ready` is non-empty; a fully empty ready
        // list with unscheduled ops means a cycle, which AsapAlap already
        // rejected.
        debug_assert!(step <= 2 * n + 2, "list scheduler failed to converge");
    }
    Ok(())
}

/// Schedule `dfg` by priority list scheduling.
///
/// `groups` are conflict groups: operations inside one group are bound to
/// the same functional unit and therefore must occupy pairwise distinct
/// control steps. Operations absent from every group are unconstrained
/// (each has its own unit).
///
/// The returned schedule is legal for `dfg` and `groups` and is as short
/// as the greedy heuristic achieves (not necessarily optimal — list
/// scheduling is the standard polynomial heuristic here).
///
/// # Errors
///
/// * [`SchedError::Dfg`] if the precedence relation is cyclic;
/// * [`SchedError::Infeasible`] if an operation appears in two different
///   groups (a binding must partition operations).
///
/// # Example
///
/// ```
/// use hlts_dfg::{DfgBuilder, OpKind};
/// use hlts_sched::{list_schedule, ListPriority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("t");
/// let (a, c) = (b.input("a"), b.input("c"));
/// let t1 = b.op("N1", OpKind::Add, &[a, c], "t1")?;
/// let t2 = b.op("N2", OpKind::Add, &[a, c], "t2")?;
/// # let _ = (t1, t2);
/// let dfg = b.finish()?;
/// // Independent ops, but sharing one adder forces two steps:
/// let groups = vec![dfg.ops().iter().map(|o| o.id()).collect()];
/// let s = list_schedule(&dfg, &groups, ListPriority::CriticalPath)?;
/// assert_eq!(s.num_steps(), 2);
/// # Ok(())
/// # }
/// ```
pub fn list_schedule(
    dfg: &Dfg,
    groups: &[Vec<OpId>],
    priority: ListPriority,
) -> Result<Schedule, SchedError> {
    list_schedule_src(dfg, groups, priority)
}

/// [`list_schedule`] generalized over any [`GroupSource`].
///
/// # Errors
///
/// As for [`list_schedule`].
pub fn list_schedule_src(
    dfg: &Dfg,
    groups: impl GroupSource,
    priority: ListPriority,
) -> Result<Schedule, SchedError> {
    SCRATCH.with(|cell| {
        let s = &mut cell.borrow_mut();
        let prev = match &priority {
            ListPriority::CriticalPath => None,
            ListPriority::Previous(p) => Some(p.as_slice()),
        };
        solve(dfg, groups, prev, s)?;
        let schedule = Schedule::from_step_vec(s.step_of.clone());
        debug_assert!(schedule.validate(dfg).is_ok());
        Ok(schedule)
    })
}

/// Re-solve `schedule` for the current constraints of `dfg` and
/// `groups`, using the schedule's own current steps as the stability
/// priority (the `ListPriority::Previous` policy, without copying the
/// previous assignment). The schedule is updated in place and the
/// journaled difference is returned — its move buffer comes from a
/// thread-local pool, so a steady-state reschedule performs zero heap
/// allocations.
///
/// # Errors
///
/// As for [`list_schedule`]. On error the schedule is left unchanged.
///
/// # Panics
///
/// Panics if `schedule` does not cover `dfg` (different op count).
pub fn reschedule_in_place(
    dfg: &Dfg,
    groups: impl GroupSource,
    schedule: &mut Schedule,
    priority: ListPriority,
) -> Result<ScheduleDelta, SchedError> {
    assert_eq!(
        schedule.num_ops(),
        dfg.num_ops(),
        "reschedule requires a schedule of the same graph"
    );
    SCRATCH.with(|cell| {
        let s = &mut cell.borrow_mut();
        {
            let prev = match &priority {
                ListPriority::CriticalPath => None,
                ListPriority::Previous(p) => Some(p.as_slice()),
            };
            // Default stability policy: the schedule's own steps.
            let prev = prev.or(Some(schedule.step_slice()));
            solve(dfg, groups, prev, s)?;
        }
        debug_assert!(Schedule::from_step_vec(s.step_of.clone()).validate(dfg).is_ok());
        Ok(schedule.replace_steps(&s.step_of))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn four_independent_adds() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        for i in 0..4 {
            b.op(&format!("N{i}"), OpKind::Add, &[a, c], &format!("t{i}"))
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn no_groups_is_single_step() {
        let d = four_independent_adds();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        assert_eq!(s.num_steps(), 1);
    }

    #[test]
    fn one_group_serializes() {
        let d = four_independent_adds();
        let all: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let s = list_schedule(&d, std::slice::from_ref(&all), ListPriority::CriticalPath).unwrap();
        assert_eq!(s.num_steps(), 4);
        s.validate_groups(&d, &[all]).unwrap();
    }

    #[test]
    fn two_groups_of_two() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![vec![ids[0], ids[1]], vec![ids[2], ids[3]]];
        let s = list_schedule(&d, &groups, ListPriority::CriticalPath).unwrap();
        assert_eq!(s.num_steps(), 2);
        s.validate_groups(&d, &groups).unwrap();
    }

    #[test]
    fn respects_precedence_and_groups_together() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let _t2 = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let _t3 = b.op("N3", OpKind::Add, &[a, c], "t3").unwrap();
        let d = b.finish().unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        // all three share one adder
        let groups = vec![vec![n1, n2, n3]];
        let s = list_schedule(&d, &groups, ListPriority::CriticalPath).unwrap();
        s.validate(&d).unwrap();
        s.validate_groups(&d, &groups).unwrap();
        assert!(s.step_of(n1) < s.step_of(n2));
        assert_eq!(s.num_steps(), 3);
    }

    #[test]
    fn overlapping_groups_rejected() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![vec![ids[0], ids[1]], vec![ids[1], ids[2]]];
        assert!(matches!(
            list_schedule(&d, &groups, ListPriority::CriticalPath),
            Err(SchedError::Infeasible { .. })
        ));
    }

    #[test]
    fn previous_priority_is_stable() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![ids.clone()];
        // previous schedule put N3 first
        let prev = vec![3, 2, 1, 0];
        let s = list_schedule(&d, &groups, ListPriority::Previous(prev)).unwrap();
        assert_eq!(s.step_of(ids[3]), 0);
        assert_eq!(s.step_of(ids[0]), 3);
    }

    #[test]
    fn extra_precedence_honored() {
        let mut d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        d.add_precedence(ids[2], ids[0]).unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        assert!(s.step_of(ids[2]) < s.step_of(ids[0]));
    }

    #[test]
    fn reschedule_in_place_matches_previous_policy() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![ids.clone()];
        let prev = vec![3usize, 2, 1, 0];
        let expect = list_schedule(&d, &groups, ListPriority::Previous(prev.clone())).unwrap();
        let mut sched = Schedule::from_step_vec(prev);
        let delta =
            reschedule_in_place(&d, groups.as_slice(), &mut sched, ListPriority::default())
                .unwrap();
        assert_eq!(sched, expect);
        // reverting the delta restores the original assignment
        sched.revert(&delta);
        assert_eq!(sched, Schedule::from_step_vec(vec![3, 2, 1, 0]));
    }

    #[test]
    fn reschedule_in_place_error_leaves_schedule_untouched() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let overlapping = vec![vec![ids[0], ids[1]], vec![ids[1], ids[2]]];
        let mut sched = Schedule::from_step_vec(vec![0, 1, 2, 3]);
        let before = sched.clone();
        assert!(reschedule_in_place(
            &d,
            overlapping.as_slice(),
            &mut sched,
            ListPriority::default()
        )
        .is_err());
        assert_eq!(sched, before);
    }
}
