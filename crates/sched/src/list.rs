//! Priority list scheduling under precedence and conflict-group
//! constraints.
//!
//! This is the rescheduling engine of the integrated synthesis algorithm:
//! after every module/register merger the accumulated scheduling
//! constraints (precedence arcs added to the [`Dfg`] plus the conflict
//! groups induced by the module binding) are re-solved into a concrete
//! schedule.

use hlts_dfg::{AsapAlap, Dfg, OpId};

use crate::{SchedError, Schedule};

/// Priority function for [`list_schedule`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ListPriority {
    /// Critical-path first: smaller ALAP time wins (classic list
    /// scheduling; minimizes latency growth).
    #[default]
    CriticalPath,
    /// Stability: keep operations close to a previous schedule — the
    /// vector is the previous per-op step (indexed by [`OpId::index`]);
    /// ties broken by ALAP.
    Previous(Vec<usize>),
}

/// Schedule `dfg` by priority list scheduling.
///
/// `groups` are conflict groups: operations inside one group are bound to
/// the same functional unit and therefore must occupy pairwise distinct
/// control steps. Operations absent from every group are unconstrained
/// (each has its own unit).
///
/// The returned schedule is legal for `dfg` and `groups` and is as short
/// as the greedy heuristic achieves (not necessarily optimal — list
/// scheduling is the standard polynomial heuristic here).
///
/// # Errors
///
/// * [`SchedError::Dfg`] if the precedence relation is cyclic;
/// * [`SchedError::Infeasible`] if an operation appears in two different
///   groups (a binding must partition operations).
///
/// # Example
///
/// ```
/// use hlts_dfg::{DfgBuilder, OpKind};
/// use hlts_sched::{list_schedule, ListPriority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("t");
/// let (a, c) = (b.input("a"), b.input("c"));
/// let t1 = b.op("N1", OpKind::Add, &[a, c], "t1")?;
/// let t2 = b.op("N2", OpKind::Add, &[a, c], "t2")?;
/// # let _ = (t1, t2);
/// let dfg = b.finish()?;
/// // Independent ops, but sharing one adder forces two steps:
/// let groups = vec![dfg.ops().iter().map(|o| o.id()).collect()];
/// let s = list_schedule(&dfg, &groups, ListPriority::CriticalPath)?;
/// assert_eq!(s.num_steps(), 2);
/// # Ok(())
/// # }
/// ```
pub fn list_schedule(
    dfg: &Dfg,
    groups: &[Vec<OpId>],
    priority: ListPriority,
) -> Result<Schedule, SchedError> {
    let n = dfg.num_ops();
    // Map op -> group index; detect overlap.
    let mut group_of = vec![usize::MAX; n];
    for (gi, g) in groups.iter().enumerate() {
        for &op in g {
            if op.index() >= n {
                return Err(SchedError::Infeasible {
                    reason: format!("group references unknown op {op}"),
                });
            }
            if group_of[op.index()] != usize::MAX && group_of[op.index()] != gi {
                return Err(SchedError::Infeasible {
                    reason: format!(
                        "operation `{}` appears in two conflict groups",
                        dfg.op(op).name()
                    ),
                });
            }
            group_of[op.index()] = gi;
        }
    }

    let aa = AsapAlap::compute(dfg, None)?;
    let prio = |op: OpId| -> (usize, usize, usize) {
        match &priority {
            ListPriority::CriticalPath => (aa.alap(op), aa.asap(op), op.index()),
            ListPriority::Previous(prev) => {
                let p = prev.get(op.index()).copied().unwrap_or(usize::MAX);
                (p, aa.alap(op), op.index())
            }
        }
    };

    let mut unsched_preds: Vec<usize> = (0..n)
        .map(|i| {
            let o = OpId::from_index(i);
            dfg.preds(o).len() + dfg.weak_preds(o).len()
        })
        .collect();
    let mut ready: Vec<OpId> = (0..n)
        .filter(|&i| unsched_preds[i] == 0)
        .map(OpId::from_index)
        .collect();
    let mut step_of = vec![usize::MAX; n];
    let mut scheduled = 0usize;
    let mut step = 0usize;
    while scheduled < n {
        let mut group_busy: Vec<bool> = vec![false; groups.len()];
        // Place ready ops in `step`, best priority first, iterating to a
        // fixpoint: an op enabled by a *weak* predecessor placed in this
        // very step may legally join the same step (strict predecessors
        // always push their successors to step + 1 via the lower bound).
        loop {
            ready.sort_by_key(|&o| prio(o));
            let mut placed_any = false;
            let mut i = 0;
            while i < ready.len() {
                let op = ready[i];
                let lower = dfg
                    .preds(op)
                    .iter()
                    .map(|p| step_of[p.index()] + 1)
                    .chain(dfg.weak_preds(op).iter().map(|p| step_of[p.index()]))
                    .max()
                    .unwrap_or(0);
                let g = group_of[op.index()];
                if lower <= step && (g == usize::MAX || !group_busy[g]) {
                    if g != usize::MAX {
                        group_busy[g] = true;
                    }
                    step_of[op.index()] = step;
                    scheduled += 1;
                    ready.remove(i);
                    placed_any = true;
                    for s in dfg.succs(op).into_iter().chain(dfg.weak_succs(op)) {
                        unsched_preds[s.index()] -= 1;
                        if unsched_preds[s.index()] == 0 {
                            ready.push(s);
                        }
                    }
                } else {
                    i += 1;
                }
            }
            if !placed_any {
                break;
            }
        }
        step += 1;
        // Safety valve: with a DAG and per-step conflicts the loop always
        // makes progress once `ready` is non-empty; a fully empty ready
        // list with unscheduled ops means a cycle, which AsapAlap already
        // rejected.
        debug_assert!(step <= 2 * n + 2, "list scheduler failed to converge");
    }
    let schedule = Schedule::from_step_vec(step_of);
    debug_assert!(schedule.validate(dfg).is_ok());
    debug_assert!(schedule.validate_groups(dfg, groups).is_ok());
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};

    fn four_independent_adds() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        for i in 0..4 {
            b.op(&format!("N{i}"), OpKind::Add, &[a, c], &format!("t{i}"))
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn no_groups_is_single_step() {
        let d = four_independent_adds();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        assert_eq!(s.num_steps(), 1);
    }

    #[test]
    fn one_group_serializes() {
        let d = four_independent_adds();
        let all: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let s = list_schedule(&d, std::slice::from_ref(&all), ListPriority::CriticalPath).unwrap();
        assert_eq!(s.num_steps(), 4);
        s.validate_groups(&d, &[all]).unwrap();
    }

    #[test]
    fn two_groups_of_two() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![vec![ids[0], ids[1]], vec![ids[2], ids[3]]];
        let s = list_schedule(&d, &groups, ListPriority::CriticalPath).unwrap();
        assert_eq!(s.num_steps(), 2);
        s.validate_groups(&d, &groups).unwrap();
    }

    #[test]
    fn respects_precedence_and_groups_together() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let _t2 = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let _t3 = b.op("N3", OpKind::Add, &[a, c], "t3").unwrap();
        let d = b.finish().unwrap();
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let n3 = d.op_by_name("N3").unwrap();
        // all three share one adder
        let groups = vec![vec![n1, n2, n3]];
        let s = list_schedule(&d, &groups, ListPriority::CriticalPath).unwrap();
        s.validate(&d).unwrap();
        s.validate_groups(&d, &groups).unwrap();
        assert!(s.step_of(n1) < s.step_of(n2));
        assert_eq!(s.num_steps(), 3);
    }

    #[test]
    fn overlapping_groups_rejected() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![vec![ids[0], ids[1]], vec![ids[1], ids[2]]];
        assert!(matches!(
            list_schedule(&d, &groups, ListPriority::CriticalPath),
            Err(SchedError::Infeasible { .. })
        ));
    }

    #[test]
    fn previous_priority_is_stable() {
        let d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        let groups = vec![ids.clone()];
        // previous schedule put N3 first
        let prev = vec![3, 2, 1, 0];
        let s = list_schedule(&d, &groups, ListPriority::Previous(prev)).unwrap();
        assert_eq!(s.step_of(ids[3]), 0);
        assert_eq!(s.step_of(ids[0]), 3);
    }

    #[test]
    fn extra_precedence_honored() {
        let mut d = four_independent_adds();
        let ids: Vec<OpId> = d.ops().iter().map(|o| o.id()).collect();
        d.add_precedence(ids[2], ids[0]).unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        assert!(s.step_of(ids[2]) < s.step_of(ids[0]));
    }
}
