//! Property-based tests for the scheduling substrate: every scheduler
//! must produce legal schedules on random graphs with random conflict
//! groups, and lifetime analysis must be consistent with them.

use hlts_dfg::{Dfg, DfgBuilder, FuClass, OpId, OpKind};
use hlts_sched::{fds_schedule, list_schedule, FuLimits, Lifetimes, ListPriority};
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Xor];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

/// Partition the ops into groups by a random assignment, keeping only
/// FU-compatible groups.
fn groups_from(dfg: &Dfg, assignment: &[u8], buckets: u8) -> Vec<Vec<OpId>> {
    let buckets = buckets.max(1);
    let mut groups: Vec<Vec<OpId>> = vec![Vec::new(); buckets as usize];
    for op in dfg.ops() {
        let g = assignment.get(op.id().index()).copied().unwrap_or(0) % buckets;
        let target = &mut groups[g as usize];
        let compatible = target.iter().all(|&o| {
            dfg.op(o)
                .kind()
                .fu_class()
                .compatible(dfg.op(op.id()).kind().fu_class())
        });
        if compatible {
            target.push(op.id());
        } else {
            groups.push(vec![op.id()]);
        }
    }
    groups.retain(|g| !g.is_empty());
    groups
}

proptest! {
    /// List scheduling is always legal for the precedence relation and
    /// the conflict groups.
    #[test]
    fn list_schedule_is_legal(
        spec in spec_strategy(),
        assignment in prop::collection::vec(any::<u8>(), 0..12),
        buckets in 1u8..5,
    ) {
        let d = build_dfg(&spec);
        let groups = groups_from(&d, &assignment, buckets);
        let s = list_schedule(&d, &groups, ListPriority::CriticalPath).expect("schedulable");
        prop_assert!(s.validate(&d).is_ok());
        prop_assert!(s.validate_groups(&d, &groups).is_ok());
    }

    /// Unconstrained list scheduling achieves the critical-path latency.
    #[test]
    fn unconstrained_list_schedule_is_asap(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
        prop_assert_eq!(s.num_steps(), d.critical_path_len().expect("acyclic"));
    }

    /// Force-directed scheduling is legal at any feasible latency.
    #[test]
    fn fds_is_legal(spec in spec_strategy(), slack in 0usize..3) {
        let d = build_dfg(&spec);
        let cp = d.critical_path_len().expect("acyclic");
        let s = fds_schedule(&d, Some(cp + slack)).expect("feasible");
        prop_assert!(s.validate(&d).is_ok());
        prop_assert!(s.num_steps() <= cp + slack);
    }

    /// Mobility-path scheduling respects per-class limits.
    #[test]
    fn mobility_path_respects_limits(spec in spec_strategy(), mul_limit in 1usize..3) {
        let d = build_dfg(&spec);
        let limits = FuLimits::new().with(FuClass::Multiplier, mul_limit);
        let s = hlts_sched::mobility_path_schedule(&d, &limits, None).expect("feasible");
        prop_assert!(s.validate(&d).is_ok());
        for step in 0..s.num_steps() {
            let muls = s
                .ops_in_step(step)
                .iter()
                .filter(|&&o| d.op(o).kind() == OpKind::Mul)
                .count();
            prop_assert!(muls <= mul_limit);
        }
    }

    /// Lifetimes: every value's death is not before its birth, intervals
    /// sit inside [0, latency], and `disjoint` is symmetric.
    #[test]
    fn lifetimes_are_wellformed(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
        let lt = Lifetimes::compute(&d, &s);
        for v in d.values() {
            if let Some(iv) = lt.interval(v.id()) {
                prop_assert!(iv.birth <= iv.death);
                prop_assert!(iv.death <= s.num_steps());
            }
            for w in d.values() {
                prop_assert_eq!(lt.disjoint(v.id(), w.id()), lt.disjoint(w.id(), v.id()));
            }
        }
        prop_assert!(lt.max_live() <= d.num_values());
    }
}
