//! Regression test for the leak-backed `Sym` interner bound: repeated
//! synthesis and re-parsing of the same behavior through the job
//! engine must not grow the interner (the leak is bounded by the set
//! of *distinct* names ever seen, not by the number of jobs).
//!
//! This lives in its own integration binary on purpose: it is the
//! only test in the process, so no concurrently running test can
//! intern unrelated names between the snapshot and the assertion.

use hlts_core::{EvalMode, SynthesisParams};
use hlts_dse::Flow;
use hlts_jobs::{EngineConfig, JobEngine, JobSpec, JobState};

#[test]
fn repeated_jobs_do_not_grow_the_interner() {
    let dfg = hlts_benchmarks::ex();
    let text = hlts_dfg::emit(&dfg).unwrap();
    let engine = JobEngine::start(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let submit = |warm| {
        // Re-parse the text each round, exactly like a daemon serving
        // the same inline source over and over.
        JobSpec::Run {
            name: "ex".to_owned(),
            dfg: hlts_dfg::parse(&text).unwrap(),
            flow: Flow::Ours,
            params: SynthesisParams::paper_defaults(8),
            mode: EvalMode::Sequential,
            warm,
            atpg: None,
        }
    };
    // Warm-up round interns everything the workload will ever need.
    let first = engine.submit(submit(Some(9)), None).unwrap();
    assert_eq!(engine.wait(first).unwrap().state, JobState::Done);
    let baseline = hlts_dfg::sym::stats();
    assert!(baseline.count > 0 && baseline.bytes > 0);

    for round in 0..12 {
        // Alternate warm-keyed and cold jobs: neither path may intern
        // anything new for an already-seen behavior.
        let warm = if round % 2 == 0 { Some(9) } else { None };
        let id = engine.submit(submit(warm), None).unwrap();
        assert_eq!(engine.wait(id).unwrap().state, JobState::Done);
        let now = hlts_dfg::sym::stats();
        assert_eq!(
            (now.count, now.bytes),
            (baseline.count, baseline.bytes),
            "interner grew on round {round}"
        );
    }
    engine.shutdown();
}
