//! Engine-level integration tests: bit-identity with direct library
//! calls, FIFO backpressure, cancellation at both granularities, warm
//! context sharing, and graceful shutdown.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use hlts_core::{EvalMode, IntegratedSynthesizer, SynthesisParams};
use hlts_dse::Flow;
use hlts_jobs::{
    proto, CancelOutcome, EngineConfig, JobEngine, JobEvent, JobId, JobOutput, JobSink, JobSpec,
    JobState, SubmitError,
};

fn run_spec(bench: &str, warm: Option<u64>) -> JobSpec {
    JobSpec::Run {
        name: bench.to_owned(),
        dfg: hlts_benchmarks::by_name(bench).unwrap(),
        flow: Flow::Ours,
        params: SynthesisParams::paper_defaults(8),
        mode: EvalMode::Sequential,
        warm,
        atpg: None,
    }
}

fn explore_spec(points: usize) -> JobSpec {
    // ewf × ks × the three paper weight pairs: enough sequential work
    // that a cancel fired after the first point lands mid-sweep.
    let ks: Vec<usize> = (1..=points.div_ceil(3)).collect();
    let mut spec = hlts_dse::SweepSpec::new(vec![("ewf".into(), hlts_benchmarks::ewf())]);
    spec.ks = ks;
    spec.weights = vec![(2.0, 1.0), (10.0, 1.0), (1.0, 10.0)];
    JobSpec::Explore {
        spec,
        cfg: hlts_dse::ExploreConfig::default(),
    }
}

#[test]
fn run_job_matches_direct_library_call() {
    let engine = JobEngine::start(EngineConfig::default());
    let id = engine.submit(run_spec("ex", Some(1)), None).unwrap();
    let status = engine.wait(id).unwrap();
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.error, None);
    let Some(JobOutput::Run(via_engine)) = engine.take_output(id) else {
        panic!("expected a run output");
    };
    let direct = IntegratedSynthesizer::new(SynthesisParams::paper_defaults(8))
        .run(&hlts_benchmarks::ex())
        .unwrap();
    assert_eq!(via_engine.result, direct, "engine run diverged from direct run");
    assert!(via_engine.coverage.is_none(), "no grading was requested");
    assert_eq!(
        proto::run_result_json(&via_engine.result),
        proto::run_result_json(&direct),
    );
    // Output moves out exactly once.
    assert!(engine.take_output(id).is_none());
    engine.shutdown();
}

#[test]
fn bounded_queue_rejects_overflow_deterministically() {
    // A paused engine (no workers yet) makes the queue state exact.
    let engine = JobEngine::new(EngineConfig {
        workers: 1,
        queue_capacity: 2,
        warm_capacity: 2,
    });
    let a = engine.submit(run_spec("ex", None), None).unwrap();
    let b = engine.submit(run_spec("ex", None), None).unwrap();
    match engine.submit(run_spec("ex", None), None) {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Cancelling a queued job frees its slot.
    assert_eq!(engine.cancel(a), CancelOutcome::Dequeued);
    assert_eq!(engine.status(a).unwrap().state, JobState::Cancelled);
    let c = engine.submit(run_spec("ex", None), None).unwrap();
    engine.start_workers();
    for id in [b, c] {
        assert_eq!(engine.wait(id).unwrap().state, JobState::Done);
    }
    // The dequeued job never ran and stays terminal.
    assert_eq!(engine.wait(a).unwrap().state, JobState::Cancelled);
    let counts = engine.counts();
    assert_eq!((counts.done, counts.cancelled), (2, 1));
    engine.shutdown();
    // After shutdown, submissions are refused.
    assert_eq!(
        engine.submit(run_spec("ex", None), None),
        Err(SubmitError::ShuttingDown)
    );
}

#[test]
fn gen_job_reproduces_the_generator() {
    let cfg = hlts_gen::preset("balanced").unwrap();
    let engine = JobEngine::start(EngineConfig::default());
    let id = engine
        .submit(JobSpec::Gen { seed: 7, cfg: cfg.clone() }, None)
        .unwrap();
    assert_eq!(engine.wait(id).unwrap().state, JobState::Done);
    let Some(JobOutput::Gen(text)) = engine.take_output(id) else {
        panic!("expected gen output");
    };
    let direct = hlts_dfg::emit(&hlts_gen::generate(7, &cfg).unwrap()).unwrap();
    assert_eq!(text, direct);
    // The emitted text is itself a valid behavior.
    hlts_dfg::parse(&text).unwrap();
    engine.shutdown();
}

#[test]
fn warm_contexts_are_shared_and_do_not_change_results() {
    let engine = JobEngine::start(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let key = Some(42);
    let first = engine.submit(run_spec("dct", key), None).unwrap();
    assert_eq!(engine.wait(first).unwrap().state, JobState::Done);
    let second = engine.submit(run_spec("dct", key), None).unwrap();
    assert_eq!(engine.wait(second).unwrap().state, JobState::Done);
    let counts = engine.counts();
    assert!(
        counts.warm_hits >= 1,
        "second keyed run should hit the warm pool: {counts:?}"
    );
    let (Some(JobOutput::Run(a)), Some(JobOutput::Run(b))) =
        (engine.take_output(first), engine.take_output(second))
    else {
        panic!("expected two run outputs");
    };
    assert_eq!(*a, *b, "warm context changed the result");
    engine.shutdown();
}

#[test]
fn graded_runs_attach_a_report_and_hit_the_coverage_memo() {
    let engine = JobEngine::start(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let atpg = Some(hlts_jobs::AtpgRequest {
        fault_sample: Some(200),
        jobs: 2,
    });
    let spec = |key| {
        let JobSpec::Run {
            name,
            dfg,
            flow,
            params,
            mode,
            warm,
            ..
        } = run_spec("ex", key)
        else {
            unreachable!()
        };
        JobSpec::Run {
            name,
            dfg,
            flow,
            params,
            mode,
            warm,
            atpg,
        }
    };
    let first = engine.submit(spec(Some(9)), None).unwrap();
    assert_eq!(engine.wait(first).unwrap().state, JobState::Done);
    let second = engine.submit(spec(Some(9)), None).unwrap();
    assert_eq!(engine.wait(second).unwrap().state, JobState::Done);
    let (Some(JobOutput::Run(a)), Some(JobOutput::Run(b))) =
        (engine.take_output(first), engine.take_output(second))
    else {
        panic!("expected two run outputs");
    };
    let report = a.coverage.as_ref().expect("graded run carries a report");
    assert!(report.coverage() > 0.0 && report.coverage() <= 100.0);
    assert_eq!(report.faults_graded, 200.min(report.total_collapsed));
    assert_eq!(
        a.coverage.as_ref().map(hlts_tcov::CoverageReport::signature),
        b.coverage.as_ref().map(hlts_tcov::CoverageReport::signature),
        "repeat grading diverged"
    );
    let counts = engine.counts();
    assert!(
        counts.tcov.report_hits >= 1,
        "the second grading should answer from the report memo: {counts:?}"
    );
    engine.shutdown();
}

/// Sink that counts per-job events and flags the interesting ones.
#[derive(Default)]
struct Probe {
    started: AtomicBool,
    points_done: AtomicUsize,
    iterations: AtomicUsize,
    terminal: AtomicBool,
}

impl JobSink for Probe {
    fn event(&self, _job: JobId, event: &JobEvent<'_>) {
        match event {
            JobEvent::Started => self.started.store(true, Ordering::SeqCst),
            JobEvent::Progress(hlts_core::ProgressEvent::PointDone { .. }) => {
                self.points_done.fetch_add(1, Ordering::SeqCst);
            }
            JobEvent::Progress(_) => {
                self.iterations.fetch_add(1, Ordering::SeqCst);
            }
            JobEvent::Done(_) | JobEvent::Failed(_) | JobEvent::Cancelled(_) => {
                self.terminal.store(true, Ordering::SeqCst);
            }
        }
    }
}

#[test]
fn cancelling_a_running_sweep_keeps_the_partial_front() {
    let engine = JobEngine::start(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let probe = Arc::new(Probe::default());
    let id = engine
        .submit(explore_spec(12), Some(Arc::clone(&probe) as _))
        .unwrap();
    // Cancel as soon as the first point lands: eleven points of work
    // remain, so the token fires mid-sweep.
    while probe.points_done.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    let outcome = engine.cancel(id);
    assert!(
        matches!(outcome, CancelOutcome::Signalled | CancelOutcome::Finished),
        "unexpected cancel outcome {outcome:?}"
    );
    let status = engine.wait(id).unwrap();
    assert_eq!(status.state, JobState::Cancelled);
    let Some(JobOutput::Explore(partial)) = engine.take_output(id) else {
        panic!("cancelled sweep should keep its partial outcome");
    };
    assert!(partial.stats.points_cancelled > 0);
    assert!(
        partial.stats.points_computed >= 1,
        "the finished point belongs to the partial front"
    );
    assert!(probe.terminal.load(Ordering::SeqCst));
    engine.shutdown();
}

#[test]
fn shutdown_finishes_running_work_and_cancels_the_queue() {
    let engine = JobEngine::start(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let probe = Arc::new(Probe::default());
    let running = engine
        .submit(run_spec("ewf", None), Some(Arc::clone(&probe) as _))
        .unwrap();
    let queued = engine.submit(run_spec("ex", None), None).unwrap();
    while !probe.started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    engine.shutdown();
    assert_eq!(
        engine.status(running).unwrap().state,
        JobState::Done,
        "running job must finish during graceful shutdown"
    );
    assert_eq!(engine.status(queued).unwrap().state, JobState::Cancelled);
}
