//! Fault-injection resilience suite (`--features test-faults`): a
//! worker thread killed mid-claim takes exactly its one job with it —
//! the engine keeps draining on the surviving workers, and the daemon
//! keeps answering.

#![cfg(feature = "test-faults")]

use std::io::Write;
use std::sync::{Arc, Mutex};

use hlts_check::faults::{sites, FaultPlan};
use hlts_core::{EvalMode, SynthesisParams};
use hlts_dse::Flow;
use hlts_jobs::{EngineConfig, JobEngine, JobSpec, JobState, ServeConfig};

fn run_spec(bench: &str) -> JobSpec {
    JobSpec::Run {
        name: bench.to_owned(),
        dfg: hlts_benchmarks::by_name(bench).unwrap(),
        flow: Flow::Ours,
        params: SynthesisParams::paper_defaults(8),
        mode: EvalMode::Sequential,
        warm: None,
        atpg: None,
    }
}

#[test]
fn killed_worker_fails_one_job_and_the_engine_keeps_serving() {
    let guard = FaultPlan::new().arm(sites::JOBS_WORKER_KILL, 1).install();
    let engine = JobEngine::start(EngineConfig {
        workers: 2,
        queue_capacity: 8,
        warm_capacity: 2,
    });
    let ids: Vec<_> = (0..3)
        .map(|_| engine.submit(run_spec("ex"), None).unwrap())
        .collect();
    let mut failed = 0;
    for &id in &ids {
        let status = engine.wait(id).unwrap();
        match status.state {
            JobState::Failed => {
                failed += 1;
                assert_eq!(
                    status.error.as_deref(),
                    Some("worker killed by injected fault")
                );
            }
            JobState::Done => {}
            other => panic!("unexpected state {other:?}"),
        }
    }
    assert_eq!(failed, 1, "exactly the claimed job dies with its worker");
    assert_eq!(guard.fired(), vec![sites::JOBS_WORKER_KILL]);
    // The pool lost a thread but not the service: new work completes.
    let extra = engine.submit(run_spec("tseng"), None).unwrap();
    assert_eq!(engine.wait(extra).unwrap().state, JobState::Done);
    let counts = engine.counts();
    assert_eq!((counts.done, counts.failed), (3, 1));
    engine.shutdown();
    drop(guard);
}

/// Shared in-memory writer for driving `serve_lines` in-process.
#[derive(Clone, Default)]
struct Buffer(Arc<Mutex<Vec<u8>>>);

impl Write for Buffer {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Blocking reader fed line-by-line from the test thread, so the
/// shutdown request can be held back until the jobs terminated
/// (graceful shutdown would otherwise cancel still-queued jobs).
struct ChanReader {
    rx: std::sync::mpsc::Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl std::io::Read for ChanReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf = line.into_bytes();
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn daemon_survives_a_worker_kill_and_reports_the_failed_job() {
    let guard = FaultPlan::new().arm(sites::JOBS_WORKER_KILL, 1).install();
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let buffer = Buffer::default();
    let daemon = {
        let buffer = buffer.clone();
        std::thread::spawn(move || {
            hlts_jobs::serve_lines(
                std::io::BufReader::new(ChanReader {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                }),
                Box::new(buffer),
                ServeConfig {
                    workers: 2,
                    queue_capacity: 8,
                    warm_capacity: 2,
                },
            );
        })
    };
    for (id, bench) in [("a", "ex"), ("b", "tseng"), ("c", "paulin")] {
        tx.send(format!(
            "{{\"op\":\"submit\",\"id\":\"{id}\",\"job\":{{\"kind\":\"run\",\"source\":\"bench:{bench}\"}}}}\n"
        ))
        .unwrap();
    }
    // Hold the shutdown back until all three jobs reached a terminal
    // event, so none of them is cancelled by the drain.
    loop {
        let text = String::from_utf8(buffer.0.lock().unwrap().clone()).unwrap();
        let terminal = text
            .lines()
            .filter(|l| {
                l.contains("\"event\": \"done\"") || l.contains("\"event\": \"failed\"")
            })
            .count();
        if terminal >= 3 {
            break;
        }
        std::thread::yield_now();
    }
    tx.send("{\"op\":\"shutdown\"}\n".to_owned()).unwrap();
    daemon.join().unwrap();
    let output = String::from_utf8(buffer.0.lock().unwrap().clone()).unwrap();
    let failed = output
        .lines()
        .filter(|l| l.contains("\"event\": \"failed\""))
        .count();
    let done = output
        .lines()
        .filter(|l| l.contains("\"event\": \"done\""))
        .count();
    assert_eq!(failed, 1, "one failed event expected in:\n{output}");
    assert_eq!(done, 2, "two done events expected in:\n{output}");
    assert!(output.contains("worker killed by injected fault"));
    assert!(output.contains("\"shutdown\": true"));
    drop(guard);
}
