//! Daemon protocol tests over real TCP sockets: concurrent clients
//! with bit-identical results, structured malformed-line handling,
//! and deterministic queue backpressure.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use hlts_core::{EvalMode, NullSink, RunCtl, SynthesisParams};
use hlts_dse::Flow;
use hlts_jobs::json::{self, Json};
use hlts_jobs::{execute, proto, JobOutput, JobSpec, ServeConfig, WarmPool};

/// Spawn a daemon on an ephemeral port; returns (addr, join handle).
fn spawn_daemon(cfg: ServeConfig) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        hlts_jobs::serve_tcp(listener, cfg).unwrap();
    });
    (addr, handle)
}

/// One protocol client: line-oriented send/receive over TCP.
struct Client {
    write: TcpStream,
    read: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        Client {
            write: stream.try_clone().unwrap(),
            read: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.write, "{line}").unwrap();
        self.write.flush().unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        assert!(
            self.read.read_line(&mut line).unwrap() > 0,
            "daemon closed the connection"
        );
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"))
    }

    /// Next *response* line (`ok` field), skipping event lines.
    fn recv_response(&mut self) -> Json {
        loop {
            let doc = self.recv();
            if doc.get("ok").is_some() {
                return doc;
            }
        }
    }

    /// Read until the given job's terminal event; returns it.
    fn recv_terminal(&mut self, job: u64) -> Json {
        loop {
            let doc = self.recv();
            if doc.get("job").and_then(Json::as_u64) == Some(job)
                && matches!(
                    doc.get("event").and_then(Json::as_str),
                    Some("done" | "failed" | "cancelled")
                )
            {
                return doc;
            }
        }
    }
}

fn shutdown(addr: &str) {
    let mut c = Client::connect(addr);
    c.send(r#"{"op":"shutdown"}"#);
    let ack = c.recv_response();
    assert_eq!(ack.get("shutdown"), Some(&Json::Bool(true)));
}

/// The one-shot result a daemon submission must match bit-for-bit.
fn oneshot_result_json(bench: &str, flow: Flow, bits: u32) -> Json {
    let mut params = SynthesisParams::paper_defaults(bits);
    if flow == Flow::Camad {
        params.alpha = 0.1;
        params.beta = 10.0;
    }
    let spec = JobSpec::Run {
        name: bench.to_owned(),
        dfg: hlts_benchmarks::by_name(bench).unwrap(),
        flow,
        params,
        mode: EvalMode::Sequential,
        warm: None,
        atpg: None,
    };
    let ctl = RunCtl {
        cancel: hlts_core::CancelToken::new(),
        progress: &NullSink,
    };
    let JobOutput::Run(result) = execute(&spec, &ctl, &WarmPool::new(0)).unwrap() else {
        panic!("expected run output");
    };
    json::parse(&proto::run_result_json(&result.result)).unwrap()
}

#[test]
fn concurrent_tcp_clients_get_bit_identical_results() {
    let (addr, daemon) = spawn_daemon(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        warm_capacity: 4,
    });
    let cases = [("ex", "ours"), ("tseng", "camad"), ("paulin", "ours")];
    let mut clients = Vec::new();
    for (i, (bench, flow)) in cases.iter().enumerate() {
        let addr = addr.clone();
        let bench = (*bench).to_owned();
        let flow = (*flow).to_owned();
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr);
            c.send(&format!(
                r#"{{"op":"submit","id":"c{i}","job":{{"kind":"run","source":"bench:{bench}","flow":"{flow}"}}}}"#
            ));
            let ack = c.recv_response();
            assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(
                ack.get("id").and_then(Json::as_str),
                Some(format!("c{i}").as_str())
            );
            let job = ack.get("job").and_then(Json::as_u64).unwrap();
            let done = c.recv_terminal(job);
            assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
            done.get("result").unwrap().clone()
        }));
    }
    for (client, (bench, flow)) in clients.into_iter().zip(cases) {
        let got = client.join().unwrap();
        let want = oneshot_result_json(bench, Flow::parse(flow).unwrap(), 8);
        assert_eq!(got, want, "daemon result for {bench}/{flow} diverged");
    }
    shutdown(&addr);
    daemon.join().unwrap();
}

#[test]
fn malformed_lines_answer_structured_errors_and_never_kill_the_connection() {
    let (addr, daemon) = spawn_daemon(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        warm_capacity: 2,
    });
    let mut c = Client::connect(&addr);
    // Not JSON at all.
    c.send("garbage !!");
    let e = c.recv_response();
    assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(e.get("id"), None);
    // Valid JSON, broken request — the id must come back.
    c.send(r#"{"op":"submit","id":"m1","job":{"kind":"run"}}"#);
    let e = c.recv_response();
    assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(e.get("id").and_then(Json::as_str), Some("m1"));
    // Unknown benchmark: rejected at resolve, same structured shape.
    c.send(r#"{"op":"submit","id":"m2","job":{"kind":"run","source":"bench:nope"}}"#);
    let e = c.recv_response();
    assert_eq!(e.get("id").and_then(Json::as_str), Some("m2"));
    assert!(e
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown benchmark"));
    // The connection still works and the health counter saw exactly
    // the two *protocol-level* malformed lines (resolve failures are
    // well-formed requests).
    c.send(r#"{"op":"status","id":"s1"}"#);
    let s = c.recv_response();
    assert_eq!(s.get("ok"), Some(&Json::Bool(true)));
    let status = s.get("status").unwrap();
    assert_eq!(
        status.get("malformed_requests").and_then(Json::as_u64),
        Some(2)
    );
    let interner = status.get("interner").unwrap();
    assert!(interner.get("count").and_then(Json::as_u64).unwrap() > 0);
    // And real work still runs on the same connection.
    c.send(r#"{"op":"submit","id":"ok1","job":{"kind":"gen","seed":3}}"#);
    let ack = c.recv_response();
    let job = ack.get("job").and_then(Json::as_u64).unwrap();
    let done = c.recv_terminal(job);
    let dfg = done
        .get("result")
        .and_then(|r| r.get("dfg"))
        .and_then(Json::as_str)
        .unwrap();
    hlts_dfg::parse(dfg).unwrap();
    shutdown(&addr);
    daemon.join().unwrap();
}

#[test]
fn full_queue_rejects_submissions_until_slots_free_up() {
    let (addr, daemon) = spawn_daemon(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        warm_capacity: 2,
    });
    let mut c = Client::connect(&addr);
    // A sweep long enough to hold the single worker while the queue
    // fills behind it.
    c.send(
        r#"{"op":"submit","id":"long","job":{"kind":"explore","sources":["bench:ewf"],
            "ks":[1,2,3,4],"weights":[[2,1],[10,1],[1,10]]}}"#
        .replace('\n', " ")
        .as_str(),
    );
    let ack = c.recv_response();
    let long_job = ack.get("job").and_then(Json::as_u64).unwrap();
    // Wait until the worker actually claimed it.
    loop {
        c.send(r#"{"op":"status"}"#);
        let s = c.recv_response();
        let jobs = s.get("status").and_then(|s| s.get("jobs")).unwrap();
        if jobs.get("running").and_then(Json::as_u64) == Some(1) {
            break;
        }
        std::thread::yield_now();
    }
    // Two queued submissions fit; the third bounces.
    for id in ["q1", "q2"] {
        c.send(&format!(
            r#"{{"op":"submit","id":"{id}","job":{{"kind":"run","source":"bench:ex"}}}}"#
        ));
        let ack = c.recv_response();
        assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "submit {id}: {ack:?}");
    }
    c.send(r#"{"op":"submit","id":"q3","job":{"kind":"run","source":"bench:ex"}}"#);
    let rejected = c.recv_response();
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
    assert!(rejected
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("queue full"));
    // Cancelling the running sweep frees the worker; the queue drains.
    c.send(&format!(r#"{{"op":"cancel","job":{long_job}}}"#));
    let cancel = c.recv_response();
    assert_eq!(
        cancel.get("cancel").and_then(Json::as_str),
        Some("signalled")
    );
    let terminal = c.recv_terminal(long_job);
    assert_eq!(
        terminal.get("event").and_then(Json::as_str),
        Some("cancelled")
    );
    // The cancelled sweep kept its finished points as a partial front.
    if let Some(partial) = terminal.get("partial") {
        assert!(partial.get("points_cancelled").and_then(Json::as_u64).unwrap() > 0);
    }
    shutdown(&addr);
    daemon.join().unwrap();
}
