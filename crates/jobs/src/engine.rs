//! The job engine: a bounded FIFO queue feeding a fixed worker pool.
//!
//! Every way the system executes synthesis work — the one-shot `hlts
//! run` / `hlts explore` commands and the `hlts serve` daemon — goes
//! through [`execute`], so cancellation, progress streaming and warm
//! context reuse behave identically everywhere. The daemon wraps
//! [`execute`] in a [`JobEngine`]: submissions beyond the queue bound
//! are rejected with [`SubmitError::QueueFull`] (backpressure, never
//! unbounded buffering), each job carries its own [`CancelToken`], and
//! per-job events stream to the submitter's [`JobSink`].
//!
//! # Locking rules
//!
//! The engine holds one mutex over queue + job table. Sinks are user
//! code that may block on I/O, so **no engine code calls a sink while
//! holding the state lock** — events are collected under the lock and
//! emitted after it drops. This is what lets a sink implementation
//! hold its own write lock around `submit` to order the submit
//! response before the job's first event (see `hlts-jobs::serve`).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use hlts_check::faults;
use hlts_core::{
    baselines, CancelToken, CoreError, DeltaEvaluator, DesignState, EvalMode,
    IntegratedSynthesizer, ProgressEvent, ProgressSink, RunCtl, SynthesisParams, SynthesisResult,
};
use hlts_dfg::Dfg;
use hlts_dse::{explore_ctl, DseError, ExploreConfig, ExploreOutcome, Flow, SweepSpec};
use hlts_gen::GenConfig;
use hlts_tcov::{CoverageReport, TcovConfig, TcovError, TcovPool, TcovStats};

/// Engine-assigned job identifier (dense, starting at 1).
pub type JobId = u64;

/// One unit of work. The three variants mirror the three CLI
/// subcommands; the one-shot commands build a spec and call
/// [`execute`] directly, the daemon queues specs on a [`JobEngine`].
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Synthesize one behavior with one flow and parameter set.
    Run {
        /// Display name of the behavior (benchmark name or file stem).
        name: String,
        /// The behavior to synthesize.
        dfg: Dfg,
        /// Which synthesis flow to run.
        flow: Flow,
        /// The flow's parameters (`k`, α, β, bits, library, …).
        params: SynthesisParams,
        /// Candidate-evaluation mode (results are bit-identical across
        /// modes; the daemon uses [`EvalMode::Sequential`] so worker
        /// parallelism comes from the pool, not nested threads).
        mode: EvalMode,
        /// Warm-context key: jobs submitting the same key (and bits)
        /// share one [`WarmCtx`] — base state, testability engine and
        /// (E, H) cache — via the engine's [`WarmPool`]. The key must
        /// uniquely identify the *graph and module library* (the serve
        /// layer hashes the canonical emitted text); `None` builds a
        /// fresh context. Sharing never changes results.
        warm: Option<u64>,
        /// When set, grade the synthesized design's fault coverage
        /// after synthesis (through the engine's [`TcovPool`] memo)
        /// and attach the report to the output.
        atpg: Option<AtpgRequest>,
    },
    /// A design-space sweep (see [`hlts_dse::explore`]).
    Explore {
        /// The sweep grid.
        spec: SweepSpec,
        /// Worker count, journal and resume configuration.
        cfg: ExploreConfig,
    },
    /// Generate a seeded random workload in textual DFG form.
    Gen {
        /// The reproducibility seed.
        seed: u64,
        /// Generator knobs.
        cfg: GenConfig,
    },
}

impl JobSpec {
    /// Short kind tag used in status lines and logs.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Run { .. } => "run",
            JobSpec::Explore { .. } => "explore",
            JobSpec::Gen { .. } => "gen",
        }
    }
}

/// Post-synthesis coverage grading attached to a run job. The graded
/// report is a pure function of (design, `fault_sample`) — `jobs` only
/// picks the worker count, never the answer — so two requests that
/// differ only in `jobs` are answered from the same memo entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgRequest {
    /// Grade at most this many collapsed faults, chosen by a seeded
    /// shuffle (`None` = the exhaustive collapsed universe).
    pub fault_sample: Option<usize>,
    /// Fault-partition worker threads for the grading itself.
    pub jobs: usize,
}

impl Default for AtpgRequest {
    fn default() -> AtpgRequest {
        AtpgRequest {
            fault_sample: Some(2000),
            jobs: 1,
        }
    }
}

/// A run job's payload: the synthesis result plus, when the spec asked
/// for grading, the measured coverage report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// The synthesized design and its metrics.
    pub result: SynthesisResult,
    /// The measured fault-coverage report (present iff the spec
    /// carried an [`AtpgRequest`]).
    pub coverage: Option<CoverageReport>,
}

/// What a finished job produced.
#[derive(Debug)]
pub enum JobOutput {
    /// A [`JobSpec::Run`] job's synthesis result, with coverage when
    /// the spec requested grading.
    Run(Box<RunOutput>),
    /// A [`JobSpec::Explore`] job's outcome (possibly a partial front
    /// when the job was cancelled mid-sweep).
    Explore(Box<ExploreOutcome>),
    /// A [`JobSpec::Gen`] job's emitted DFG text.
    Gen(String),
}

/// Lifecycle of a job. Terminal states are `Done`, `Failed` and
/// `Cancelled`; a cancelled explore job may still carry a partial
/// outcome (every point finished before the token fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker, executing.
    Running,
    /// Finished successfully; output available.
    Done,
    /// Execution failed; the error string is in [`JobStatus::error`].
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// Whether the state is terminal.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Canonical lowercase name (protocol and log spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// A point-in-time snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// The failure message when `state` is [`JobState::Failed`].
    pub error: Option<String>,
}

/// A per-job event delivered to the submitter's [`JobSink`].
///
/// Borrowed payloads keep the hot path allocation-free; sinks that
/// need to retain data must copy it.
#[derive(Debug)]
pub enum JobEvent<'a> {
    /// A worker claimed the job.
    Started,
    /// Forwarded progress from the synthesis layers (iterations of the
    /// merger loop, completed sweep points).
    Progress(ProgressEvent),
    /// The job finished; the output stays retrievable via
    /// [`JobEngine::take_output`].
    Done(&'a JobOutput),
    /// The job failed with this message.
    Failed(&'a str),
    /// The job was cancelled; an explore job cancelled mid-sweep
    /// carries its partial outcome.
    Cancelled(Option<&'a JobOutput>),
}

/// Receives the events of jobs submitted with it. Implementations
/// must tolerate being called from worker threads; the engine never
/// calls a sink while holding its own lock.
pub trait JobSink: Send + Sync {
    /// One event of job `job`.
    fn event(&self, job: JobId, event: &JobEvent<'_>);
}

/// A sink that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullJobSink;

impl JobSink for NullJobSink {
    fn event(&self, _job: JobId, _event: &JobEvent<'_>) {}
}

/// Why a submission was rejected. Both cases are backpressure by
/// design: the queue is bounded and a draining engine stops accepting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The FIFO queue is at capacity; retry after a job finishes.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} job(s) pending); retry later")
            }
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`JobEngine::cancel`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: removed immediately, never ran.
    Dequeued,
    /// The job is running: its token fired; it stops at the next
    /// iteration/point boundary.
    Signalled,
    /// The job had already reached a terminal state.
    Finished,
    /// No job with that id exists.
    Unknown,
}

impl CancelOutcome {
    /// Canonical lowercase name (protocol spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CancelOutcome::Dequeued => "dequeued",
            CancelOutcome::Signalled => "signalled",
            CancelOutcome::Finished => "finished",
            CancelOutcome::Unknown => "unknown",
        }
    }
}

/// Sizing of a [`JobEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// FIFO queue bound; submissions beyond it get
    /// [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Warm-context cache bound (entries; FIFO eviction).
    pub warm_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 16,
            warm_capacity: 8,
        }
    }
}

/// Aggregate engine counters, cheap to snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCounts {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled (before or during execution).
    pub cancelled: usize,
    /// Warm-context cache hits (a keyed run job reused a context).
    pub warm_hits: u64,
    /// Warm-context cache misses (a context had to be built).
    pub warm_misses: u64,
    /// Merges replayed from neighbour traces, summed over finished
    /// warm-start explore jobs (including cancelled partials).
    pub merges_replayed: u64,
    /// Merges recomputed from scratch by those same sweeps (scratch
    /// synthesis and post-divergence fallback).
    pub merges_recomputed: u64,
    /// Coverage-memo counters (tier-1 netlist contexts and tier-2
    /// report hits/misses) from the engine's [`TcovPool`].
    pub tcov: TcovStats,
    /// Configured worker count.
    pub workers: usize,
    /// Configured queue bound.
    pub queue_capacity: usize,
}

/// A reusable per-behavior synthesis context, warm at two levels:
///
/// * the base state (graph core + shared
///   [`TestabilityEngine`](hlts_core::TestabilityEngine)) and a
///   [`DeltaEvaluator`] whose (E, H) cache accumulates across jobs —
///   forking the base per run skips the initial
///   schedule/allocation/testability construction, and the evaluator
///   cache carries over even when the *parameters* differ (its
///   entries are keyed on design content, which α/β/k never touch);
/// * a bounded result memo for exact repeats: synthesis is
///   deterministic, so a keyed request whose full parameter set
///   matches an earlier one on this context is answered with that
///   run's result without re-running the merge loop.
///
/// Sharing never changes a result — every layer is keyed on content
/// (see [`IntegratedSynthesizer::run_on`]), and the memo replays a
/// result the cold path itself produced.
#[derive(Debug)]
pub struct WarmCtx {
    /// The initial design state of the behavior.
    pub base: DesignState,
    /// The shared incremental (E, H) evaluator.
    pub evaluator: DeltaEvaluator,
    /// Parameter fingerprint → memoized result (FIFO-bounded).
    memo: Mutex<Vec<(String, SynthesisResult)>>,
}

/// Memoized results kept per context. Small on purpose: a daemon's
/// repeat traffic concentrates on a handful of parameter points per
/// behavior, and each entry holds a full design.
const MEMO_CAPACITY: usize = 8;

impl WarmCtx {
    /// Build a fresh context for `dfg`.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignState::initial`] failures (ill-formed graph).
    pub fn build(dfg: &Dfg) -> Result<WarmCtx, CoreError> {
        Ok(WarmCtx {
            base: DesignState::initial(dfg)?,
            evaluator: DeltaEvaluator::new(),
            memo: Mutex::new(Vec::new()),
        })
    }

    fn memo_get(&self, fingerprint: &str) -> Option<SynthesisResult> {
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|(key, _)| key == fingerprint)
            .map(|(_, result)| result.clone())
    }

    fn memo_put(&self, fingerprint: String, result: &SynthesisResult) {
        let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
        if memo.iter().any(|(key, _)| *key == fingerprint) {
            return;
        }
        if memo.len() >= MEMO_CAPACITY {
            memo.remove(0);
        }
        memo.push((fingerprint, result.clone()));
    }
}

/// A bounded map of [`WarmCtx`]s keyed on (caller key, bits), shared
/// by every keyed [`JobSpec::Run`] job the engine executes. Eviction
/// is FIFO on insertion order; the bound keeps a long-lived daemon's
/// memory proportional to the working set, not its history.
#[derive(Debug)]
pub struct WarmPool {
    capacity: usize,
    entries: Mutex<Vec<WarmSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// The sibling coverage memo: per-netlist fault universes and
    /// graded reports, shared by every [`AtpgRequest`]-carrying run
    /// job (same capacity and eviction discipline as the contexts).
    tcov: TcovPool,
}

/// One pool entry: ((caller key, bits), shared context).
type WarmSlot = ((u64, u32), Arc<WarmCtx>);

impl WarmPool {
    /// An empty pool bounded at `capacity` entries (0 disables reuse).
    #[must_use]
    pub fn new(capacity: usize) -> WarmPool {
        WarmPool {
            capacity,
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            tcov: TcovPool::new(capacity),
        }
    }

    /// The embedded coverage memo pool.
    #[must_use]
    pub fn tcov(&self) -> &TcovPool {
        &self.tcov
    }

    fn lock(&self) -> MutexGuard<'_, Vec<WarmSlot>> {
        // A poisoned pool only means some builder panicked after the
        // map was mutated consistently (entries are inserted whole).
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The context for a run job: a shared one when `key` is set and
    /// known, otherwise a freshly built one.
    ///
    /// # Errors
    ///
    /// As [`WarmCtx::build`].
    pub fn ctx(&self, key: Option<u64>, bits: u32, dfg: &Dfg) -> Result<Arc<WarmCtx>, CoreError> {
        let Some(key) = key else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(WarmCtx::build(dfg)?));
        };
        let slot = (key, bits);
        if let Some((_, ctx)) = self.lock().iter().find(|(k, _)| *k == slot) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(ctx));
        }
        // Build outside the lock — contexts take real work to build
        // and two racing builders merely produce equivalent contexts
        // (the second finds the first's insert and drops its own).
        let built = Arc::new(WarmCtx::build(dfg)?);
        let mut entries = self.lock();
        if let Some((_, ctx)) = entries.iter().find(|(k, _)| *k == slot) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(ctx));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return Ok(built);
        }
        if entries.len() >= self.capacity {
            entries.remove(0);
        }
        entries.push((slot, Arc::clone(&built)));
        Ok(built)
    }

    /// (hits, misses) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// How [`execute`] failed.
#[derive(Debug)]
pub enum ExecError {
    /// The job's cancel token fired; the work stopped at a clean
    /// boundary and produced no output.
    Cancelled,
    /// The underlying layer failed with this message.
    Failed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "cancelled"),
            ExecError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execute one job spec under a [`RunCtl`]. This is the single
/// executor behind both the one-shot CLI commands and the daemon's
/// workers: same cancellation boundaries, same progress events, same
/// warm-context semantics everywhere.
///
/// A cancelled run/gen job returns [`ExecError::Cancelled`]; a
/// cancelled explore job returns `Ok` with a *partial* outcome
/// (`stats.points_cancelled > 0`), mirroring [`explore_ctl`] — the
/// caller decides whether partial counts as cancelled (the engine's
/// workers do).
///
/// # Errors
///
/// [`ExecError::Failed`] carries the underlying layer's message.
pub fn execute(spec: &JobSpec, ctl: &RunCtl<'_>, warm: &WarmPool) -> Result<JobOutput, ExecError> {
    match spec {
        JobSpec::Run {
            dfg,
            flow,
            params,
            mode,
            warm: key,
            atpg,
            ..
        } => {
            let run = match flow {
                Flow::Ours => {
                    let ctx = warm.ctx(*key, params.bits, dfg).map_err(core_err)?;
                    // Keyed (daemon) requests memoize per exact
                    // parameter set: synthesis is deterministic, so a
                    // repeat is answered from the context instead of
                    // re-running the merge loop. The `Debug` rendering
                    // of the parameters round-trips every field
                    // (floats included), so equal fingerprints really
                    // mean equal inputs.
                    let fingerprint = key.map(|_| format!("{params:?}"));
                    match fingerprint.as_ref().and_then(|fp| ctx.memo_get(fp)) {
                        Some(hit) => Ok(hit),
                        None => {
                            let run = IntegratedSynthesizer::new(params.clone())
                                .run_on_ctl(&ctx.base, *mode, &ctx.evaluator, ctl);
                            if let (Some(fp), Ok(result)) = (fingerprint, &run) {
                                ctx.memo_put(fp, result);
                            }
                            run
                        }
                    }
                }
                Flow::Camad => baselines::camad_ctl(dfg, params, ctl),
                // The constructive baselines are single-pass; honor a
                // token fired before they start.
                Flow::Approach1 => cancel_gate(ctl).and_then(|()| baselines::approach1(dfg, params)),
                Flow::Approach2 => cancel_gate(ctl).and_then(|()| baselines::approach2(dfg, params)),
            };
            let result = run.map_err(core_err)?;
            // Grading rides the same cancel token as synthesis and is
            // memoized across jobs: repeats of a design answer from
            // the pool's report memo, not a fresh ATPG pass.
            let coverage = match atpg {
                Some(req) => Some(grade_run(&result, params.bits, *req, warm, ctl)?),
                None => None,
            };
            Ok(JobOutput::Run(Box::new(RunOutput { result, coverage })))
        }
        JobSpec::Explore { spec, cfg } => explore_ctl(spec, cfg, ctl)
            .map(|o| JobOutput::Explore(Box::new(o)))
            .map_err(|e| match e {
                DseError::Core(CoreError::Cancelled) => ExecError::Cancelled,
                other => ExecError::Failed(other.to_string()),
            }),
        JobSpec::Gen { seed, cfg } => {
            cancel_gate(ctl).map_err(core_err)?;
            let dfg = hlts_gen::generate(*seed, cfg).map_err(|e| ExecError::Failed(e.to_string()))?;
            let text = hlts_dfg::emit(&dfg).map_err(|e| ExecError::Failed(e.to_string()))?;
            Ok(JobOutput::Gen(text))
        }
    }
}

/// Grade a finished run's design through the engine's coverage memo.
fn grade_run(
    result: &SynthesisResult,
    bits: u32,
    req: AtpgRequest,
    warm: &WarmPool,
    ctl: &RunCtl<'_>,
) -> Result<CoverageReport, ExecError> {
    let cfg = TcovConfig::for_schedule(
        result.schedule.num_steps(),
        req.fault_sample,
        req.jobs.max(1),
    );
    warm.tcov
        .grade_design(
            &result.dfg,
            &result.schedule,
            &result.allocation,
            bits,
            &cfg,
            ctl,
        )
        .map_err(|e| match e {
            TcovError::Cancelled => ExecError::Cancelled,
            other => ExecError::Failed(other.to_string()),
        })
}

fn cancel_gate(ctl: &RunCtl<'_>) -> Result<(), CoreError> {
    if ctl.cancel.is_cancelled() {
        return Err(CoreError::Cancelled);
    }
    Ok(())
}

fn core_err(e: CoreError) -> ExecError {
    match e {
        CoreError::Cancelled => ExecError::Cancelled,
        other => ExecError::Failed(other.to_string()),
    }
}

type SharedSink = Arc<dyn JobSink>;

struct JobEntry {
    spec: Option<JobSpec>,
    state: JobState,
    cancel: CancelToken,
    sink: SharedSink,
    output: Option<JobOutput>,
    error: Option<String>,
}

struct EngineState {
    queue: VecDeque<JobId>,
    jobs: BTreeMap<JobId, JobEntry>,
    next_id: JobId,
    accepting: bool,
}

struct Inner {
    cfg: EngineConfig,
    state: Mutex<EngineState>,
    /// Workers wait here for queue items (or shutdown).
    work: Condvar,
    /// [`JobEngine::wait`]ers wait here for terminal transitions.
    done: Condvar,
    warm: WarmPool,
    /// Warm-start replay counters, accumulated as explore jobs finish.
    merges_replayed: AtomicU64,
    merges_recomputed: AtomicU64,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, EngineState> {
        // Workers never panic while holding the lock (execution runs
        // outside it), but a poisoned test engine should still drain.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The bounded job queue + worker pool. Dropping the engine shuts it
/// down gracefully ([`JobEngine::shutdown`]): running jobs finish,
/// queued jobs are cancelled, workers join.
pub struct JobEngine {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for JobEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEngine")
            .field("cfg", &self.inner.cfg)
            .finish_non_exhaustive()
    }
}

impl JobEngine {
    /// A *paused* engine: configured, accepting submissions, but with
    /// no workers yet — call [`start_workers`](Self::start_workers) to
    /// begin draining. Tests use the pause to fill the queue and
    /// assert backpressure deterministically.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> JobEngine {
        let cfg = EngineConfig {
            workers: cfg.workers.max(1),
            ..cfg
        };
        JobEngine {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(EngineState {
                    queue: VecDeque::new(),
                    jobs: BTreeMap::new(),
                    next_id: 1,
                    accepting: true,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                warm: WarmPool::new(cfg.warm_capacity),
                merges_replayed: AtomicU64::new(0),
                merges_recomputed: AtomicU64::new(0),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// A running engine: [`new`](Self::new) +
    /// [`start_workers`](Self::start_workers).
    #[must_use]
    pub fn start(cfg: EngineConfig) -> JobEngine {
        let engine = JobEngine::new(cfg);
        engine.start_workers();
        engine
    }

    /// Spawn the configured worker threads (idempotent: extra calls
    /// are no-ops once the pool is populated).
    pub fn start_workers(&self) {
        let mut workers = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !workers.is_empty() {
            return;
        }
        for n in 0..self.inner.cfg.workers {
            let inner = Arc::clone(&self.inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hlts-job-worker-{n}"))
                    .spawn(move || worker_loop(&inner))
                    .unwrap_or_else(|e| panic!("spawn job worker: {e}")),
            );
        }
    }

    /// The engine's warm-context pool (the one-shot CLI shares its
    /// semantics by calling [`execute`] with a throwaway pool).
    #[must_use]
    pub fn warm(&self) -> &WarmPool {
        &self.inner.warm
    }

    /// Enqueue a job. Events stream to `sink` (pass `None` to discard
    /// them); the output is retrievable via
    /// [`take_output`](Self::take_output) after the job is done.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the FIFO bound is hit,
    /// [`SubmitError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// began.
    pub fn submit(
        &self,
        spec: JobSpec,
        sink: Option<SharedSink>,
    ) -> Result<JobId, SubmitError> {
        let mut st = self.inner.lock();
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobEntry {
                spec: Some(spec),
                state: JobState::Queued,
                cancel: CancelToken::new(),
                sink: sink.unwrap_or_else(|| Arc::new(NullJobSink)),
                output: None,
                error: None,
            },
        );
        st.queue.push_back(id);
        drop(st);
        self.inner.work.notify_one();
        Ok(id)
    }

    /// Snapshot one job's status.
    #[must_use]
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.lock();
        st.jobs.get(&id).map(|j| JobStatus {
            id,
            state: j.state,
            error: j.error.clone(),
        })
    }

    /// Snapshot the aggregate counters.
    #[must_use]
    pub fn counts(&self) -> EngineCounts {
        let st = self.inner.lock();
        let mut c = EngineCounts {
            workers: self.inner.cfg.workers,
            queue_capacity: self.inner.cfg.queue_capacity,
            ..EngineCounts::default()
        };
        for j in st.jobs.values() {
            match j.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
                JobState::Cancelled => c.cancelled += 1,
            }
        }
        drop(st);
        (c.warm_hits, c.warm_misses) = self.inner.warm.stats();
        c.merges_replayed = self.inner.merges_replayed.load(Ordering::Relaxed);
        c.merges_recomputed = self.inner.merges_recomputed.load(Ordering::Relaxed);
        c.tcov = self.inner.warm.tcov.stats();
        c
    }

    /// Cancel a job: dequeue it if still queued, fire its token if
    /// running (it stops at the next iteration/point boundary).
    pub fn cancel(&self, id: JobId) -> CancelOutcome {
        let mut st = self.inner.lock();
        let Some(entry) = st.jobs.get_mut(&id) else {
            return CancelOutcome::Unknown;
        };
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.cancel.cancel();
                entry.spec = None;
                let sink = Arc::clone(&entry.sink);
                st.queue.retain(|&q| q != id);
                drop(st);
                self.inner.done.notify_all();
                sink.event(id, &JobEvent::Cancelled(None));
                CancelOutcome::Dequeued
            }
            JobState::Running => {
                entry.cancel.cancel();
                CancelOutcome::Signalled
            }
            _ => CancelOutcome::Finished,
        }
    }

    /// Block until the job reaches a terminal state; `None` for an
    /// unknown id.
    #[must_use]
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.lock();
        loop {
            let entry = st.jobs.get(&id)?;
            if entry.state.is_terminal() {
                return Some(JobStatus {
                    id,
                    state: entry.state,
                    error: entry.error.clone(),
                });
            }
            st = self
                .inner
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Move a terminal job's output out of the engine (at most once).
    #[must_use]
    pub fn take_output(&self, id: JobId) -> Option<JobOutput> {
        self.inner.lock().jobs.get_mut(&id)?.output.take()
    }

    /// Graceful shutdown: stop accepting, cancel everything still
    /// queued, let running jobs finish, join the workers. Idempotent.
    pub fn shutdown(&self) {
        let mut st = self.inner.lock();
        st.accepting = false;
        let mut dropped: Vec<(JobId, SharedSink)> = Vec::new();
        while let Some(id) = st.queue.pop_front() {
            if let Some(entry) = st.jobs.get_mut(&id) {
                entry.state = JobState::Cancelled;
                entry.cancel.cancel();
                entry.spec = None;
                dropped.push((id, Arc::clone(&entry.sink)));
            }
        }
        drop(st);
        self.inner.work.notify_all();
        self.inner.done.notify_all();
        for (id, sink) in dropped {
            sink.event(id, &JobEvent::Cancelled(None));
        }
        let workers = std::mem::take(
            &mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Adapts the job sink into the core [`ProgressSink`] a [`RunCtl`]
/// carries, tagging every event with the job id.
struct Forward<'a> {
    job: JobId,
    sink: &'a dyn JobSink,
}

impl ProgressSink for Forward<'_> {
    fn event(&self, event: ProgressEvent) {
        self.sink.event(self.job, &JobEvent::Progress(event));
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        // Claim the next job (FIFO) or exit once the engine drains.
        let (id, spec, cancel, sink) = {
            let mut st = inner.lock();
            loop {
                if let Some(&id) = st.queue.front() {
                    st.queue.pop_front();
                    let Some(entry) = st.jobs.get_mut(&id) else {
                        continue;
                    };
                    entry.state = JobState::Running;
                    let spec = entry.spec.take();
                    let cancel = entry.cancel.clone();
                    let sink = Arc::clone(&entry.sink);
                    let Some(spec) = spec else {
                        // Cancelled between queue pop and entry lookup
                        // cannot happen (cancel dequeues under the same
                        // lock), but stay defensive.
                        entry.state = JobState::Cancelled;
                        continue;
                    };
                    break (id, spec, cancel, sink);
                }
                if !st.accepting {
                    return;
                }
                st = inner
                    .work
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        // Injected resilience fault: this worker dies right here. The
        // claimed job is reported failed (it never started executing)
        // and the thread is gone — the pool shrinks but the engine
        // keeps serving (see the test-faults suite).
        if faults::fire(faults::sites::JOBS_WORKER_KILL) {
            finish(
                inner,
                id,
                JobState::Failed,
                None,
                Some("worker killed by injected fault".to_owned()),
                &sink,
            );
            return;
        }

        sink.event(id, &JobEvent::Started);
        let ctl_sink = Forward {
            job: id,
            sink: sink.as_ref(),
        };
        let ctl = RunCtl {
            cancel: cancel.clone(),
            progress: &ctl_sink,
        };
        // A panicking job must not take the worker (or the pool's
        // determinism) with it: catch, report, keep serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&spec, &ctl, &inner.warm)
        }));
        match outcome {
            Ok(Ok(output)) => {
                // A cancelled sweep surfaces as a *partial* Ok outcome;
                // classify it as cancelled, with the partial attached.
                let partial = matches!(
                    &output, JobOutput::Explore(o) if o.stats.points_cancelled > 0
                );
                let state = if partial {
                    JobState::Cancelled
                } else {
                    JobState::Done
                };
                finish(inner, id, state, Some(output), None, &sink);
            }
            Ok(Err(ExecError::Cancelled)) => {
                finish(inner, id, JobState::Cancelled, None, None, &sink);
            }
            Ok(Err(ExecError::Failed(msg))) => {
                finish(inner, id, JobState::Failed, None, Some(msg), &sink);
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                finish(
                    inner,
                    id,
                    JobState::Failed,
                    None,
                    Some(format!("job panicked: {msg}")),
                    &sink,
                );
            }
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

/// Record a terminal transition: emit the matching event, then
/// publish state + output into the table.
///
/// The event goes out *first*, borrowing the still-local output, so no
/// sink ever runs under the state lock (sinks may block on I/O and may
/// hold their own write lock around engine calls — emitting under the
/// lock would be an ABBA deadlock with `submit`). The one observable
/// consequence: a status query racing the terminal event can still see
/// `running` for an instant; [`JobEngine::wait`] and
/// [`JobEngine::take_output`] are only released after the publish.
fn finish(
    inner: &Arc<Inner>,
    id: JobId,
    state: JobState,
    output: Option<JobOutput>,
    error: Option<String>,
    sink: &SharedSink,
) {
    if let Some(JobOutput::Explore(o)) = &output {
        inner
            .merges_replayed
            .fetch_add(o.stats.merges_replayed as u64, Ordering::Relaxed);
        inner
            .merges_recomputed
            .fetch_add(o.stats.merges_recomputed as u64, Ordering::Relaxed);
    }
    match state {
        JobState::Done => {
            if let Some(out) = &output {
                sink.event(id, &JobEvent::Done(out));
            }
        }
        JobState::Cancelled => sink.event(id, &JobEvent::Cancelled(output.as_ref())),
        JobState::Failed => sink.event(
            id,
            &JobEvent::Failed(error.as_deref().unwrap_or("unknown failure")),
        ),
        JobState::Queued | JobState::Running => {}
    }
    {
        let mut st = inner.lock();
        if let Some(entry) = st.jobs.get_mut(&id) {
            entry.state = state;
            entry.output = output;
            entry.error = error;
        }
    }
    inner.done.notify_all();
}
