//! A minimal JSON reader for the serve protocol.
//!
//! The workspace deliberately has no serde (offline build, hand-rolled
//! output everywhere — see [`hlts_dse::json_string`]); this module adds
//! the other direction: a small recursive-descent parser producing a
//! [`Json`] tree, enough to read line-delimited protocol requests.
//! Objects keep their key order (a `Vec` of pairs — duplicate keys
//! resolve to the first occurrence, and the handful of keys per
//! request makes linear lookup the right trade).
//!
//! Robustness over features: a depth bound caps hostile nesting, a
//! trailing-garbage check rejects concatenated documents, and every
//! error carries the byte offset it was detected at — malformed
//! protocol lines turn into structured error responses, never into a
//! daemon panic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first occurrence), `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer (rejects
    /// fractional, negative and out-of-range values).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        // Lossless: gated to the f64-exact integer range above.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(n as u64)
    }

    /// The number as an exact `usize` (see [`as_u64`](Self::as_u64)).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        usize::try_from(self.as_u64()?).ok()
    }

    /// The number as an exact `u32` (see [`as_u64`](Self::as_u64)).
    #[must_use]
    pub fn as_u32(&self) -> Option<u32> {
        u32::try_from(self.as_u64()?).ok()
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: protocol requests are a couple of levels deep, and
/// the recursive parser must not let a hostile line overflow the
/// worker's stack.
const MAX_DEPTH: usize = 64;

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number `{text}` overflows"),
            });
        }
        Ok(Json::Num(n))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let slice = end.map(|e| &self.bytes[self.pos..e]);
        let text = slice
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // A surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty slice"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(
            r#"{"op":"submit","id":"c1","job":{"kind":"run","source":"bench:ewf","bits":8,
                "alpha":10.0,"weights":[[2,1],[1,10]],"deep":null,"flag":true}}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        let job = v.get("job").unwrap();
        assert_eq!(job.get("bits").and_then(Json::as_u32), Some(8));
        assert_eq!(job.get("alpha").and_then(Json::as_f64), Some(10.0));
        assert_eq!(job.get("weights").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(job.get("deep"), Some(&Json::Null));
        assert_eq!(job.get("flag").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA😀"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "{]",
            "nul",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "123 456",
            "{\"a\":1} extra",
            "1e999",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input `{bad}`");
        }
        // Hostile nesting hits the depth bound, not the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn integer_accessors_are_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_usize(), Some(1000));
    }
}
