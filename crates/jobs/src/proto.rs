//! The line-delimited JSON protocol of `hlts serve`.
//!
//! One request per line in, one response per line out, plus streamed
//! per-job event lines. This module is pure data: it parses request
//! lines into [`Request`] values and renders responses/events as
//! single-line JSON strings (hand-rolled, like every other JSON
//! emitter in the workspace — see [`hlts_dse::json_string`]). The I/O
//! and engine wiring live in [`crate::serve`].
//!
//! # Requests
//!
//! ```text
//! {"op":"submit","id":"c1","job":{"kind":"run","source":"bench:ewf",
//!     "flow":"ours","bits":8,"k":3,"alpha":10,"beta":1}}
//! {"op":"submit","job":{"kind":"run","dfg":"dfg t { ... }"}}
//! {"op":"submit","job":{"kind":"explore","sources":["bench:ex"],
//!     "flows":["ours","camad"],"ks":[1,3],"weights":[[2,1],[1,10]],
//!     "bits":[8],"jobs":2}}
//! {"op":"submit","job":{"kind":"gen","seed":7,"preset":"balanced"}}
//! {"op":"status","id":"s1"}
//! {"op":"cancel","job":3}
//! {"op":"shutdown"}
//! ```
//!
//! `id` is an optional client-chosen correlation string, echoed on the
//! response — including on *error* responses whenever the line was
//! valid JSON carrying one. A malformed line is answered with
//! `{"ok":false,...}` and counted; it never terminates the connection
//! or the daemon.
//!
//! # Responses and events
//!
//! ```text
//! {"ok":true,"id":"c1","job":3}
//! {"ok":false,"id":"c1","error":"..."}
//! {"event":"started","job":3}
//! {"event":"iteration","job":3,"iteration":4,"merges":4}
//! {"event":"point_done","job":3,"point":7,"completed":3,"total":12}
//! {"event":"done","job":3,"result":{...}}
//! {"event":"cancelled","job":3,"partial":{...}}
//! {"event":"failed","job":3,"error":"..."}
//! ```

use hlts_core::{DesignMetrics, ProgressEvent, SynthesisResult};
use hlts_dfg::SymStats;
use hlts_dse::{json_string, ExploreOutcome, Flow, TcovSweep};
use hlts_tcov::CoverageReport;

use crate::engine::{AtpgRequest, CancelOutcome, EngineCounts, JobEvent, JobId, JobOutput, RunOutput};
use crate::json::{self, Json};

/// A reference to a behavior source, resolved by the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceRef {
    /// A built-in benchmark (`bench:NAME`).
    Bench(String),
    /// A file path on the daemon's filesystem.
    Path(String),
    /// Inline textual DFG, shipped in the request (what `hlts submit`
    /// sends so the daemon's working directory never matters).
    Inline {
        /// Display name for reports.
        name: String,
        /// The DFG text.
        text: String,
    },
}

impl SourceRef {
    /// The display name used in reports and sweep specs.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SourceRef::Bench(name) => name.clone(),
            SourceRef::Path(path) => std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned()),
            SourceRef::Inline { name, .. } => name.clone(),
        }
    }
}

/// A parsed job description (declarative; the serve layer resolves
/// sources and builds the executable [`crate::JobSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// One synthesis run.
    Run {
        /// The behavior.
        source: SourceRef,
        /// The flow (default `ours`).
        flow: Flow,
        /// Bit width (default 8).
        bits: u32,
        /// Shortlist size override.
        k: Option<usize>,
        /// α override.
        alpha: Option<f64>,
        /// β override.
        beta: Option<f64>,
        /// Post-synthesis coverage grading (`"atpg": true` or
        /// `{"fault_sample": N, "jobs": M}`; absent = no grading).
        atpg: Option<AtpgRequest>,
    },
    /// A parameter sweep.
    Explore {
        /// The behaviors.
        sources: Vec<SourceRef>,
        /// Flows of the grid (default `[ours]`).
        flows: Vec<Flow>,
        /// Shortlist sizes (default `[3]`).
        ks: Vec<usize>,
        /// (α, β) pairs (default the paper's three).
        weights: Vec<(f64, f64)>,
        /// Bit widths (default `[8]`).
        bits: Vec<u32>,
        /// Sweep-internal worker threads (default 1).
        jobs: usize,
        /// Coverage grading per point (`"atpg": true` or
        /// `{"fault_sample": N}`; absent = plain objectives).
        tcov: Option<TcovSweep>,
        /// Warm-start trace replay across sweep neighbours
        /// (`"warm_start": true`; default off — off is bit-identical
        /// to the pre-warm-start protocol).
        warm_start: bool,
    },
    /// Workload generation.
    Gen {
        /// The reproducibility seed (default 0).
        seed: u64,
        /// Preset name (default `balanced`).
        preset: String,
    },
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job.
    Submit {
        /// Client correlation id, echoed on the response.
        id: Option<String>,
        /// What to run.
        job: JobRequest,
    },
    /// Report engine counters, interner stats and protocol health.
    Status {
        /// Client correlation id.
        id: Option<String>,
    },
    /// Cancel a job by engine id.
    Cancel {
        /// Client correlation id.
        id: Option<String>,
        /// The engine-assigned job id to cancel.
        job: JobId,
    },
    /// Stop accepting, finish running jobs, exit.
    Shutdown {
        /// Client correlation id.
        id: Option<String>,
    },
}

/// A rejected request line: the message plus the client id when the
/// line was good enough JSON to carry one (so clients can correlate
/// even their malformed requests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqError {
    /// Echoed client correlation id, when recoverable.
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

impl ReqError {
    fn new(id: &Option<String>, message: impl Into<String>) -> ReqError {
        ReqError {
            id: id.clone(),
            message: message.into(),
        }
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

/// Parse one request line.
///
/// # Errors
///
/// [`ReqError`] describing the problem, with the client id echoed when
/// the line was valid JSON.
pub fn parse_request(line: &str) -> Result<Request, ReqError> {
    let doc = json::parse(line).map_err(|e| ReqError {
        id: None,
        message: format!("not valid JSON: {e}"),
    })?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ReqError {
            id: None,
            message: "request must be a JSON object".to_owned(),
        });
    }
    // From here on the id is recoverable — echo it on every error.
    let id = opt_str(&doc, "id").map_err(|m| ReqError { id: None, message: m })?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ReqError::new(&id, "missing `op` (submit, status, cancel, shutdown)"))?;
    match op {
        "submit" => {
            let job = doc
                .get("job")
                .ok_or_else(|| ReqError::new(&id, "submit needs a `job` object"))?;
            let job = parse_job(job).map_err(|m| ReqError::new(&id, m))?;
            Ok(Request::Submit { id, job })
        }
        "status" => Ok(Request::Status { id }),
        "cancel" => {
            let job = doc
                .get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| ReqError::new(&id, "cancel needs a numeric `job` id"))?;
            Ok(Request::Cancel { id, job })
        }
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(ReqError::new(
            &id,
            format!("unknown op `{other}` (expected submit, status, cancel or shutdown)"),
        )),
    }
}

fn parse_source(v: &Json) -> Result<SourceRef, String> {
    if let Some(text) = v.as_str() {
        return Ok(match text.strip_prefix("bench:") {
            Some(name) => SourceRef::Bench(name.to_owned()),
            None => SourceRef::Path(text.to_owned()),
        });
    }
    if matches!(v, Json::Obj(_)) {
        let text = v
            .get("dfg")
            .and_then(Json::as_str)
            .ok_or("inline source needs a `dfg` string")?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("inline")
            .to_owned();
        return Ok(SourceRef::Inline {
            name,
            text: text.to_owned(),
        });
    }
    Err("source must be a string (`bench:NAME` or a path) or an inline object".to_owned())
}

fn parse_flow(s: &str) -> Result<Flow, String> {
    Flow::parse(s)
        .ok_or_else(|| format!("unknown flow `{s}` (expected ours, camad, approach1 or approach2)"))
}

fn parse_k(v: &Json) -> Result<usize, String> {
    let k = v.as_usize().ok_or("`k` must be a non-negative integer")?;
    if k == 0 {
        return Err("`k` must be >= 1 (the paper's shortlist size)".to_owned());
    }
    Ok(k)
}

fn parse_weight(v: &Json, what: &str) -> Result<f64, String> {
    let w = v.as_f64().ok_or_else(|| format!("`{what}` must be a number"))?;
    if !w.is_finite() || w < 0.0 {
        return Err(format!("`{what}` must be finite and non-negative"));
    }
    Ok(w)
}

/// The `atpg` knob shared by run and explore jobs: absent or `false`
/// disables grading, `true` takes the defaults, an object validates
/// `fault_sample` (0 = the exhaustive collapsed universe) and `jobs`
/// (grading worker threads; reports are jobs-invariant).
fn parse_atpg(job: &Json) -> Result<Option<AtpgRequest>, String> {
    let Some(v) = job.get("atpg") else {
        return Ok(None);
    };
    match v {
        Json::Bool(false) => Ok(None),
        Json::Bool(true) => Ok(Some(AtpgRequest::default())),
        Json::Obj(_) => {
            let mut req = AtpgRequest::default();
            if let Some(fs) = v.get("fault_sample") {
                let n = fs
                    .as_usize()
                    .ok_or("`fault_sample` must be a non-negative integer")?;
                req.fault_sample = (n > 0).then_some(n);
            }
            if let Some(j) = v.get("jobs") {
                let j = j
                    .as_usize()
                    .ok_or("atpg `jobs` must be a non-negative integer")?;
                if j == 0 {
                    return Err("atpg `jobs` must be >= 1".to_owned());
                }
                req.jobs = j;
            }
            Ok(Some(req))
        }
        _ => Err("`atpg` must be a boolean or an object".to_owned()),
    }
}

fn parse_job(job: &Json) -> Result<JobRequest, String> {
    let kind = job
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("job needs a `kind` (run, explore or gen)")?;
    match kind {
        "run" => {
            let source = match (job.get("source"), job.get("dfg")) {
                (Some(s), None) => parse_source(s)?,
                (None, Some(d)) => parse_source(&Json::Obj(vec![
                    ("dfg".to_owned(), d.clone()),
                    (
                        "name".to_owned(),
                        job.get("name").cloned().unwrap_or(Json::Null),
                    ),
                ]))?,
                (None, None) => return Err("run job needs `source` or `dfg`".to_owned()),
                (Some(_), Some(_)) => {
                    return Err("run job takes `source` or `dfg`, not both".to_owned())
                }
            };
            let flow = match job.get("flow") {
                None => Flow::Ours,
                Some(f) => parse_flow(f.as_str().ok_or("`flow` must be a string")?)?,
            };
            let bits = match job.get("bits") {
                None => 8,
                Some(b) => b.as_u32().ok_or("`bits` must be a non-negative integer")?,
            };
            let k = job.get("k").map(parse_k).transpose()?;
            let alpha = job
                .get("alpha")
                .map(|v| parse_weight(v, "alpha"))
                .transpose()?;
            let beta = job
                .get("beta")
                .map(|v| parse_weight(v, "beta"))
                .transpose()?;
            let atpg = parse_atpg(job)?;
            Ok(JobRequest::Run {
                source,
                flow,
                bits,
                k,
                alpha,
                beta,
                atpg,
            })
        }
        "explore" => {
            let sources = job
                .get("sources")
                .and_then(Json::as_arr)
                .ok_or("explore job needs a `sources` array")?
                .iter()
                .map(parse_source)
                .collect::<Result<Vec<_>, _>>()?;
            if sources.is_empty() {
                return Err("`sources` must not be empty".to_owned());
            }
            let flows = match job.get("flows").map(Json::as_arr) {
                None => vec![Flow::Ours],
                Some(None) => return Err("`flows` must be an array".to_owned()),
                Some(Some(items)) => items
                    .iter()
                    .map(|f| parse_flow(f.as_str().ok_or("`flows` entries must be strings")?))
                    .collect::<Result<Vec<_>, _>>()?,
            };
            let ks = match job.get("ks").map(Json::as_arr) {
                None => vec![3],
                Some(None) => return Err("`ks` must be an array".to_owned()),
                Some(Some(items)) => items
                    .iter()
                    .map(parse_k)
                    .collect::<Result<Vec<_>, _>>()?,
            };
            let weights = match job.get("weights").map(Json::as_arr) {
                None => vec![(2.0, 1.0), (10.0, 1.0), (1.0, 10.0)],
                Some(None) => return Err("`weights` must be an array".to_owned()),
                Some(Some(items)) => items
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or("`weights` entries must be [alpha, beta] pairs")?;
                        Ok::<_, String>((
                            parse_weight(&pair[0], "alpha")?,
                            parse_weight(&pair[1], "beta")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            let bits = match job.get("bits").map(Json::as_arr) {
                None => vec![8],
                Some(None) => return Err("`bits` must be an array".to_owned()),
                Some(Some(items)) => items
                    .iter()
                    .map(|b| b.as_u32().ok_or("`bits` entries must be integers".to_owned()))
                    .collect::<Result<Vec<_>, _>>()?,
            };
            if flows.is_empty() || ks.is_empty() || weights.is_empty() || bits.is_empty() {
                return Err("grid axes must not be empty".to_owned());
            }
            let jobs = match job.get("jobs") {
                None => 1,
                Some(j) => {
                    let j = j.as_usize().ok_or("`jobs` must be a non-negative integer")?;
                    if j == 0 {
                        return Err("`jobs` must be >= 1".to_owned());
                    }
                    j
                }
            };
            // The sweep grades per point at `jobs = 1` (sweep workers
            // are the parallelism), so only `fault_sample` carries
            // over; a graded report is jobs-invariant either way.
            let tcov = parse_atpg(job)?.map(|req| TcovSweep {
                fault_sample: req.fault_sample.unwrap_or(0),
            });
            let warm_start = match job.get("warm_start") {
                None => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("`warm_start` must be a boolean".to_owned()),
            };
            Ok(JobRequest::Explore {
                sources,
                flows,
                ks,
                weights,
                bits,
                jobs,
                tcov,
                warm_start,
            })
        }
        "gen" => {
            let seed = match job.get("seed") {
                None => 0,
                Some(s) => s.as_u64().ok_or("`seed` must be a non-negative integer")?,
            };
            let preset = job
                .get("preset")
                .map(|p| {
                    p.as_str()
                        .map(str::to_owned)
                        .ok_or("`preset` must be a string")
                })
                .transpose()?
                .unwrap_or_else(|| "balanced".to_owned());
            Ok(JobRequest::Gen { seed, preset })
        }
        other => Err(format!("unknown job kind `{other}` (run, explore or gen)")),
    }
}

fn id_field(id: Option<&str>) -> String {
    id.map_or_else(String::new, |id| format!("\"id\": {}, ", json_string(id)))
}

/// `{"ok":true,...}` submit acknowledgement with the engine job id.
#[must_use]
pub fn render_submit_ok(id: Option<&str>, job: JobId) -> String {
    format!("{{\"ok\": true, {}\"job\": {job}}}", id_field(id))
}

/// `{"ok":false,...}` error response (also the malformed-line answer).
#[must_use]
pub fn render_error(id: Option<&str>, message: &str) -> String {
    format!(
        "{{\"ok\": false, {}\"error\": {}}}",
        id_field(id),
        json_string(message)
    )
}

/// `{"ok":true,...}` status snapshot: engine counters, warm-cache and
/// leak-bounded interner statistics, and the malformed-request count.
#[must_use]
pub fn render_status(
    id: Option<&str>,
    counts: &EngineCounts,
    malformed: u64,
    sym: SymStats,
) -> String {
    format!(
        "{{\"ok\": true, {}\"status\": {{\
         \"jobs\": {{\"queued\": {}, \"running\": {}, \"done\": {}, \"failed\": {}, \
         \"cancelled\": {}}}, \
         \"workers\": {}, \"queue_capacity\": {}, \
         \"warm\": {{\"hits\": {}, \"misses\": {}}}, \
         \"explore_replay\": {{\"merges_replayed\": {}, \"merges_recomputed\": {}}}, \
         \"tcov\": {{\"ctx_hits\": {}, \"ctx_misses\": {}, \
         \"report_hits\": {}, \"report_misses\": {}}}, \
         \"malformed_requests\": {malformed}, \
         \"interner\": {{\"count\": {}, \"bytes\": {}}}}}}}",
        id_field(id),
        counts.queued,
        counts.running,
        counts.done,
        counts.failed,
        counts.cancelled,
        counts.workers,
        counts.queue_capacity,
        counts.warm_hits,
        counts.warm_misses,
        counts.merges_replayed,
        counts.merges_recomputed,
        counts.tcov.ctx_hits,
        counts.tcov.ctx_misses,
        counts.tcov.report_hits,
        counts.tcov.report_misses,
        sym.count,
        sym.bytes,
    )
}

/// `{"ok":true,...}` cancel acknowledgement.
#[must_use]
pub fn render_cancel(id: Option<&str>, job: JobId, outcome: CancelOutcome) -> String {
    format!(
        "{{\"ok\": true, {}\"job\": {job}, \"cancel\": {}}}",
        id_field(id),
        json_string(outcome.name()),
    )
}

/// `{"ok":true,...}` shutdown acknowledgement.
#[must_use]
pub fn render_shutdown(id: Option<&str>) -> String {
    format!("{{\"ok\": true, {}\"shutdown\": true}}", id_field(id))
}

/// The metrics object of one synthesis result — the exact shape
/// `hlts run --json` prints, so daemon results and one-shot results
/// compare with plain string equality.
#[must_use]
pub fn metrics_json(m: &DesignMetrics) -> String {
    format!(
        "{{\"execution_time\": {}, \"modules\": {}, \"registers\": {}, \"muxes\": {}, \
         \"self_loops\": {}, \"hardware\": {:?}, \"avg_controllability\": {:?}, \
         \"avg_observability\": {:?}, \"co_depth\": {:?}}}",
        m.execution_time,
        m.num_modules,
        m.num_registers,
        m.mux_count,
        m.self_loops,
        m.hardware.total(),
        m.avg_controllability,
        m.avg_observability,
        m.co_depth,
    )
}

/// One run result as a single-line JSON object (metrics + merge log).
#[must_use]
pub fn run_result_json(result: &SynthesisResult) -> String {
    format!("{{{}}}", run_fields(result))
}

fn run_fields(result: &SynthesisResult) -> String {
    format!(
        "\"metrics\": {}, \"merges\": [{}]",
        metrics_json(&result.metrics),
        result
            .merge_log
            .iter()
            .map(|s| json_string(s))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// One coverage report as a single-line JSON object. `faults_graded`
/// vs `total_collapsed` distinguishes a sampled estimate from an
/// exhaustive grade — both are always reported.
#[must_use]
pub fn coverage_json(r: &CoverageReport) -> String {
    format!(
        "{{\"gates\": {}, \"coverage\": {:?}, \"efficiency\": {:?}, \"faults_graded\": {}, \
         \"total_collapsed\": {}, \"total_uncollapsed\": {}, \"detected_random\": {}, \
         \"detected_deterministic\": {}, \"untestable\": {}, \"aborted\": {}, \
         \"test_cycles\": {}, \"random_patterns\": {}}}",
        r.gates,
        r.coverage(),
        r.efficiency(),
        r.faults_graded,
        r.total_collapsed,
        r.total_uncollapsed,
        r.detected_random,
        r.detected_deterministic,
        r.untestable,
        r.aborted,
        r.test_cycles,
        r.random_patterns,
    )
}

/// A run job's full payload: [`run_result_json`] plus a `"coverage"`
/// object when the job asked for grading. Ungraded payloads are
/// byte-identical to the pre-coverage protocol.
#[must_use]
pub fn run_output_json(out: &RunOutput) -> String {
    match &out.coverage {
        None => run_result_json(&out.result),
        Some(report) => format!(
            "{{{}, \"coverage\": {}}}",
            run_fields(&out.result),
            coverage_json(report)
        ),
    }
}

/// One explore outcome as a single-line JSON summary. The
/// `front_signature` field is the workspace's canonical bit-identity
/// witness (equal strings ⇔ bit-identical fronts). Warm-start sweeps
/// additionally report the replayed/recomputed merge split; cold
/// sweeps stay byte-identical to the pre-warm-start protocol.
#[must_use]
pub fn explore_result_json(outcome: &ExploreOutcome) -> String {
    let s = &outcome.stats;
    let warm = if outcome.results.iter().any(|r| r.replay.is_some()) {
        format!(
            ", \"merges_replayed\": {}, \"merges_recomputed\": {}",
            s.merges_replayed, s.merges_recomputed
        )
    } else {
        String::new()
    };
    format!(
        "{{\"front_signature\": {}, \"front_size\": {}, \"points_total\": {}, \
         \"points_computed\": {}, \"points_resumed\": {}, \"points_failed\": {}, \
         \"points_cancelled\": {}{warm}}}",
        json_string(&outcome.front_signature()),
        outcome.front.len(),
        s.points_total,
        s.points_computed,
        s.points_resumed,
        s.points_failed,
        s.points_cancelled,
    )
}

fn output_json(output: &JobOutput) -> String {
    match output {
        JobOutput::Run(r) => run_output_json(r),
        JobOutput::Explore(o) => explore_result_json(o),
        JobOutput::Gen(text) => format!("{{\"dfg\": {}}}", json_string(text)),
    }
}

/// One job event as a single-line JSON object.
#[must_use]
pub fn render_event(job: JobId, event: &JobEvent<'_>) -> String {
    match event {
        JobEvent::Started => format!("{{\"event\": \"started\", \"job\": {job}}}"),
        JobEvent::Progress(p) => match *p {
            ProgressEvent::Iteration { iteration, merges } => format!(
                "{{\"event\": \"iteration\", \"job\": {job}, \
                 \"iteration\": {iteration}, \"merges\": {merges}}}"
            ),
            ProgressEvent::PointDone {
                id,
                completed,
                total,
            } => format!(
                "{{\"event\": \"point_done\", \"job\": {job}, \"point\": {id}, \
                 \"completed\": {completed}, \"total\": {total}}}"
            ),
            // `ProgressEvent` is non_exhaustive; unknown future events
            // must not break the protocol stream.
            _ => format!("{{\"event\": \"progress\", \"job\": {job}}}"),
        },
        JobEvent::Done(output) => format!(
            "{{\"event\": \"done\", \"job\": {job}, \"result\": {}}}",
            output_json(output)
        ),
        JobEvent::Failed(message) => format!(
            "{{\"event\": \"failed\", \"job\": {job}, \"error\": {}}}",
            json_string(message)
        ),
        JobEvent::Cancelled(partial) => match partial {
            Some(output) => format!(
                "{{\"event\": \"cancelled\", \"job\": {job}, \"partial\": {}}}",
                output_json(output)
            ),
            None => format!("{{\"event\": \"cancelled\", \"job\": {job}}}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_submit_with_defaults() {
        let req = parse_request(
            r#"{"op":"submit","id":"c1","job":{"kind":"run","source":"bench:ewf"}}"#,
        )
        .unwrap();
        let Request::Submit { id, job } = req else {
            panic!("wrong request kind");
        };
        assert_eq!(id.as_deref(), Some("c1"));
        assert_eq!(
            job,
            JobRequest::Run {
                source: SourceRef::Bench("ewf".into()),
                flow: Flow::Ours,
                bits: 8,
                k: None,
                alpha: None,
                beta: None,
                atpg: None,
            }
        );
    }

    #[test]
    fn parses_the_atpg_knob_in_all_spellings() {
        let get = |line: &str| {
            let Request::Submit { job, .. } = parse_request(line).unwrap() else {
                panic!("wrong request kind");
            };
            job
        };
        // `true` takes the defaults, `false` is the same as absent.
        let JobRequest::Run { atpg, .. } =
            get(r#"{"op":"submit","job":{"kind":"run","source":"bench:ex","atpg":true}}"#)
        else {
            panic!("wrong job kind");
        };
        assert_eq!(atpg, Some(AtpgRequest::default()));
        let JobRequest::Run { atpg, .. } =
            get(r#"{"op":"submit","job":{"kind":"run","source":"bench:ex","atpg":false}}"#)
        else {
            panic!("wrong job kind");
        };
        assert_eq!(atpg, None);
        // An object validates both knobs; `fault_sample: 0` means the
        // exhaustive collapsed universe.
        let JobRequest::Run { atpg, .. } = get(
            r#"{"op":"submit","job":{"kind":"run","source":"bench:ex",
                "atpg":{"fault_sample":0,"jobs":4}}}"#,
        ) else {
            panic!("wrong job kind");
        };
        assert_eq!(
            atpg,
            Some(AtpgRequest {
                fault_sample: None,
                jobs: 4
            })
        );
        // Explore carries the sample into the sweep spec.
        let JobRequest::Explore { tcov, .. } = get(
            r#"{"op":"submit","job":{"kind":"explore","sources":["bench:ex"],
                "atpg":{"fault_sample":500}}}"#,
        ) else {
            panic!("wrong job kind");
        };
        assert_eq!(tcov, Some(TcovSweep { fault_sample: 500 }));
        // Garbage is rejected, not defaulted.
        let e = parse_request(
            r#"{"op":"submit","job":{"kind":"run","source":"bench:ex","atpg":{"jobs":0}}}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("jobs"), "{}", e.message);
        let e = parse_request(
            r#"{"op":"submit","job":{"kind":"run","source":"bench:ex","atpg":"yes"}}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("atpg"), "{}", e.message);
    }

    #[test]
    fn parses_explore_submit() {
        let req = parse_request(
            r#"{"op":"submit","job":{"kind":"explore","sources":["bench:ex",
                {"name":"t","dfg":"dfg t { input a; output a; }"}],
                "flows":["ours","camad"],"ks":[1,3],"weights":[[2,1]],"bits":[4,8],"jobs":2}}"#,
        )
        .unwrap();
        let Request::Submit {
            job: JobRequest::Explore {
                sources,
                flows,
                ks,
                weights,
                bits,
                jobs,
                tcov,
                warm_start,
            },
            ..
        } = req
        else {
            panic!("wrong request kind");
        };
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[1].name(), "t");
        assert_eq!(flows, vec![Flow::Ours, Flow::Camad]);
        assert_eq!(ks, vec![1, 3]);
        assert_eq!(weights, vec![(2.0, 1.0)]);
        assert_eq!(bits, vec![4, 8]);
        assert_eq!(jobs, 2);
        assert_eq!(tcov, None);
        assert!(!warm_start, "warm start defaults to off");
    }

    #[test]
    fn parses_the_warm_start_knob() {
        let get = |line: &str| {
            let Request::Submit {
                job: JobRequest::Explore { warm_start, .. },
                ..
            } = parse_request(line).unwrap()
            else {
                panic!("wrong request kind");
            };
            warm_start
        };
        assert!(get(
            r#"{"op":"submit","job":{"kind":"explore","sources":["bench:ex"],"warm_start":true}}"#
        ));
        assert!(!get(
            r#"{"op":"submit","job":{"kind":"explore","sources":["bench:ex"],"warm_start":false}}"#
        ));
        // Garbage is rejected, not defaulted.
        let e = parse_request(
            r#"{"op":"submit","job":{"kind":"explore","sources":["bench:ex"],"warm_start":1}}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("warm_start"), "{}", e.message);
    }

    #[test]
    fn malformed_lines_echo_the_id_when_recoverable() {
        // Not JSON at all: no id to echo.
        let e = parse_request("this is not json").unwrap_err();
        assert_eq!(e.id, None);
        // Valid JSON with an id but a broken body: the id comes back.
        let e = parse_request(r#"{"op":"submit","id":"x9","job":{"kind":"run"}}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x9"));
        assert!(e.message.contains("`source` or `dfg`"));
        let e = parse_request(r#"{"op":"warp","id":"x1"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x1"));
        // Bad parameter values are rejected, not silently defaulted.
        let e =
            parse_request(r#"{"op":"submit","job":{"kind":"run","source":"bench:ex","k":0}}"#)
                .unwrap_err();
        assert!(e.message.contains("k"));
        let e = parse_request(
            r#"{"op":"submit","job":{"kind":"run","source":"bench:ex","alpha":-1}}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("alpha"));
    }

    #[test]
    fn responses_are_single_lines() {
        let lines = [
            render_submit_ok(Some("a"), 3),
            render_error(None, "boom\nnewline"),
            render_cancel(Some("b"), 7, CancelOutcome::Dequeued),
            render_shutdown(None),
            render_status(
                Some("s"),
                &EngineCounts::default(),
                2,
                SymStats { count: 5, bytes: 40 },
            ),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "multi-line response: {line}");
            // Every response must itself parse as JSON.
            crate::json::parse(line).unwrap();
        }
        assert!(lines[4].contains("\"malformed_requests\": 2"));
        assert!(lines[4].contains("\"explore_replay\": {\"merges_replayed\": 0, \"merges_recomputed\": 0}"));
        assert!(lines[4].contains("\"tcov\": {\"ctx_hits\": 0"));
        assert!(lines[4].contains("\"interner\": {\"count\": 5, \"bytes\": 40}"));
    }
}
