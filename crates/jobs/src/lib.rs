//! # hlts-jobs — job-oriented execution engine and synthesis daemon
//!
//! Everything the system executes — one-shot CLI runs, design-space
//! sweeps, workload generation, and the `hlts serve` daemon — is a
//! [`JobSpec`] run by one executor ([`execute`]) under one control
//! surface ([`RunCtl`](hlts_core::RunCtl): cooperative cancellation +
//! progress streaming). On top of that sit:
//!
//! * [`JobEngine`] — a bounded FIFO queue feeding a fixed worker
//!   pool, with backpressure ([`SubmitError::QueueFull`]), per-job
//!   [`CancelToken`](hlts_core::CancelToken)s, per-job event sinks,
//!   and a [`WarmPool`] of shared per-behavior synthesis contexts
//!   (base state + testability engine + (E, H) cache) that makes
//!   repeat requests warm;
//! * [`serve`] — the line-delimited JSON daemon (stdin or TCP) and
//!   the `hlts submit` client, speaking the [`proto`] protocol;
//! * [`json`] — the from-scratch JSON reader the protocol needs (the
//!   workspace has no serde by design).
//!
//! Determinism contract: a job whose token never fires is
//! **bit-identical** to the same work run without the engine — the
//! cancellation checks are relaxed atomic loads at iteration/point
//! boundaries, warm contexts share only content-keyed caches, and the
//! pool never reorders the work inside a job.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use hlts_jobs::{EngineConfig, JobEngine, JobOutput, JobSpec, JobState};
//! use hlts_core::{EvalMode, SynthesisParams};
//! use hlts_dse::Flow;
//!
//! let engine = JobEngine::start(EngineConfig::default());
//! let id = engine
//!     .submit(
//!         JobSpec::Run {
//!             name: "ex".into(),
//!             dfg: hlts_benchmarks::ex(),
//!             flow: Flow::Ours,
//!             params: SynthesisParams::paper_defaults(8),
//!             mode: EvalMode::Sequential,
//!             warm: Some(1),
//!             atpg: None,
//!         },
//!         None,
//!     )
//!     .unwrap();
//! assert_eq!(engine.wait(id).unwrap().state, JobState::Done);
//! let Some(JobOutput::Run(out)) = engine.take_output(id) else {
//!     panic!("expected a run output");
//! };
//! assert!(out.result.metrics.execution_time > 0);
//! assert!(out.coverage.is_none(), "no grading was requested");
//! engine.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod engine;
pub mod json;
pub mod proto;
pub mod serve;

pub use engine::{
    execute, AtpgRequest, CancelOutcome, EngineConfig, EngineCounts, ExecError, JobEngine,
    JobEvent, JobId, JobOutput, JobSink, JobSpec, JobState, JobStatus, NullJobSink, RunOutput,
    SubmitError, WarmCtx, WarmPool,
};
pub use serve::{serve_lines, serve_tcp, submit_once, ClientEnd, ServeConfig};
