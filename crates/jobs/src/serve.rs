//! The `hlts serve` daemon and the `hlts submit` client.
//!
//! The daemon reads line-delimited JSON requests (see [`crate::proto`])
//! from stdin or from TCP connections, drives a shared [`JobEngine`],
//! and streams each job's events back to the connection that submitted
//! it. One engine — one warm-context pool, one bounded queue — serves
//! every connection, so repeat requests for the same behavior hit warm
//! caches no matter which client sends them.
//!
//! Failure containment, from the inside out: a failing *point* degrades
//! its job (typed errors / `PointFailure`), a failing *job* is reported
//! on its own connection and the engine keeps serving, and a malformed
//! *request line* is answered with a structured error and counted —
//! none of these ever terminate a connection or the daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use hlts_core::EvalMode;
use hlts_dse::{ExploreConfig, SweepSpec};
use hlts_gen::GenConfig;

use crate::engine::{
    EngineConfig, JobEngine, JobEvent, JobId, JobSink, JobSpec, SubmitError,
};
use crate::json::{self, Json};
use crate::proto::{self, JobRequest, Request, SourceRef};

/// Daemon sizing (forwarded into [`EngineConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads of the job pool.
    pub workers: usize,
    /// FIFO queue bound (backpressure beyond it).
    pub queue_capacity: usize,
    /// Warm-context cache bound.
    pub warm_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let e = EngineConfig::default();
        ServeConfig {
            workers: e.workers,
            queue_capacity: e.queue_capacity,
            warm_capacity: e.warm_capacity,
        }
    }
}

impl From<ServeConfig> for EngineConfig {
    fn from(cfg: ServeConfig) -> EngineConfig {
        EngineConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            warm_capacity: cfg.warm_capacity,
        }
    }
}

/// A line-oriented event sink: serializes response and event lines
/// onto one writer. Write failures are swallowed — a client that went
/// away must not take its jobs (or the daemon) with it.
struct LineSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl LineSink {
    fn new(out: Box<dyn Write + Send>) -> LineSink {
        LineSink { out: Mutex::new(out) }
    }

    fn send(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl JobSink for LineSink {
    fn event(&self, job: JobId, event: &JobEvent<'_>) {
        self.send(&proto::render_event(job, event));
    }
}

/// Shared daemon state: the engine plus protocol health counters.
struct Daemon {
    engine: JobEngine,
    malformed: AtomicU64,
    /// Set once a shutdown request was accepted; the TCP accept loop
    /// checks it after every accepted connection.
    stopping: std::sync::atomic::AtomicBool,
    /// The TCP listener's own address, used to self-connect and
    /// unblock the accept loop on shutdown (stdin mode leaves it
    /// unset).
    local_addr: OnceLock<SocketAddr>,
}

impl Daemon {
    fn new(cfg: ServeConfig) -> Daemon {
        Daemon {
            engine: JobEngine::start(cfg.into()),
            malformed: AtomicU64::new(0),
            stopping: std::sync::atomic::AtomicBool::new(false),
            local_addr: OnceLock::new(),
        }
    }
}

/// FNV-1a over the canonical source text: the warm-context key for
/// run jobs (same text + same bits ⇒ same shared context; the daemon
/// always synthesizes with the default module library, which the key
/// therefore need not encode).
fn warm_key(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Resolve a source reference into a named graph (daemon-side I/O).
fn resolve_source(source: &SourceRef) -> Result<(String, hlts_dfg::Dfg, String), String> {
    let text = match source {
        SourceRef::Bench(name) => {
            let dfg = hlts_benchmarks::by_name(name).ok_or_else(|| {
                format!(
                    "unknown benchmark `{name}` (have: {})",
                    hlts_benchmarks::NAMES.join(", ")
                )
            })?;
            let text = hlts_dfg::emit(&dfg).map_err(|e| e.to_string())?;
            return Ok((source.name(), dfg, text));
        }
        SourceRef::Path(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        }
        SourceRef::Inline { text, .. } => text.clone(),
    };
    let dfg = hlts_dfg::parse(&text).map_err(|e| format!("{}: {e}", source.name()))?;
    Ok((source.name(), dfg, text))
}

/// Build the executable spec for a parsed job request. Mirrors the
/// one-shot CLI's parameter derivation (paper defaults per bit width,
/// the camad flow's (0.1, 10) weight default) so a daemon submission
/// and `hlts run` produce bit-identical results.
fn resolve_job(job: &JobRequest) -> Result<JobSpec, String> {
    use hlts_core::SynthesisParams;
    use hlts_dse::Flow;
    match job {
        JobRequest::Run {
            source,
            flow,
            bits,
            k,
            alpha,
            beta,
            atpg,
        } => {
            let (name, dfg, text) = resolve_source(source)?;
            let mut params = SynthesisParams::paper_defaults(*bits);
            if *flow == Flow::Camad {
                params.alpha = 0.1;
                params.beta = 10.0;
            }
            if let Some(k) = k {
                params.k = *k;
            }
            if let Some(a) = alpha {
                params.alpha = *a;
            }
            if let Some(b) = beta {
                params.beta = *b;
            }
            Ok(JobSpec::Run {
                name,
                warm: Some(warm_key(&text)),
                dfg,
                flow: *flow,
                params,
                // Worker-pool parallelism comes from the engine; keep
                // each job single-threaded inside (results are
                // bit-identical across modes).
                mode: EvalMode::Sequential,
                atpg: *atpg,
            })
        }
        JobRequest::Explore {
            sources,
            flows,
            ks,
            weights,
            bits,
            jobs,
            tcov,
            warm_start,
        } => {
            let mut benches = Vec::new();
            for source in sources {
                let (name, dfg, _) = resolve_source(source)?;
                benches.push((name, dfg));
            }
            let spec = SweepSpec {
                benches,
                flows: flows.clone(),
                ks: ks.clone(),
                weights: weights.clone(),
                bits: bits.clone(),
                extra: Vec::new(),
                tcov: *tcov,
                warm_start: *warm_start,
            };
            let cfg = ExploreConfig {
                jobs: *jobs,
                ..ExploreConfig::default()
            };
            Ok(JobSpec::Explore { spec, cfg })
        }
        JobRequest::Gen { seed, preset } => {
            let cfg: GenConfig = hlts_gen::preset(preset).ok_or_else(|| {
                format!(
                    "unknown preset `{preset}` (have: {})",
                    hlts_gen::PRESET_NAMES.join(", ")
                )
            })?;
            Ok(JobSpec::Gen { seed: *seed, cfg })
        }
    }
}

enum LineOutcome {
    Continue,
    Shutdown,
}

/// Handle one request line: parse, act, answer. Never fails the
/// connection — every problem becomes an `{"ok":false,...}` line.
fn handle_line(daemon: &Daemon, line: &str, sink: &Arc<LineSink>) -> LineOutcome {
    let line = line.trim();
    if line.is_empty() {
        return LineOutcome::Continue;
    }
    let request = match proto::parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            daemon.malformed.fetch_add(1, Ordering::Relaxed);
            sink.send(&proto::render_error(e.id.as_deref(), &e.message));
            return LineOutcome::Continue;
        }
    };
    match request {
        Request::Submit { id, job } => {
            match resolve_job(&job) {
                Ok(spec) => {
                    // Hold the write lock across submit so the
                    // acknowledgement line lands before the job's
                    // first event (workers contend on the same lock).
                    let mut out =
                        sink.out.lock().unwrap_or_else(PoisonError::into_inner);
                    let response = match daemon
                        .engine
                        .submit(spec, Some(Arc::clone(sink) as Arc<dyn JobSink>))
                    {
                        Ok(job) => proto::render_submit_ok(id.as_deref(), job),
                        Err(e @ (SubmitError::QueueFull { .. } | SubmitError::ShuttingDown)) => {
                            proto::render_error(id.as_deref(), &e.to_string())
                        }
                    };
                    let _ = writeln!(out, "{response}");
                    let _ = out.flush();
                }
                Err(message) => {
                    sink.send(&proto::render_error(id.as_deref(), &message));
                }
            }
            LineOutcome::Continue
        }
        Request::Status { id } => {
            sink.send(&proto::render_status(
                id.as_deref(),
                &daemon.engine.counts(),
                daemon.malformed.load(Ordering::Relaxed),
                hlts_dfg::sym::stats(),
            ));
            LineOutcome::Continue
        }
        Request::Cancel { id, job } => {
            let outcome = daemon.engine.cancel(job);
            sink.send(&proto::render_cancel(id.as_deref(), job, outcome));
            LineOutcome::Continue
        }
        Request::Shutdown { id } => {
            daemon.stopping.store(true, Ordering::Release);
            sink.send(&proto::render_shutdown(id.as_deref()));
            LineOutcome::Shutdown
        }
    }
}

/// Serve requests from a reader/writer pair until a shutdown request
/// or end of input, then drain the engine (running jobs finish,
/// queued jobs are cancelled). This is `hlts serve`'s stdin mode —
/// and the deterministic harness the protocol tests drive.
pub fn serve_lines(input: impl BufRead, output: Box<dyn Write + Send>, cfg: ServeConfig) {
    let daemon = Daemon::new(cfg);
    let sink = Arc::new(LineSink::new(output));
    for line in input.lines() {
        let Ok(line) = line else { break };
        if let LineOutcome::Shutdown = handle_line(&daemon, &line, &sink) {
            break;
        }
    }
    daemon.engine.shutdown();
}

fn handle_conn(daemon: &Arc<Daemon>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink = Arc::new(LineSink::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if let LineOutcome::Shutdown = handle_line(daemon, &line, &sink) {
            // Unblock the accept loop so the daemon can exit: the
            // stopping flag is set, one self-connection wakes it.
            if let Some(addr) = daemon.local_addr.get() {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
}

/// Serve requests over TCP until a shutdown request arrives on any
/// connection. Each connection gets its own handler thread; events of
/// a job stream to the connection that submitted it. Returns after
/// the engine drained.
///
/// # Errors
///
/// Propagates listener I/O errors (accepting, local address).
pub fn serve_tcp(listener: TcpListener, cfg: ServeConfig) -> std::io::Result<()> {
    let daemon = Arc::new(Daemon::new(cfg));
    let _ = daemon.local_addr.set(listener.local_addr()?);
    for stream in listener.incoming() {
        let stream = stream?;
        if daemon.stopping.load(Ordering::Acquire) {
            break;
        }
        let daemon = Arc::clone(&daemon);
        // Handler threads are not joined: a client that never sends
        // another line would otherwise block shutdown forever. They
        // hold only an Arc on the daemon and die with the process.
        let _ = std::thread::Builder::new()
            .name("hlts-serve-conn".to_owned())
            .spawn(move || handle_conn(&daemon, stream));
    }
    daemon.engine.shutdown();
    Ok(())
}

/// How a submitted job ended, as observed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEnd {
    /// The job finished; its result line was printed.
    Done,
    /// The job failed; the error line was printed.
    Failed,
    /// The job was cancelled.
    Cancelled,
    /// The daemon rejected the request (error response).
    Rejected,
}

/// Submit one request line to a TCP daemon and stream the job's lines
/// (acknowledgement + events) to `out` until the job terminates.
///
/// # Errors
///
/// Connection/protocol failures as strings (the caller formats them).
pub fn submit_once(
    addr: &str,
    request_line: &str,
    out: &mut dyn Write,
) -> Result<ClientEnd, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(write_half, "{request_line}").map_err(|e| e.to_string())?;
    write_half.flush().map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream);
    let mut job: Option<u64> = None;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read {addr}: {e}"))?;
        let Ok(doc) = json::parse(&line) else {
            continue;
        };
        if job.is_none() {
            // The first response line acknowledges (or rejects) ours.
            if doc.get("ok").and_then(Json::as_bool) == Some(false) {
                writeln!(out, "{line}").map_err(|e| e.to_string())?;
                return Ok(ClientEnd::Rejected);
            }
            if let Some(id) = doc.get("job").and_then(Json::as_u64) {
                job = Some(id);
                writeln!(out, "{line}").map_err(|e| e.to_string())?;
            }
            continue;
        }
        if doc.get("job").and_then(Json::as_u64) != job {
            continue;
        }
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
        match doc.get("event").and_then(Json::as_str) {
            Some("done") => return Ok(ClientEnd::Done),
            Some("failed") => return Ok(ClientEnd::Failed),
            Some("cancelled") => return Ok(ClientEnd::Cancelled),
            _ => {}
        }
    }
    Err("connection closed before the job terminated".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_key_distinguishes_texts() {
        assert_eq!(warm_key("abc"), warm_key("abc"));
        assert_ne!(warm_key("abc"), warm_key("abd"));
        assert_ne!(warm_key(""), warm_key("a"));
    }

    #[test]
    fn serve_lines_answers_and_shuts_down() {
        let input = concat!(
            "not json\n",
            "{\"op\":\"status\",\"id\":\"s\"}\n",
            "{\"op\":\"shutdown\"}\n",
        );
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        serve_lines(
            input.as_bytes(),
            Box::new(Shared(Arc::clone(&buf))),
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                warm_capacity: 2,
            },
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "unexpected output: {text}");
        assert!(lines[0].starts_with("{\"ok\": false"));
        assert!(lines[1].contains("\"malformed_requests\": 1"));
        assert!(lines[2].contains("\"shutdown\": true"));
    }
}
