//! # hlts-benchmarks — the DATE'98 benchmark suite
//!
//! Reconstructions of the six benchmarks the paper evaluates on: [`ex`],
//! [`dct`], [`diffeq`], [`ewf`], [`paulin`] and [`tseng`].
//!
//! The paper names operation nodes (`N21`…`N44`) and variables but never
//! prints the data-flow edges, so each graph is **reconstructed** to
//! satisfy every published constraint simultaneously: the operation mix
//! of each module-allocation grouping, the variable sets of each
//! register-allocation grouping, and feasibility of the paper's "Ours"
//! schedule and allocation (pairwise-distinct steps inside each shared
//! module, pairwise-disjoint lifetimes inside each shared register).
//! Residual free choices are documented inline per benchmark. Where the
//! paper's variable count implies reassigned (non-SSA) variables, an SSA
//! temporary with a `0`-suffixed name stands in (e.g. Ex's `y0`, `w0`)
//! and is noted in the function docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hlts_dfg::{Dfg, DfgBuilder, OpKind};

/// All benchmark constructors paired with their names, for sweeping.
#[must_use]
pub fn all() -> Vec<(&'static str, Dfg)> {
    NAMES.iter().map(|&n| (n, by_name(n).unwrap())).collect()
}

/// The bundled benchmark names, in the canonical (paper-table) order.
pub const NAMES: [&str; 6] = ["ex", "dct", "diffeq", "ewf", "paulin", "tseng"];

/// Look a bundled benchmark up by name (`None` for unknown names).
#[must_use]
pub fn by_name(name: &str) -> Option<Dfg> {
    match name {
        "ex" => Some(ex()),
        "dct" => Some(dct()),
        "diffeq" => Some(diffeq()),
        "ewf" => Some(ewf()),
        "paulin" => Some(paulin()),
        "tseng" => Some(tseng()),
        _ => None,
    }
}

/// The **Ex** benchmark of Lee, Wolf & Jha (Table 1, Figure 2).
///
/// 8 operations — multiplies N21, N22, N24, N28; subtracts N25, N27,
/// N29; add N30 — over inputs `a`–`f`, matching Table 1's module
/// groupings `(N21,N24)`, `(N22,N28)`, `(N25,N27,N29)`, `(N30)` and
/// register groupings `{a,c,x}`, `{b,f,v}`, `{d,e,z}`, `{y,w}`, `{u}`.
/// The paper's 12-variable count implies two reassigned variables; the
/// SSA temporaries `y0` (partial `y`) and `w0` (partial `w`) stand in,
/// sharing their final values' registers.
///
/// # Panics
///
/// Never panics: the construction is statically well-formed (exercised
/// by this crate's tests).
#[must_use]
pub fn ex() -> Dfg {
    let mut b = DfgBuilder::new("ex");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let u = b.op("N21", OpKind::Mul, &[a, bb], "u").expect("ex: N21");
    let v = b.op("N22", OpKind::Mul, &[c, f], "v").expect("ex: N22");
    let x = b.op("N24", OpKind::Mul, &[u, d], "x").expect("ex: N24");
    let w0 = b.op("N28", OpKind::Mul, &[v, e], "w0").expect("ex: N28");
    let y0 = b.op("N25", OpKind::Sub, &[u, v], "y0").expect("ex: N25");
    let z = b.op("N27", OpKind::Sub, &[x, e], "z").expect("ex: N27");
    let y = b.op("N29", OpKind::Sub, &[y0, x], "y").expect("ex: N29");
    let w = b.op("N30", OpKind::Add, &[w0, z], "w").expect("ex: N30");
    b.mark_output(y);
    b.mark_output(w);
    b.finish().expect("ex benchmark is well-formed")
}

/// The **Dct** benchmark (Table 2, Figure 3a): a 13-operation portion of
/// an 8-point DCT signal-flow graph.
///
/// Multiplies N31, N33, N35, N38, N40 (by cosine-coefficient constants
/// `k1`–`k3`); adds N27, N29, N37, N42, N43, N44; subtracts N28, N30 —
/// over sample inputs `a`–`h` with butterfly intermediates `i`, `j`,
/// `p1`–`p4` and outputs `q2`–`q4` (plus `p1`), matching Table 2's
/// variable inventory. SSA temporaries `t2`, `t3` carry the two
/// cosine-scaled butterfly sums.
#[must_use]
pub fn dct() -> Dfg {
    let mut b = DfgBuilder::new("dct");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let h = b.input("h");
    // cosine coefficients: modeled as coefficient-port inputs (a
    // coefficient ROM read port — controllable under the paper's
    // test-plan assumption; also avoids constant-operand multiplier
    // logic a synthesis tool would fold away)
    let k1 = b.input("k1");
    let k2 = b.input("k2");
    let k3 = b.input("k3");
    let s1 = b.op("N28", OpKind::Sub, &[a, h], "s1").expect("dct: N28");
    let s2 = b.op("N30", OpKind::Sub, &[bb, g], "s2").expect("dct: N30");
    let i = b.op("N27", OpKind::Add, &[a, h], "i").expect("dct: N27");
    let j = b.op("N29", OpKind::Add, &[bb, g], "j").expect("dct: N29");
    let p4 = b.op("N37", OpKind::Add, &[c, f], "p4").expect("dct: N37");
    let p1 = b.op("N31", OpKind::Mul, &[k1, s1], "p1").expect("dct: N31");
    let p2 = b.op("N33", OpKind::Mul, &[k2, s2], "p2").expect("dct: N33");
    let p3 = b.op("N35", OpKind::Mul, &[k3, i], "p3").expect("dct: N35");
    let t2 = b.op("N38", OpKind::Mul, &[k1, j], "t2").expect("dct: N38");
    let t3 = b.op("N40", OpKind::Mul, &[k2, p4], "t3").expect("dct: N40");
    let q2 = b.op("N42", OpKind::Add, &[t2, t3], "q2").expect("dct: N42");
    let q3 = b.op("N43", OpKind::Add, &[p2, d], "q3").expect("dct: N43");
    let q4 = b.op("N44", OpKind::Add, &[p3, e], "q4").expect("dct: N44");
    b.mark_output(p1);
    b.mark_output(q2);
    b.mark_output(q3);
    b.mark_output(q4);
    b.finish().expect("dct benchmark is well-formed")
}

/// The **Diffeq** benchmark (Table 3, Figure 3b): the HAL differential-
/// equation solver, one Euler step of `y'' + 3xy' + 3y = 0` with loop
/// test `x1 < a`.
///
/// Multiplies N26, N27, N29, N31, N33, N35; adds N25, N36; subtracts
/// N30, N34; comparison N24 — with the temporary names `a1`–`g` the
/// paper's register tables use (`a1 = 3x`, `b = u·dx`, `c = a1·b`,
/// `d = 3y`, `e = d·dx`, `f = u − c`, `g = u·dx` for `y1`).
/// Loop-carried: `x1 → x`, `y1 → y`, `u1 → u`.
#[must_use]
pub fn diffeq() -> Dfg {
    let mut b = DfgBuilder::new("diffeq");
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let a = b.input("a");
    // the coefficient 3: a coefficient-port input (a real tool would
    // strength-reduce 3*x; keeping a generic multiplier with a constant
    // port would create untestable logic instead)
    let three = b.input("three");
    let a1 = b
        .op("N26", OpKind::Mul, &[three, x], "a1")
        .expect("diffeq: N26");
    let bv = b
        .op("N27", OpKind::Mul, &[u, dx], "b")
        .expect("diffeq: N27");
    let d = b
        .op("N29", OpKind::Mul, &[three, y], "d")
        .expect("diffeq: N29");
    let c = b
        .op("N31", OpKind::Mul, &[a1, bv], "c")
        .expect("diffeq: N31");
    let e = b
        .op("N33", OpKind::Mul, &[d, dx], "e")
        .expect("diffeq: N33");
    let g = b
        .op("N35", OpKind::Mul, &[u, dx], "g")
        .expect("diffeq: N35");
    let f = b.op("N30", OpKind::Sub, &[u, c], "f").expect("diffeq: N30");
    let u1 = b
        .op("N34", OpKind::Sub, &[f, e], "u1")
        .expect("diffeq: N34");
    let x1 = b
        .op("N25", OpKind::Add, &[x, dx], "x1")
        .expect("diffeq: N25");
    let y1 = b
        .op("N36", OpKind::Add, &[y, g], "y1")
        .expect("diffeq: N36");
    let _cond = b
        .op("N24", OpKind::Lt, &[x1, a], "cond")
        .expect("diffeq: N24");
    b.mark_output(x1);
    b.mark_output(y1);
    b.mark_output(u1);
    b.loop_carried(x1, x);
    b.loop_carried(y1, y);
    b.loop_carried(u1, u);
    b.finish().expect("diffeq benchmark is well-formed")
}

/// The **EWF** benchmark: the fifth-order elliptic wave filter, the
/// standard large HLS benchmark — 34 operations (26 additions, 8
/// multiplications by filter coefficients) over one input sample and
/// seven loop-carried state variables.
///
/// The paper cites EWF among its tested benchmarks without printing its
/// table; this reconstruction follows the standard wave-digital-filter
/// adaptor topology (alternating add/scale stages with state feedback).
#[must_use]
pub fn ewf() -> Dfg {
    let mut b = DfgBuilder::new("ewf");
    let inp = b.input("inp");
    let sv: Vec<_> = (1..=7).map(|i| b.input(&format!("sv{i}"))).collect();
    // filter coefficients as coefficient-port inputs (conventional for
    // the EWF benchmark)
    let k: Vec<_> = (1..=8).map(|i| b.input(&format!("k{i}"))).collect();
    let mut n = 0usize;
    let mut add = |b: &mut DfgBuilder, x, y, out: &str| {
        n += 1;
        b.op(&format!("A{n}"), OpKind::Add, &[x, y], out)
            .expect("ewf add")
    };
    // stage 1: input adaptor
    let t1 = add(&mut b, inp, sv[0], "t1");
    let t2 = add(&mut b, t1, sv[1], "t2");
    let m1 = b.op("M1", OpKind::Mul, &[k[0], t2], "m1").expect("ewf M1");
    let t3 = add(&mut b, m1, sv[0], "t3");
    let t4 = add(&mut b, t3, t1, "t4");
    // stage 2
    let m2 = b.op("M2", OpKind::Mul, &[k[1], t4], "m2").expect("ewf M2");
    let t5 = add(&mut b, m2, sv[2], "t5");
    let t6 = add(&mut b, t5, t4, "t6");
    let t7 = add(&mut b, t6, sv[3], "t7");
    let m3 = b.op("M3", OpKind::Mul, &[k[2], t7], "m3").expect("ewf M3");
    let t8 = add(&mut b, m3, t5, "t8");
    // stage 3
    let m4 = b.op("M4", OpKind::Mul, &[k[3], t8], "m4").expect("ewf M4");
    let t9 = add(&mut b, m4, sv[4], "t9");
    let t10 = add(&mut b, t9, t8, "t10");
    let t11 = add(&mut b, t10, sv[5], "t11");
    let m5 = b.op("M5", OpKind::Mul, &[k[4], t11], "m5").expect("ewf M5");
    let t12 = add(&mut b, m5, t9, "t12");
    // stage 4
    let m6 = b.op("M6", OpKind::Mul, &[k[5], t12], "m6").expect("ewf M6");
    let t13 = add(&mut b, m6, sv[6], "t13");
    let t14 = add(&mut b, t13, t12, "t14");
    let m7 = b.op("M7", OpKind::Mul, &[k[6], t14], "m7").expect("ewf M7");
    let t15 = add(&mut b, m7, t13, "t15");
    let m8 = b.op("M8", OpKind::Mul, &[k[7], t15], "m8").expect("ewf M8");
    // state updates (new state values) and output
    let s1 = add(&mut b, t4, t3, "ns1");
    let s2 = add(&mut b, t2, s1, "ns2");
    let s3 = add(&mut b, t6, t8, "ns3");
    let s4 = add(&mut b, t7, t5, "ns4");
    let s5 = add(&mut b, t10, t12, "ns5");
    let s6 = add(&mut b, t11, t9, "ns6");
    let s7 = add(&mut b, t14, m8, "ns7");
    let outp = add(&mut b, t15, m8, "outp");
    let extra1 = add(&mut b, s3, s5, "chk1");
    let extra2 = add(&mut b, extra1, s7, "chk2");
    let extra3 = add(&mut b, extra2, s4, "chk3");
    b.mark_output(outp);
    b.mark_output(extra3);
    for (i, &s) in [s1, s2, s3, s4, s5, s6, s7].iter().enumerate() {
        b.mark_output(s);
        b.loop_carried(s, sv[i]);
    }
    b.finish().expect("ewf benchmark is well-formed")
}

/// The **Paulin** benchmark: the HAL example of Paulin, Knight & Girczyc
/// (DAC 1986) — the same differential-equation data flow as [`diffeq`],
/// conventionally evaluated as a straight-line body (no loop test), which
/// is how it appears in the HAL papers.
#[must_use]
pub fn paulin() -> Dfg {
    let mut b = DfgBuilder::new("paulin");
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let three = b.input("three");
    let a1 = b
        .op("N1", OpKind::Mul, &[three, x], "a1")
        .expect("paulin N1");
    let bv = b.op("N2", OpKind::Mul, &[u, dx], "b").expect("paulin N2");
    let d = b
        .op("N3", OpKind::Mul, &[three, y], "d")
        .expect("paulin N3");
    let c = b.op("N4", OpKind::Mul, &[a1, bv], "c").expect("paulin N4");
    let e = b.op("N5", OpKind::Mul, &[d, dx], "e").expect("paulin N5");
    let g = b.op("N6", OpKind::Mul, &[u, dx], "g").expect("paulin N6");
    let f = b.op("N7", OpKind::Sub, &[u, c], "f").expect("paulin N7");
    let u1 = b.op("N8", OpKind::Sub, &[f, e], "u1").expect("paulin N8");
    let x1 = b.op("N9", OpKind::Add, &[x, dx], "x1").expect("paulin N9");
    let y1 = b.op("N10", OpKind::Add, &[y, g], "y1").expect("paulin N10");
    b.mark_output(x1);
    b.mark_output(y1);
    b.mark_output(u1);
    b.finish().expect("paulin benchmark is well-formed")
}

/// The **Tseng** benchmark: the Tseng & Siewiorek example (TCAD 1986) —
/// a small mixed arithmetic/logic graph (3 additions, 1 subtraction,
/// 2 multiplications, an OR and an AND).
#[must_use]
pub fn tseng() -> Dfg {
    let mut b = DfgBuilder::new("tseng");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let h = b.input("h");
    let t1 = b.op("N1", OpKind::Add, &[a, bb], "t1").expect("tseng N1");
    let t2 = b.op("N2", OpKind::Add, &[c, d], "t2").expect("tseng N2");
    let t3 = b.op("N3", OpKind::Sub, &[e, f], "t3").expect("tseng N3");
    let t4 = b.op("N4", OpKind::Mul, &[t1, t2], "t4").expect("tseng N4");
    let t5 = b.op("N5", OpKind::Add, &[t4, t3], "t5").expect("tseng N5");
    let t6 = b.op("N6", OpKind::Or, &[t4, g], "t6").expect("tseng N6");
    let y1 = b.op("N7", OpKind::And, &[t5, h], "y1").expect("tseng N7");
    let y2 = b.op("N8", OpKind::Mul, &[t6, t3], "y2").expect("tseng N8");
    b.mark_output(y1);
    b.mark_output(y2);
    b.finish().expect("tseng benchmark is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::OpKind;

    #[test]
    fn ex_matches_paper_op_mix() {
        let d = ex();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Mul], 4);
        assert_eq!(mix[&OpKind::Sub], 3);
        assert_eq!(mix[&OpKind::Add], 1);
        assert_eq!(d.num_ops(), 8);
        assert_eq!(d.inputs().count(), 6);
    }

    #[test]
    fn ex_paper_module_groups_are_step_compatible() {
        // (N21,N24), (N22,N28), (N25,N27,N29) must admit a schedule with
        // pairwise-distinct steps — i.e. each group must be totally
        // orderable (no two members forced into one step by dependences).
        let d = ex();
        for group in [
            vec!["N21", "N24"],
            vec!["N22", "N28"],
            vec!["N25", "N27", "N29"],
        ] {
            let ids: Vec<_> = group.iter().map(|n| d.op_by_name(n).unwrap()).collect();
            // no pair may be mutually unreachable AND forced equal; with a
            // DAG any antichain can be serialized, so only check the group
            // is acyclic under precedence (trivially true) and schedule it:
            let groups = vec![ids];
            let s = hlts_sched::list_schedule(&d, &groups, hlts_sched::ListPriority::CriticalPath)
                .unwrap();
            s.validate_groups(&d, &groups).unwrap();
        }
    }

    #[test]
    fn ex_paper_register_groups_are_lifetime_feasible() {
        // Under the module binding of Table 1 (Ours) there exists a
        // schedule (this one) making a 5-register allocation matching the
        // paper's groups disjoint. The SSA temporaries y0/w0 slot into
        // registers that the paper's named variables leave free.
        let d = ex();
        let op = |n: &str| d.op_by_name(n).unwrap().index();
        let mut steps = vec![0usize; d.num_ops()];
        for (n, st) in [
            ("N21", 0),
            ("N22", 1),
            ("N24", 1),
            ("N28", 2),
            ("N25", 2),
            ("N27", 3),
            ("N30", 4),
            ("N29", 5),
        ] {
            steps[op(n)] = st;
        }
        let s = hlts_sched::Schedule::from_step_vec(steps);
        s.validate(&d).unwrap();
        let module_groups = vec![
            vec![d.op_by_name("N21").unwrap(), d.op_by_name("N24").unwrap()],
            vec![d.op_by_name("N22").unwrap(), d.op_by_name("N28").unwrap()],
            vec![
                d.op_by_name("N25").unwrap(),
                d.op_by_name("N27").unwrap(),
                d.op_by_name("N29").unwrap(),
            ],
            vec![d.op_by_name("N30").unwrap()],
        ];
        s.validate_groups(&d, &module_groups).unwrap();
        let lt = hlts_sched::Lifetimes::compute(&d, &s);
        let v = |n: &str| d.value_by_name(n).unwrap();
        // the paper's 5 groups; temporaries y0/w0 fill free slots
        let register_groups = [
            vec![v("a"), v("c"), v("x")],
            vec![v("b"), v("f"), v("v"), v("w0")],
            vec![v("d"), v("e"), v("z")],
            vec![v("y"), v("w")],
            vec![v("u"), v("y0")],
        ];
        for group in &register_groups {
            for (i, &x) in group.iter().enumerate() {
                for &y in &group[i + 1..] {
                    assert!(
                        lt.disjoint(x, y),
                        "{} and {} overlap: {:?} vs {:?}\n{}",
                        d.value(x).name(),
                        d.value(y).name(),
                        lt.interval(x),
                        lt.interval(y),
                        s.render(&d),
                    );
                }
            }
        }
    }

    #[test]
    fn dct_matches_paper_op_mix() {
        let d = dct();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Mul], 5);
        assert_eq!(mix[&OpKind::Add], 6);
        assert_eq!(mix[&OpKind::Sub], 2);
        assert_eq!(d.num_ops(), 13);
        // paper op ids present
        for n in [
            "N27", "N28", "N29", "N30", "N31", "N33", "N35", "N37", "N38", "N40", "N42", "N43",
            "N44",
        ] {
            assert!(d.op_by_name(n).is_some(), "{n} missing");
        }
    }

    #[test]
    fn diffeq_matches_paper_op_mix() {
        let d = diffeq();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Mul], 6);
        assert_eq!(mix[&OpKind::Add], 2);
        assert_eq!(mix[&OpKind::Sub], 2);
        assert_eq!(mix[&OpKind::Lt], 1);
        assert_eq!(d.loop_carried().len(), 3);
        // paper's module groups: (N26,N31,N35), (N27,N29,N33), (N25,N36),
        // (N30,N34), (N24)
        for n in [
            "N24", "N25", "N26", "N27", "N29", "N30", "N31", "N33", "N34", "N35", "N36",
        ] {
            assert!(d.op_by_name(n).is_some(), "{n} missing");
        }
    }

    #[test]
    fn diffeq_paper_module_groups_schedulable() {
        let d = diffeq();
        let op = |n: &str| d.op_by_name(n).unwrap();
        let groups = vec![
            vec![op("N26"), op("N31"), op("N35")],
            vec![op("N27"), op("N29"), op("N33")],
            vec![op("N25"), op("N36")],
            vec![op("N30"), op("N34")],
        ];
        let s =
            hlts_sched::list_schedule(&d, &groups, hlts_sched::ListPriority::CriticalPath).unwrap();
        s.validate(&d).unwrap();
        s.validate_groups(&d, &groups).unwrap();
    }

    #[test]
    fn ewf_matches_standard_mix() {
        let d = ewf();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Add], 26);
        assert_eq!(mix[&OpKind::Mul], 8);
        assert_eq!(d.num_ops(), 34);
        assert_eq!(d.loop_carried().len(), 7);
    }

    #[test]
    fn paulin_is_straightline_hal() {
        let d = paulin();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Mul], 6);
        assert!(d.loop_carried().is_empty());
        assert_eq!(d.num_ops(), 10);
    }

    #[test]
    fn tseng_mixes_arith_and_logic() {
        let d = tseng();
        let mix = d.op_mix();
        assert_eq!(mix[&OpKind::Mul], 2);
        assert_eq!(mix[&OpKind::Or], 1);
        assert_eq!(mix[&OpKind::And], 1);
        assert_eq!(d.num_ops(), 8);
    }

    #[test]
    fn all_benchmarks_validate_and_schedule() {
        for (name, d) in all() {
            d.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let s = hlts_sched::list_schedule(&d, &[], hlts_sched::ListPriority::CriticalPath)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            s.validate(&d).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(s.num_steps() >= 2, "{name} too shallow");
        }
    }

    #[test]
    fn all_benchmarks_lower_to_etpn() {
        for (name, d) in all() {
            let s =
                hlts_sched::list_schedule(&d, &[], hlts_sched::ListPriority::CriticalPath).unwrap();
            let a = hlts_alloc::Allocation::one_to_one(&d);
            let e =
                hlts_etpn::Etpn::from_parts(&d, &s, &a).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(e.execution_time(), s.num_steps(), "{name}");
        }
    }
}
