//! Byte-level corruption fuzzing of the checkpoint-journal parser: no
//! input may panic it, and damaging one line may lose at most that
//! line's point.

use hlts_core::{MergeTrace, TraceEntry, TraceMergeKind, TraceWinner};
use hlts_dse::journal::{parse, render_header, render_point, render_trace};
use hlts_dse::{Flow, Objectives, PointParams, PointResult};
use rand::{Rng, RngCore, SeedableRng};

fn sample(id: usize) -> PointResult {
    PointResult {
        id,
        params: PointParams {
            bench: "dct".into(),
            flow: Flow::Ours,
            k: 1 + id % 4,
            alpha: 2.0,
            beta: 1.0 + id as f64,
            bits: 8,
        },
        objectives: Objectives {
            execution_time: 9 + id,
            hardware: 1.25 + id as f64 * 0.5,
            avg_controllability: 0.9765625,
            avg_observability: 0.95,
            co_depth: 0.30000000000000004,
            test: None,
        },
        modules: 4,
        registers: 7,
        muxes: 12,
        millis: 312,
        resumed: false,
        replay: None,
    }
}

fn journal_text(points: usize) -> String {
    let mut text = render_header(0xfeed_f00d);
    for id in 0..points {
        text.push_str(&render_point(&sample(id)));
    }
    text
}

/// Random single-byte mutations (flip, insert, delete) anywhere in the
/// file: the parser must return — Ok with sane accounting or a typed
/// error — and never panic.
#[test]
fn random_byte_corruptions_never_panic_the_parser() {
    let clean = journal_text(6);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1bad_5eed);
    for _ in 0..2000 {
        let mut bytes = clean.clone().into_bytes();
        for _ in 0..1 + rng.gen_range(0..4) {
            match rng.gen_range(0..3) {
                0 => {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] = (rng.next_u64() & 0xff) as u8;
                }
                1 => {
                    let i = rng.gen_range(0..bytes.len());
                    bytes.insert(i, (rng.next_u64() & 0xff) as u8);
                }
                _ => {
                    let i = rng.gen_range(0..bytes.len());
                    bytes.remove(i);
                }
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(scan) = parse(&text) {
            let body_lines = text.lines().count().saturating_sub(2);
            assert!(
                scan.points.len() + scan.malformed <= body_lines,
                "more outcomes than lines: {} points + {} malformed of {body_lines}",
                scan.points.len(),
                scan.malformed
            );
            for p in &scan.points {
                assert!(p.resumed, "parsed points are resume entries");
            }
        }
        // Err is equally acceptable (damaged header, duplicate IDs) —
        // the property under test is "no panic, no nonsense".
    }
}

/// Truncating a valid journal at every byte position past the header —
/// the file shapes `kill -9` can leave behind — must never panic the
/// parser, never mis-count interior damage, and account for the cut
/// exactly: the partial tail either still parses (the cut happened to
/// land after all required fields) or is dropped and counted in
/// `torn_tail`, never both and never silently.
#[test]
fn truncation_at_every_byte_counts_the_torn_tail() {
    let clean = journal_text(4);
    let header_len = render_header(0xfeed_f00d).len();
    for cut in header_len..=clean.len() {
        let text = &clean[..cut];
        let scan = parse(text).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
        let complete = text[header_len..].matches('\n').count();
        assert_eq!(scan.malformed, 0, "cut at byte {cut}: truncation is not corruption");
        assert!(scan.torn_tail <= 1, "cut at byte {cut}");
        if text.ends_with('\n') {
            assert_eq!(
                (scan.points.len(), scan.torn_tail),
                (complete, 0),
                "cut at byte {cut} on a line boundary"
            );
        } else {
            // Exactly one of: the partial tail parsed as a point, or it
            // was dropped as the torn tail.
            assert_eq!(
                (scan.points.len() - complete) + scan.torn_tail,
                1,
                "cut at byte {cut}: {} points over {complete} complete lines, torn {}",
                scan.points.len(),
                scan.torn_tail
            );
        }
        for (i, p) in scan.points.iter().take(complete).enumerate() {
            assert_eq!(p, &sample(i), "complete line {i} must survive cut at {cut}");
        }
    }
}

fn warm_sample(id: usize) -> PointResult {
    let mut r = sample(id);
    r.replay = Some((id, 3));
    r
}

fn trace_of(id: usize) -> MergeTrace {
    MergeTrace {
        entries: vec![
            TraceEntry {
                winner: Some(TraceWinner {
                    kind: if id.is_multiple_of(2) {
                        TraceMergeKind::Modules
                    } else {
                        TraceMergeKind::Registers
                    },
                    sym_a: format!("N{id}"),
                    sym_b: "N9".into(),
                    index: id,
                    fingerprint: 0x0123_4567_89ab_cdef ^ id as u64,
                }),
                total: 4,
                prices: vec![Some((1.0 + id as f64, -0.5)), None],
            },
            TraceEntry {
                winner: None,
                total: 2,
                prices: vec![Some((0.25, 0.125)), None],
            },
        ],
    }
}

fn warm_journal_text(points: usize) -> String {
    let mut text = render_header(0xfeed_f00d);
    for id in 0..points {
        text.push_str(&render_trace(id, &trace_of(id)).unwrap());
        text.push_str(&render_point(&warm_sample(id)));
    }
    text
}

/// The truncation sweep over a *warm-start* journal — trace lines
/// interleaved with `rep=`/`rec=`-bearing point lines, each cut also
/// re-tried with stray trailing blank lines appended (the shape the
/// torn-tail normalization exists for): truncation must never count as
/// interior corruption, a torn tail is at most one, trailing blanks
/// never flip a torn tail into `malformed`, and a surviving trace is
/// never an orphan.
#[test]
fn warm_truncation_at_every_byte_counts_the_torn_tail() {
    let clean = warm_journal_text(3);
    let header_len = render_header(0xfeed_f00d).len();
    for cut in header_len..=clean.len() {
        // `""` is the plain kill shape; the rest are stray trailing
        // blank lines after the cut. A single bare `"\n"` is excluded
        // deliberately: one newline after content IS the clean
        // terminator, so a mid-line cut plus `"\n"` is interior
        // corruption by definition — the satellite's normalization is
        // about *extra* blanks beyond it.
        for blanks in ["", "\n\n", "\n \n", "\n\n\n"] {
            let text = format!("{}{blanks}", &clean[..cut]);
            let scan =
                parse(&text).unwrap_or_else(|e| panic!("cut {cut} blanks {blanks:?}: {e}"));
            assert_eq!(
                scan.malformed, 0,
                "cut {cut} blanks {blanks:?}: truncation is not corruption"
            );
            assert!(scan.torn_tail <= 1, "cut {cut} blanks {blanks:?}");
            for (id, trace) in &scan.traces {
                assert!(
                    scan.points.iter().any(|p| p.id == *id),
                    "cut {cut} blanks {blanks:?}: orphan trace {id}"
                );
                assert_eq!(trace, &trace_of(*id), "cut {cut}: trace {id} roundtrips");
            }
            for p in &scan.points {
                let mut expect = warm_sample(p.id);
                expect.resumed = true;
                assert_eq!(p.replay, expect.replay, "cut {cut}: rep/rec roundtrip");
            }
        }
    }
}

/// Surgically corrupting the *tail* of one interior line (past the ID
/// field, so no duplicate-ID ambiguity) loses exactly that point.
#[test]
fn corrupting_one_line_loses_exactly_that_point() {
    let clean = journal_text(5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0de);
    for victim in 0..5usize {
        let mut lines: Vec<String> = clean.lines().map(str::to_owned).collect();
        let line = &mut lines[2 + victim]; // header is 2 lines
        let start = line.len() / 2;
        let n = rng.gen_range(1..line.len() - start);
        for i in start..start + n {
            // printable ASCII (no newline) so byte indexing stays a
            // char boundary and the line count stays put
            let b = b' ' + (rng.next_u64() % 0x5f) as u8;
            line.replace_range(i..=i, std::str::from_utf8(&[b]).unwrap_or("?"));
        }
        let mut text = lines.join("\n");
        text.push('\n');
        match parse(&text) {
            Ok(scan) => {
                assert_eq!(scan.malformed + scan.points.len(), 5, "victim {victim}");
                if scan.malformed == 1 {
                    let ids: Vec<usize> = scan.points.iter().map(|p| p.id).collect();
                    assert!(
                        !ids.contains(&victim),
                        "victim {victim} should be the lost line: {ids:?}"
                    );
                    for (other, r) in (0..5).filter(|i| *i != victim).zip(&scan.points) {
                        assert_eq!(r, &sample(other), "intact line {other} must survive");
                    }
                }
                // malformed == 0 is possible when the damage happened to
                // produce a parseable line; the accounting above still
                // holds.
            }
            Err(e) => {
                // Only a duplicate forged by the corruption may error.
                assert!(e.to_string().contains("duplicate"), "victim {victim}: {e}");
            }
        }
    }
}
