//! Determinism, resume and journal properties of the exploration
//! runner — the PR's acceptance criteria in executable form.

use std::path::PathBuf;

use hlts_dse::{
    explore, load_journal, select_seed, ExploreConfig, Flow, PointParams, SweepSpec, TcovSweep,
};
use proptest::prelude::*;

fn spec_over(benches: &[&str]) -> SweepSpec {
    let benches = benches
        .iter()
        .map(|n| {
            (
                (*n).to_owned(),
                hlts_benchmarks::by_name(n).unwrap_or_else(|| panic!("unknown bench {n}")),
            )
        })
        .collect();
    SweepSpec::new(benches)
}

fn jobs(n: usize) -> ExploreConfig {
    ExploreConfig {
        jobs: n,
        ..ExploreConfig::default()
    }
}

fn tmp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hlts-dse-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{tag}-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The headline determinism claim: the Pareto front of a sweep over
/// the paper benchmarks is bit-identical for 1, 2 and 4 workers.
#[test]
fn front_is_bit_identical_for_1_2_4_workers() {
    let mut spec = spec_over(&["ex", "dct", "diffeq", "paulin", "tseng"]);
    spec.ks = vec![1, 3];
    spec.weights = vec![(2.0, 1.0), (1.0, 10.0)];

    let sequential = explore(&spec, &jobs(1)).expect("sequential sweep");
    assert_eq!(sequential.results.len(), 20);
    assert!(!sequential.front.is_empty());
    for n in [2, 4] {
        let parallel = explore(&spec, &jobs(n)).expect("parallel sweep");
        assert_eq!(
            sequential.front_signature(),
            parallel.front_signature(),
            "front diverged at {n} workers"
        );
        assert_eq!(sequential.results, parallel.results);
    }
}

/// A coverage-graded sweep (`--atpg`): every point carries measured
/// (coverage, test-cycle) objectives, the front is bit-identical
/// across worker counts, and a journaled + resumed run replays the
/// coverage floats bit-exactly.
#[test]
fn graded_front_is_bit_identical_and_resumes() {
    let mut spec = spec_over(&["ex", "tseng"]);
    spec.ks = vec![1, 3];
    spec.bits = vec![4];
    spec.tcov = Some(TcovSweep { fault_sample: 300 });

    let journal = tmp_journal("graded");
    let sequential = explore(
        &spec,
        &ExploreConfig {
            jobs: 1,
            journal: Some(journal.clone()),
            ..ExploreConfig::default()
        },
    )
    .expect("sequential graded sweep");
    assert_eq!(sequential.results.len(), 4);
    for r in &sequential.results {
        let t = r.objectives.test.expect("graded sweeps measure coverage");
        assert!(t.coverage > 0.0 && t.coverage <= 100.0);
        assert!(t.test_cycles > 0);
    }
    assert!(
        sequential.front_signature().contains("cov="),
        "the front signature certifies the coverage axes"
    );

    let parallel = explore(&spec, &jobs(4)).expect("parallel graded sweep");
    assert_eq!(sequential.front_signature(), parallel.front_signature());
    assert_eq!(sequential.results, parallel.results);

    // Resume from the journal: nothing recomputed, same front string.
    let scan = load_journal(&journal, &spec).expect("journal loads");
    assert_eq!(scan.points.len(), 4);
    let resumed = explore(
        &spec,
        &ExploreConfig {
            jobs: 2,
            resume: scan.points,
            ..ExploreConfig::default()
        },
    )
    .expect("resumed graded sweep");
    assert_eq!(resumed.stats.points_computed, 0);
    assert_eq!(sequential.front_signature(), resumed.front_signature());

    // A plain spec must refuse the graded journal (and vice versa).
    let mut plain = spec.clone();
    plain.tcov = None;
    assert!(load_journal(&journal, &plain).is_err());
    let _ = std::fs::remove_file(&journal);
}

/// Same claim on the largest benchmark alone (the bench gate's
/// workload shape).
#[test]
fn ewf_front_matches_across_worker_counts() {
    let mut spec = spec_over(&["ewf"]);
    spec.weights = vec![(2.0, 1.0), (1.0, 10.0)];
    let seq = explore(&spec, &jobs(1)).expect("sequential");
    let par = explore(&spec, &jobs(4)).expect("parallel");
    assert_eq!(seq.front_signature(), par.front_signature());
    assert_eq!(seq.results, par.results);
}

/// Baseline flows run through the same pool and land on the same
/// front regardless of workers.
#[test]
fn baseline_flows_participate_in_the_front() {
    let mut spec = spec_over(&["tseng"]);
    spec.flows = vec![Flow::Ours, Flow::Camad, Flow::Approach1, Flow::Approach2];
    let seq = explore(&spec, &jobs(1)).expect("sequential");
    let par = explore(&spec, &jobs(3)).expect("parallel");
    assert_eq!(seq.results.len(), 4);
    assert_eq!(seq.front_signature(), par.front_signature());
}

/// Kill-and-resume: interrupt a journaled sweep after N points, resume
/// from the journal, and the final front is identical with no point
/// recomputed (`ExploreStats` accounting is exact).
#[test]
fn resume_recomputes_nothing_and_preserves_the_front() {
    let mut spec = spec_over(&["dct", "tseng"]);
    spec.ks = vec![1, 3];
    spec.weights = vec![(2.0, 1.0), (0.1, 10.0)];
    let total = spec.points().expect("points").len();
    assert_eq!(total, 8, "2 benches x 2 ks x 2 weight pairs");

    let uninterrupted = explore(&spec, &jobs(1)).expect("uninterrupted sweep");

    // Journaled run, then simulate a kill by truncating the journal
    // to its header + N point lines (+ one torn partial line).
    let path = tmp_journal("resume");
    let journaled = explore(
        &spec,
        &ExploreConfig {
            jobs: 2,
            journal: Some(path.clone()),
            ..ExploreConfig::default()
        },
    )
    .expect("journaled sweep");
    assert_eq!(
        journaled.front_signature(),
        uninterrupted.front_signature()
    );

    let text = std::fs::read_to_string(&path).expect("journal exists");
    let keep = 5usize;
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2 + total, "header + one line per point");
    lines.truncate(2 + keep);
    let mut truncated = lines.join("\n");
    truncated.push_str("\npoint 99 bench=dct flow=ours k=3 al"); // torn tail
    std::fs::write(&path, truncated).expect("truncate journal");

    let scan = load_journal(&path, &spec).expect("journal loads");
    assert_eq!(scan.points.len(), keep);
    assert_eq!(scan.malformed, 0, "torn tail is not counted as corruption");
    assert_eq!(scan.torn_tail, 1, "but the dropped tail is reported");
    let resumed = explore(
        &spec,
        &ExploreConfig {
            jobs: 2,
            journal: Some(path.clone()),
            resume: scan.points,
            resume_torn_tail: scan.torn_tail,
            ..ExploreConfig::default()
        },
    )
    .expect("resumed sweep");

    assert_eq!(resumed.stats.points_resumed, keep, "no point recomputed");
    assert_eq!(resumed.stats.points_computed, total - keep);
    assert_eq!(
        resumed.front_signature(),
        uninterrupted.front_signature(),
        "resumed front must be bit-identical to the uninterrupted one"
    );
    assert_eq!(resumed.results, uninterrupted.results);
    assert_eq!(
        resumed.stats.journal_torn_tail, 1,
        "the dropped tail surfaces in the explore stats"
    );

    // The re-appended journal now covers the whole sweep again: a
    // second resume replays everything and computes nothing.
    let full = load_journal(&path, &spec).expect("journal reloads");
    assert_eq!(full.points.len(), total);
    let replayed = explore(
        &spec,
        &ExploreConfig {
            jobs: 1,
            journal: None,
            resume: full.points,
            ..ExploreConfig::default()
        },
    )
    .expect("replayed sweep");
    assert_eq!(replayed.stats.points_computed, 0);
    assert_eq!(
        replayed.front_signature(),
        uninterrupted.front_signature()
    );
    let _ = std::fs::remove_file(&path);
}

/// The warm-start identity: `--warm-start on` replays neighbour traces
/// instead of re-trialing merges, but the Pareto front — and every
/// per-point result — stays bit-identical to the cold sweep at any
/// worker count. Replay changes work, never results.
#[test]
fn warm_start_front_is_bit_identical_to_cold() {
    let mut spec = spec_over(&["ex", "dct", "diffeq", "tseng"]);
    // A dense weight axis: close neighbours make long replays likely,
    // a far outlier forces divergence-and-fallback coverage too.
    spec.weights = vec![(2.0, 1.0), (2.0, 1.05), (2.2, 1.0), (0.1, 10.0)];
    let cold = explore(&spec, &jobs(1)).expect("cold sweep");

    let mut warm_spec = spec.clone();
    warm_spec.warm_start = true;
    for n in [1, 4] {
        let warm = explore(&warm_spec, &jobs(n)).expect("warm sweep");
        assert_eq!(
            cold.front_signature(),
            warm.front_signature(),
            "warm front diverged at {n} worker(s)"
        );
        assert_eq!(cold.results, warm.results, "results diverged at {n} worker(s)");
        for r in &warm.results {
            assert!(r.replay.is_some(), "warm points carry the accounting pair");
        }
        if n == 1 {
            // Sequential completion order is point order, so every
            // same-bench successor has a close neighbour to replay.
            assert!(
                warm.stats.merges_replayed > 0,
                "dense neighbours must replay some merges, got {:?}",
                warm.stats
            );
        }
    }
    for r in &cold.results {
        assert!(r.replay.is_none(), "cold points carry no accounting pair");
    }
}

/// Warm journals round-trip through kill-and-resume: the scan recovers
/// the traces, the resumed run replays the missing points against
/// them, and the front stays bit-identical to an uninterrupted cold
/// sweep. A cold spec must refuse the trace-bearing journal.
#[test]
fn warm_journal_resumes_with_traces() {
    let mut spec = spec_over(&["dct", "tseng"]);
    spec.weights = vec![(2.0, 1.0), (2.0, 1.1), (1.9, 1.0)];
    let cold = explore(&spec, &jobs(1)).expect("cold sweep");

    let mut warm_spec = spec.clone();
    warm_spec.warm_start = true;
    let total = warm_spec.points().expect("points").len();
    let path = tmp_journal("warm-resume");
    let journaled = explore(
        &warm_spec,
        &ExploreConfig {
            jobs: 1,
            journal: Some(path.clone()),
            ..ExploreConfig::default()
        },
    )
    .expect("journaled warm sweep");
    assert_eq!(journaled.front_signature(), cold.front_signature());

    // Keep the first `keep` trace+point pairs (one of each per point),
    // then add a torn tail.
    let text = std::fs::read_to_string(&path).expect("journal exists");
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2 + 2 * total, "header + trace/point pair per point");
    let keep = 3usize;
    lines.truncate(2 + 2 * keep);
    let mut truncated = lines.join("\n");
    truncated.push_str("\ntrace 99 M N1 N"); // torn tail
    std::fs::write(&path, truncated).expect("truncate journal");

    let scan = load_journal(&path, &warm_spec).expect("journal loads");
    assert_eq!(scan.points.len(), keep);
    assert_eq!(scan.traces.len(), keep, "each kept point's trace survives");
    assert_eq!((scan.malformed, scan.torn_tail), (0, 1));
    let resumed = explore(
        &warm_spec,
        &ExploreConfig {
            jobs: 2,
            journal: Some(path.clone()),
            resume: scan.points,
            resume_torn_tail: scan.torn_tail,
            resume_traces: scan.traces,
            ..ExploreConfig::default()
        },
    )
    .expect("resumed warm sweep");
    assert_eq!(resumed.stats.points_resumed, keep);
    assert_eq!(resumed.stats.points_computed, total - keep);
    assert_eq!(resumed.front_signature(), cold.front_signature());
    assert_eq!(resumed.results, cold.results);

    // The cold spec has a different fingerprint: no silent half-schema
    // replay of a trace-bearing journal.
    let err = load_journal(&path, &spec).expect_err("cold spec refuses warm journal");
    assert!(err.to_string().contains("different sweep"), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// Satellite: the chosen seed neighbour is a pure function of the
/// *set* of completed points and the target — independent of the
/// order worker completion happened to produce the set in.
#[test]
fn seed_neighbour_is_order_independent() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let params = |bench: &str, flow, k, alpha, beta, bits| PointParams {
        bench: bench.into(),
        flow,
        k,
        alpha,
        beta,
        bits,
    };
    let pool = [
        params("dct", Flow::Ours, 3, 2.0, 1.0, 8),
        params("dct", Flow::Ours, 3, 2.0, 1.05, 8),
        params("dct", Flow::Ours, 2, 2.0, 1.0, 8), // k mismatch: penalized
        params("dct", Flow::Ours, 3, 0.1, 10.0, 8),
        params("dct", Flow::Camad, 3, 2.0, 1.0, 8), // baseline: ineligible
        params("dct", Flow::Ours, 3, 2.0, 1.0, 16), // bits mismatch: ineligible
        params("tseng", Flow::Ours, 3, 2.0, 1.0, 8), // other bench: ineligible
        params("dct", Flow::Ours, 3, 2.0, 1.05, 8), // exact tie with id 1
    ];
    let target = params("dct", Flow::Ours, 3, 2.0, 1.04, 8);

    let mut completed: Vec<(usize, &PointParams)> = pool.iter().enumerate().collect();
    let reference = select_seed(&completed, &target);
    assert_eq!(reference, Some(1), "nearest same-k neighbour, smaller id on ties");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    for _ in 0..50 {
        completed.shuffle(&mut rng);
        assert_eq!(select_seed(&completed, &target), reference);
    }
    // Subsets behave too: with id 1 and its tie gone, the same-k pool
    // decides; k-mismatched neighbours only win when nothing else can.
    let without = |ids: &[usize]| {
        pool.iter()
            .enumerate()
            .filter(|(i, _)| !ids.contains(i))
            .collect::<Vec<_>>()
    };
    assert_eq!(select_seed(&without(&[1, 7]), &target), Some(0));
    assert_eq!(select_seed(&without(&[0, 1, 3, 7]), &target), Some(2));
    assert_eq!(select_seed(&without(&[0, 1, 2, 3, 7]), &target), None);
    // Baseline targets never consume a trace.
    let camad_target = params("dct", Flow::Camad, 3, 2.0, 1.0, 8);
    assert_eq!(select_seed(&completed, &camad_target), None);
}

/// A journal written for one sweep is rejected by another.
#[test]
fn journal_from_a_different_spec_is_rejected() {
    let spec = spec_over(&["tseng"]);
    let path = tmp_journal("mismatch");
    explore(
        &spec,
        &ExploreConfig {
            jobs: 1,
            journal: Some(path.clone()),
            ..ExploreConfig::default()
        },
    )
    .expect("journaled sweep");

    let mut other = spec_over(&["tseng"]);
    other.ks = vec![5];
    let err = load_journal(&path, &other).expect_err("fingerprint mismatch");
    assert!(err.to_string().contains("different sweep"), "{err}");
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random small grids over the small benchmarks: sequential and
    /// parallel exploration always agree bit-for-bit.
    #[test]
    fn random_grids_agree_across_workers(
        k_pair in (1usize..4, 1usize..4),
        weight_sel in 0usize..4,
        bench_sel in 0usize..3,
        workers in 2usize..5,
    ) {
        let bench = ["ex", "paulin", "tseng"][bench_sel];
        let weights = [
            vec![(2.0, 1.0)],
            vec![(1.0, 10.0)],
            vec![(2.0, 1.0), (0.1, 10.0)],
            vec![(10.0, 1.0), (1.0, 1.0)],
        ][weight_sel].clone();
        let mut spec = spec_over(&[bench]);
        spec.ks = vec![k_pair.0, k_pair.0 + k_pair.1];
        spec.weights = weights;
        let seq = explore(&spec, &jobs(1)).expect("sequential");
        let par = explore(&spec, &jobs(workers)).expect("parallel");
        prop_assert_eq!(seq.front_signature(), par.front_signature());
        prop_assert_eq!(seq.results, par.results);
    }
}
