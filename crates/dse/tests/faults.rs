//! Fault-injection tests of the exploration runner (enabled by the
//! `test-faults` feature): killed workers, a panicking journal sink
//! (poisoning its mutex mid-sweep) and mid-file journal corruption
//! must all degrade to correct partial results — never to a poisoned
//! abort or a wrong Pareto front.
//!
//! The fault plan is process-global, so everything lives in one test
//! function — parallel test threads would steal each other's charges.

#![cfg(feature = "test-faults")]

use std::path::PathBuf;

use hlts_check::faults::{sites, FaultPlan};
use hlts_dse::{
    explore, load_journal, ExploreConfig, ExploreOutcome, ParetoArchive, SweepSpec,
};

fn spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![
        (
            "tseng".into(),
            hlts_benchmarks::by_name("tseng").expect("known bench"),
        ),
        (
            "ex".into(),
            hlts_benchmarks::by_name("ex").expect("known bench"),
        ),
    ]);
    spec.ks = vec![1, 3];
    spec.weights = vec![(2.0, 1.0), (1.0, 10.0)];
    spec
}

fn tmp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hlts-dse-fault-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{tag}-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The front a clean sweep restricted to `completed` yields — the
/// oracle every degraded outcome is compared against.
fn subset_front(clean: &ExploreOutcome, completed: &[usize]) -> Vec<usize> {
    let mut archive = ParetoArchive::new();
    for r in &clean.results {
        if completed.contains(&r.id) {
            archive.insert(r.clone());
        }
    }
    archive.into_entries().iter().map(|r| r.id).collect()
}

#[test]
fn injected_faults_degrade_to_correct_partial_results() {
    let spec = spec();
    let total = spec.points().expect("points").len();
    assert_eq!(total, 8);
    let clean = explore(&spec, &ExploreConfig::default()).expect("clean sweep");
    assert!(clean.failures.is_empty());

    // 1. Kill one worker mid-sweep: exactly the claimed point fails,
    // the surviving workers drain the queue, and the front over the
    // completed points is bit-identical to the clean run's subset.
    {
        let guard = FaultPlan::new().arm(sites::DSE_WORKER_KILL, 1).install();
        let outcome = explore(
            &spec,
            &ExploreConfig {
                jobs: 3,
                ..ExploreConfig::default()
            },
        )
        .expect("faulted sweep still returns");
        assert!(guard.fired().contains(&sites::DSE_WORKER_KILL));
        drop(guard);

        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert_eq!(outcome.stats.points_failed, 1);
        assert!(outcome.failures[0].message.contains("killed"));
        let dead = outcome.failures[0].id;
        assert_eq!(outcome.results.len(), total - 1);

        // completed results are bit-identical to the clean run's
        for r in &outcome.results {
            let reference = clean
                .results
                .iter()
                .find(|c| c.id == r.id)
                .expect("clean run covers every id");
            assert_eq!(r, reference, "point {} diverged under faults", r.id);
        }
        let completed: Vec<usize> = outcome.results.iter().map(|r| r.id).collect();
        assert!(!completed.contains(&dead));
        let front_ids: Vec<usize> = outcome.front.iter().map(|r| r.id).collect();
        assert_eq!(
            front_ids,
            subset_front(&clean, &completed),
            "degraded front must equal the clean subset front"
        );
    }

    // 2. Journal sink panics mid-append while holding the sink lock:
    // the mutex is poisoned, but later appends recover it — only the
    // panicking point fails, and the journal stays resumable.
    {
        let path = tmp_journal("sink-panic");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let guard = FaultPlan::new().arm(sites::DSE_SINK_PANIC, 1).install();
        let outcome = explore(
            &spec,
            &ExploreConfig {
                jobs: 2,
                journal: Some(path.clone()),
                ..ExploreConfig::default()
            },
        )
        .expect("sweep survives a poisoned journal sink");
        drop(guard);
        std::panic::set_hook(hook);

        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(
            outcome.failures[0].message.contains("panicked"),
            "{:?}",
            outcome.failures
        );
        assert_eq!(outcome.results.len(), total - 1);

        // the journal holds every completed point; a resume finishes
        // the lost one and lands on the clean front
        let scan = load_journal(&path, &spec).expect("journal still loads");
        assert_eq!(scan.points.len(), total - 1);
        assert_eq!(scan.malformed, 0);
        let resumed = explore(
            &spec,
            &ExploreConfig {
                resume: scan.points,
                resume_malformed: scan.malformed,
                ..ExploreConfig::default()
            },
        )
        .expect("resume completes the sweep");
        assert!(resumed.failures.is_empty());
        assert_eq!(resumed.stats.points_computed, 1);
        assert_eq!(resumed.front_signature(), clean.front_signature());
        let _ = std::fs::remove_file(&path);
    }

    // 3. Journal corruption mid-file: the sweep itself is unharmed;
    // the resume loader skips the garbled line, reports it, and only
    // recomputes the lost point.
    {
        let path = tmp_journal("sink-corrupt");
        let guard = FaultPlan::new().arm(sites::DSE_SINK_CORRUPT, 1).install();
        let outcome = explore(
            &spec,
            &ExploreConfig {
                jobs: 2,
                journal: Some(path.clone()),
                ..ExploreConfig::default()
            },
        )
        .expect("sweep with corrupted journal line completes");
        drop(guard);
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert_eq!(outcome.front_signature(), clean.front_signature());

        let scan = load_journal(&path, &spec).expect("journal loads around the damage");
        assert_eq!(scan.malformed, 1, "the garbled line is counted");
        assert_eq!(scan.points.len(), total - 1);
        let resumed = explore(
            &spec,
            &ExploreConfig {
                resume: scan.points,
                resume_malformed: scan.malformed,
                ..ExploreConfig::default()
            },
        )
        .expect("resume recomputes only the corrupted point");
        assert_eq!(resumed.stats.points_computed, 1);
        assert_eq!(resumed.stats.journal_malformed, 1);
        assert_eq!(resumed.front_signature(), clean.front_signature());
        let _ = std::fs::remove_file(&path);
    }
}
