//! Deterministic sweep specification: the grid of parameter points a
//! design-space exploration evaluates, with stable point IDs.

use hlts_core::SynthesisParams;
use hlts_dfg::Dfg;

use crate::DseError;

/// Which synthesis flow a sweep point runs (the CLI's `--flow` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Flow {
    /// Algorithm 1, the paper's integrated synthesizer. The only flow
    /// that exercises the shared per-behavior caches.
    #[default]
    Ours,
    /// CAMAD-style connectivity-driven synthesis.
    Camad,
    /// Force-directed scheduling + Lee allocation.
    Approach1,
    /// Mobility-path scheduling + modified left-edge allocation.
    Approach2,
}

impl Flow {
    /// Every flow, in canonical order.
    pub const ALL: [Flow; 4] = [Flow::Ours, Flow::Camad, Flow::Approach1, Flow::Approach2];

    /// The flow's canonical (CLI/journal) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Flow::Ours => "ours",
            Flow::Camad => "camad",
            Flow::Approach1 => "approach1",
            Flow::Approach2 => "approach2",
        }
    }

    /// Parse a canonical name back to a flow.
    #[must_use]
    pub fn parse(s: &str) -> Option<Flow> {
        Flow::ALL.into_iter().find(|f| f.name() == s)
    }
}

impl std::fmt::Display for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The user parameters of one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointParams {
    /// Name of the behavior (must match a [`SweepSpec::benches`] entry).
    pub bench: String,
    /// The synthesis flow.
    pub flow: Flow,
    /// The paper's shortlist size `k`.
    pub k: usize,
    /// ΔE weight α.
    pub alpha: f64,
    /// ΔH weight β.
    pub beta: f64,
    /// Data-path bit width.
    pub bits: u32,
}

impl PointParams {
    /// The [`SynthesisParams`] this point runs with (everything not
    /// swept stays at the library defaults).
    #[must_use]
    pub fn synthesis_params(&self) -> SynthesisParams {
        SynthesisParams {
            k: self.k,
            alpha: self.alpha,
            beta: self.beta,
            bits: self.bits,
            ..SynthesisParams::default()
        }
    }

    /// The canonical `key=value` encoding used by journals and the
    /// spec fingerprint. Floats use Rust's shortest round-trip format,
    /// so parsing the key back recovers them bit-exactly.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "bench={} flow={} k={} alpha={:?} beta={:?} bits={}",
            self.bench, self.flow, self.k, self.alpha, self.beta, self.bits
        )
    }

    /// Validate the point: positive `k`, finite non-negative weights,
    /// journal-safe bench name.
    pub(crate) fn validate(&self) -> Result<(), DseError> {
        if self.k == 0 {
            return Err(DseError::Spec("k must be >= 1".into()));
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if !v.is_finite() || v < 0.0 {
                return Err(DseError::Spec(format!(
                    "{name} must be a finite non-negative number (got {v})"
                )));
            }
        }
        if self.bench.is_empty() || self.bench.chars().any(char::is_whitespace) {
            return Err(DseError::Spec(format!(
                "bench name `{}` must be non-empty and whitespace-free",
                self.bench
            )));
        }
        Ok(())
    }
}

/// One enumerated point of a sweep: a stable ID plus its parameters.
///
/// IDs are positions in the deterministic grid enumeration of
/// [`SweepSpec::points`], so a given spec always assigns a given
/// parameter combination the same ID — the invariant checkpoints,
/// resume and the order-independent Pareto merge rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Stable index into the spec's enumeration.
    pub id: usize,
    /// The point's parameters.
    pub params: PointParams,
}

/// Coverage-grading configuration of a sweep: when present, every
/// completed point is elaborated to gates and graded with `hlts-tcov`,
/// and the Pareto front gains the measured (coverage, test-cycle) axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcovSweep {
    /// Collapsed-fault sample size per point; `0` grades the full
    /// collapsed fault list (exhaustive).
    pub fault_sample: usize,
}

impl TcovSweep {
    /// The sample size as the grader's `Option` (`0` → exhaustive).
    #[must_use]
    pub fn sample(&self) -> Option<usize> {
        (self.fault_sample > 0).then_some(self.fault_sample)
    }
}

/// A sweep: the cross product of benches × flows × k × (α, β) × bits,
/// plus an explicit extra point list.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The behaviors to synthesize, as (name, graph) pairs.
    pub benches: Vec<(String, Dfg)>,
    /// Flows of the grid.
    pub flows: Vec<Flow>,
    /// Shortlist sizes of the grid.
    pub ks: Vec<usize>,
    /// (α, β) weight pairs of the grid.
    pub weights: Vec<(f64, f64)>,
    /// Bit widths of the grid.
    pub bits: Vec<u32>,
    /// Explicit additional points appended after the grid (their
    /// `bench` must name a [`SweepSpec::benches`] entry).
    pub extra: Vec<PointParams>,
    /// Grade every point's fault coverage (`--atpg`). Changes the
    /// fingerprint — a coverage journal cannot resume a plain sweep or
    /// vice versa.
    pub tcov: Option<TcovSweep>,
    /// Seed each point from its nearest completed neighbour's
    /// accepted-merge trace (`--warm-start on`). Changes the
    /// fingerprint — a trace-bearing journal cannot resume a legacy
    /// sweep or vice versa (see [`TRACE_SCHEMA`]).
    pub warm_start: bool,
}

/// Version of the journal's `trace` line encoding, folded into the
/// fingerprint of warm-start sweeps: bumping it when the encoding
/// changes makes `--resume` refuse old trace-bearing journals instead
/// of silently replaying a half-understood schema.
pub const TRACE_SCHEMA: u32 = 1;

impl SweepSpec {
    /// A sweep over `benches` with the paper's default grid axes:
    /// flow `ours`, `k = 3`, weights `(2, 1)`, 8-bit.
    #[must_use]
    pub fn new(benches: Vec<(String, Dfg)>) -> Self {
        SweepSpec {
            benches,
            flows: vec![Flow::Ours],
            ks: vec![3],
            weights: vec![(2.0, 1.0)],
            bits: vec![8],
            extra: Vec::new(),
            tcov: None,
            warm_start: false,
        }
    }

    /// Enumerate the sweep deterministically: bench-major, then flow,
    /// `k`, weights, bits, with [`SweepSpec::extra`] appended last.
    /// Point IDs are the positions in this enumeration.
    ///
    /// # Errors
    ///
    /// Rejects empty axes, invalid parameters (`k = 0`, non-finite or
    /// negative weights), unknown bench names in `extra`, and duplicate
    /// bench names.
    pub fn points(&self) -> Result<Vec<SweepPoint>, DseError> {
        if self.benches.is_empty() {
            return Err(DseError::Spec("sweep needs at least one bench".into()));
        }
        let axes = [
            (self.flows.is_empty(), "flows"),
            (self.ks.is_empty(), "ks"),
            (self.weights.is_empty(), "weights"),
            (self.bits.is_empty(), "bits"),
        ];
        if let Some((_, axis)) = axes.iter().find(|(empty, _)| *empty) {
            return Err(DseError::Spec(format!("sweep axis `{axis}` is empty")));
        }
        for (i, (name, _)) in self.benches.iter().enumerate() {
            if self.benches[..i].iter().any(|(n, _)| n == name) {
                return Err(DseError::Spec(format!("duplicate bench name `{name}`")));
            }
        }
        let mut out = Vec::new();
        for (bench, _) in &self.benches {
            for &flow in &self.flows {
                for &k in &self.ks {
                    for &(alpha, beta) in &self.weights {
                        for &bits in &self.bits {
                            out.push(PointParams {
                                bench: bench.clone(),
                                flow,
                                k,
                                alpha,
                                beta,
                                bits,
                            });
                        }
                    }
                }
            }
        }
        out.extend(self.extra.iter().cloned());
        for p in &out {
            p.validate()?;
            if !self.benches.iter().any(|(n, _)| *n == p.bench) {
                return Err(DseError::Spec(format!(
                    "extra point names unknown bench `{}`",
                    p.bench
                )));
            }
        }
        Ok(out
            .into_iter()
            .enumerate()
            .map(|(id, params)| SweepPoint { id, params })
            .collect())
    }

    /// A 64-bit fingerprint of the enumerated sweep (FNV-1a over every
    /// point's canonical key). Journals record it so a resume against a
    /// different spec is rejected instead of silently mis-assigning IDs.
    ///
    /// # Errors
    ///
    /// As [`SweepSpec::points`].
    pub fn fingerprint(&self) -> Result<u64, DseError> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |text: String| {
            for byte in text.bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for p in self.points()? {
            mix(format!("{} {}\n", p.id, p.params.key()));
        }
        // Appended only when grading is on, so every pre-existing plain
        // journal keeps its fingerprint bit-for-bit.
        if let Some(t) = &self.tcov {
            mix(format!("tcov fault_sample={}\n", t.fault_sample));
        }
        // Likewise gated: a warm-start journal carries `trace` lines, so
        // `--resume` must refuse to mix it with a legacy journal (and
        // with any future trace schema) rather than silently replaying a
        // half-understood file.
        if self.warm_start {
            mix(format!("warm-start trace-schema={TRACE_SCHEMA}\n"));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> (String, Dfg) {
        (
            "t".into(),
            hlts_dfg::parse("dfg t { input a, b; N1: s = a + b; N2: p = s * b; output p; }")
                .unwrap(),
        )
    }

    #[test]
    fn grid_enumeration_is_stable_and_bench_major() {
        let mut spec = SweepSpec::new(vec![bench()]);
        spec.ks = vec![1, 3];
        spec.weights = vec![(2.0, 1.0), (1.0, 10.0)];
        let pts = spec.points().unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].id, 0);
        assert_eq!((pts[0].params.k, pts[0].params.alpha), (1, 2.0));
        assert_eq!((pts[1].params.k, pts[1].params.alpha), (1, 1.0));
        assert_eq!((pts[3].params.k, pts[3].params.alpha), (3, 1.0));
        assert_eq!(
            spec.fingerprint().unwrap(),
            spec.fingerprint().unwrap(),
            "fingerprint is a pure function of the spec"
        );
    }

    #[test]
    fn invalid_points_are_rejected() {
        let mut spec = SweepSpec::new(vec![bench()]);
        spec.ks = vec![0];
        assert!(spec.points().is_err());
        spec.ks = vec![1];
        spec.weights = vec![(f64::NAN, 1.0)];
        assert!(spec.points().is_err());
        spec.weights = vec![(-1.0, 1.0)];
        assert!(spec.points().is_err());
        spec.weights = vec![(1.0, 1.0)];
        spec.extra.push(PointParams {
            bench: "missing".into(),
            flow: Flow::Ours,
            k: 1,
            alpha: 1.0,
            beta: 1.0,
            bits: 8,
        });
        assert!(spec.points().is_err());
    }

    #[test]
    fn tcov_changes_the_fingerprint_plain_spec_does_not() {
        let plain = SweepSpec::new(vec![bench()]);
        let mut graded = plain.clone();
        graded.tcov = Some(TcovSweep { fault_sample: 500 });
        let mut exhaustive = plain.clone();
        exhaustive.tcov = Some(TcovSweep { fault_sample: 0 });
        let fp = plain.fingerprint().unwrap();
        assert_ne!(fp, graded.fingerprint().unwrap());
        assert_ne!(
            graded.fingerprint().unwrap(),
            exhaustive.fingerprint().unwrap(),
            "the sample size is part of what a journal certifies"
        );
        assert_eq!(TcovSweep { fault_sample: 0 }.sample(), None);
        assert_eq!(TcovSweep { fault_sample: 9 }.sample(), Some(9));
    }

    #[test]
    fn warm_start_changes_the_fingerprint_plain_spec_does_not() {
        let plain = SweepSpec::new(vec![bench()]);
        let mut warm = plain.clone();
        warm.warm_start = true;
        assert_ne!(
            plain.fingerprint().unwrap(),
            warm.fingerprint().unwrap(),
            "a trace-bearing journal must not resume a legacy sweep"
        );
    }

    #[test]
    fn params_key_roundtrips_floats() {
        let p = PointParams {
            bench: "t".into(),
            flow: Flow::Ours,
            k: 3,
            alpha: 0.1,
            beta: 10.0,
            bits: 8,
        };
        assert_eq!(p.key(), "bench=t flow=ours k=3 alpha=0.1 beta=10.0 bits=8");
    }

    #[test]
    fn flow_names_roundtrip() {
        for f in Flow::ALL {
            assert_eq!(Flow::parse(f.name()), Some(f));
        }
        assert_eq!(Flow::parse("nope"), None);
    }
}
