//! # hlts-dse — parallel Pareto design-space exploration
//!
//! The paper's experiments are sweeps over its user knobs — the
//! testability shortlist size `k` and the ΔE/ΔH weights α/β — on a
//! handful of benchmark behaviors. This crate turns that from a
//! hand-rolled double loop into a batch subsystem:
//!
//! * [`SweepSpec`] — a deterministic grid (benches × flows × k ×
//!   weights × bits, plus an explicit point list) with stable point
//!   IDs;
//! * [`explore`] — a worker pool that synthesizes the points, sharing
//!   each behavior's [`TestabilityEngine`], critical-path and (E, H)
//!   caches across points by forking one base
//!   [`DesignState`](hlts_core::DesignState) per behavior;
//! * [`ParetoArchive`] — an incremental dominance-checked front over
//!   (E, H, avg C, avg O, C→O depth), merged in point-ID order so the
//!   result is **bit-identical for any worker count**;
//! * [`journal`] — a plain-text checkpoint of completed points, so an
//!   interrupted sweep resumes without recomputing anything
//!   ([`load_journal`] + [`ExploreConfig::resume`]);
//! * [`ExploreStats`] — point accounting, timing and the shared
//!   caches' hit counters.
//!
//! [`TestabilityEngine`]: hlts_core::TestabilityEngine
//!
//! # Example
//!
//! ```
//! use hlts_dse::{explore, ExploreConfig, SweepSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = hlts_dfg::parse(
//!     "dfg t { input a, b, c;
//!        N1: p = a * b; N2: q = b * c; N3: r = p - q; N4: s = p + c;
//!        output r, s; }",
//! )?;
//! let mut spec = SweepSpec::new(vec![("t".into(), dfg)]);
//! spec.ks = vec![1, 3];
//! spec.weights = vec![(2.0, 1.0), (1.0, 10.0)];
//! let outcome = explore(&spec, &ExploreConfig { jobs: 2, ..Default::default() })?;
//! assert_eq!(outcome.results.len(), 4);
//! assert!(!outcome.front.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod journal;
mod pareto;
mod runner;
mod spec;

pub use journal::JournalScan;
pub use pareto::{Objectives, ParetoArchive, PointResult, TestObjectives};
pub use runner::{
    explore, explore_ctl, load_journal, select_seed, ExploreConfig, ExploreOutcome, ExploreStats,
    PointFailure,
};
pub use spec::{Flow, PointParams, SweepPoint, SweepSpec, TcovSweep, TRACE_SCHEMA};

use hlts_core::CoreError;

/// Errors of the exploration subsystem.
#[derive(Debug)]
pub enum DseError {
    /// A point's synthesis failed.
    Core(CoreError),
    /// The sweep specification is invalid.
    Spec(String),
    /// A checkpoint journal could not be read, parsed or written.
    Journal(String),
    /// A worker thread died (panic or injected kill) while holding a
    /// point; the point is lost but the sweep continues.
    Worker(String),
    /// Coverage grading of a completed point failed (the design could
    /// not be elaborated to gates); the point is reported failed, the
    /// sweep continues.
    Coverage(String),
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::Core(e) => write!(f, "synthesis failed: {e}"),
            DseError::Spec(m) => write!(f, "invalid sweep: {m}"),
            DseError::Journal(m) => write!(f, "journal: {m}"),
            DseError::Worker(m) => write!(f, "worker: {m}"),
            DseError::Coverage(m) => write!(f, "coverage: {m}"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for DseError {
    fn from(e: CoreError) -> Self {
        DseError::Core(e)
    }
}

impl ExploreOutcome {
    /// A canonical one-line encoding of the front — point IDs plus the
    /// full objective vectors in shortest round-trip float format.
    /// Equal strings ⇔ bit-identical fronts, which is how the
    /// determinism tests and the `dse` bench gate compare runs.
    #[must_use]
    pub fn front_signature(&self) -> String {
        self.front
            .iter()
            .map(|r| {
                let o = &r.objectives;
                let test = o
                    .test
                    .map(|t| format!(",cov={:?},tcyc={}", t.coverage, t.test_cycles))
                    .unwrap_or_default();
                format!(
                    "{}:E={},H={:?},avgC={:?},avgO={:?},depth={:?}{test}",
                    r.id,
                    o.execution_time,
                    o.hardware,
                    o.avg_controllability,
                    o.avg_observability,
                    o.co_depth
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Render the sweep as a table (one row per point, front rows
    /// starred) followed by the Pareto front and the cache/timing
    /// summary — the `hlts explore` report.
    #[must_use]
    pub fn render(&self) -> String {
        let graded = self.results.iter().any(|r| r.objectives.test.is_some());
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4} {:>8} {:>10} {:>3} {:>7} {:>7} {:>4}   {:>3} {:>4} {:>4} {:>4} {:>8} \
             {:>6} {:>6} {:>7}{}{:>7}  {}\n",
            "id",
            "bench",
            "flow",
            "k",
            "alpha",
            "beta",
            "bits",
            "E",
            "mod",
            "reg",
            "mux",
            "H",
            "avgC",
            "avgO",
            "depth",
            if graded {
                format!(" {:>7} {:>6}", "cov%", "tcyc")
            } else {
                String::new()
            },
            "ms",
            "front"
        ));
        for r in &self.results {
            let starred = self.front.iter().any(|f| f.id == r.id);
            let test = match (graded, r.objectives.test) {
                (true, Some(t)) => format!(" {:>7.2} {:>6}", t.coverage, t.test_cycles),
                (true, None) => format!(" {:>7} {:>6}", "-", "-"),
                (false, _) => String::new(),
            };
            out.push_str(&format!(
                "{:>4} {:>8} {:>10} {:>3} {:>7.2} {:>7.2} {:>4}   {:>3} {:>4} {:>4} {:>4} {:>8.3} \
                 {:>6.2} {:>6.2} {:>7.1}{test}{:>7}  {}\n",
                r.id,
                r.params.bench,
                r.params.flow,
                r.params.k,
                r.params.alpha,
                r.params.beta,
                r.params.bits,
                r.objectives.execution_time,
                r.modules,
                r.registers,
                r.muxes,
                r.objectives.hardware,
                r.objectives.avg_controllability,
                r.objectives.avg_observability,
                r.objectives.co_depth,
                if r.resumed { "-".into() } else { r.millis.to_string() },
                if starred { "*" } else { "" },
            ));
        }
        out.push_str(&format!(
            "\nPareto front ({} of {} points):\n",
            self.front.len(),
            self.results.len()
        ));
        for r in &self.front {
            let test = r
                .objectives
                .test
                .map(|t| format!(", coverage = {:.2}%, test cycles = {}", t.coverage, t.test_cycles))
                .unwrap_or_default();
            out.push_str(&format!(
                "  #{:<3} {} -> E = {}, H = {:.3}, avg C = {:.2}, avg O = {:.2}, \
                 C->O depth = {:.1}{test}\n",
                r.id,
                r.params.key(),
                r.objectives.execution_time,
                r.objectives.hardware,
                r.objectives.avg_controllability,
                r.objectives.avg_observability,
                r.objectives.co_depth,
            ));
        }
        if !self.failures.is_empty() {
            out.push_str(&format!("\nfailed points ({}):\n", self.failures.len()));
            for f in &self.failures {
                out.push_str(&format!("  #{:<3} {}\n", f.id, f.message));
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "\nexplored {} points ({} computed, {} resumed) on {} worker(s) in {} ms \
             (sum of point times {} ms)\n",
            s.points_total,
            s.points_computed,
            s.points_resumed,
            s.workers,
            s.wall_millis,
            s.compute_millis,
        ));
        // Present only on warm-start sweeps, so cold output stays
        // byte-identical to every earlier version.
        if self.results.iter().any(|r| r.replay.is_some()) {
            out.push_str(&format!(
                "warm start: {} merge(s) replayed from neighbour traces, {} recomputed\n",
                s.merges_replayed, s.merges_recomputed,
            ));
        }
        if s.points_failed > 0 || s.journal_malformed > 0 || s.journal_torn_tail > 0 {
            out.push_str(&format!(
                "degraded: {} point(s) failed, {} malformed journal line(s) skipped on \
                 resume, {} torn final line(s) dropped\n",
                s.points_failed, s.journal_malformed, s.journal_torn_tail,
            ));
        }
        if s.points_cancelled > 0 {
            out.push_str(&format!(
                "degraded: cancelled — {} point(s) abandoned; every finished point is \
                 journaled, so --resume continues exactly here\n",
                s.points_cancelled,
            ));
        }
        out.push_str(&format!(
            "testability cache: {} hits / {} misses ({} incremental, {} full); \
             (E,H) cache: {} hits / {} misses; txn: {} trials, {} undo ops\n",
            s.testability.hits,
            s.testability.misses,
            s.testability.incremental,
            s.testability.full,
            s.eval.state_hits,
            s.eval.state_misses,
            s.txn.begun,
            s.txn.ops_recorded,
        ));
        out
    }

    /// Render the outcome as machine-readable JSON (hand-rolled, no
    /// serde; floats in shortest round-trip format — NaN/∞ cannot
    /// occur because specs reject non-finite weights and every metric
    /// is finite by construction).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"points\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let o = &r.objectives;
            // Present only on graded sweeps, so plain output stays
            // byte-identical to earlier versions.
            let test = o
                .test
                .map(|t| {
                    format!(
                        " \"coverage\": {:?}, \"test_cycles\": {},",
                        t.coverage, t.test_cycles
                    )
                })
                .unwrap_or_default();
            // Like `test`: present only on warm-start sweeps.
            let replay = r
                .replay
                .map(|(rep, rec)| format!(" \"replayed\": {rep}, \"recomputed\": {rec},"))
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"id\": {}, \"bench\": {}, \"flow\": \"{}\", \"k\": {}, \
                 \"alpha\": {:?}, \"beta\": {:?}, \"bits\": {}, \"E\": {}, \"H\": {:?}, \
                 \"modules\": {}, \"registers\": {}, \"muxes\": {}, \
                 \"avg_controllability\": {:?}, \"avg_observability\": {:?}, \
                 \"co_depth\": {:?},{test}{replay} \"millis\": {}, \"resumed\": {}, \"on_front\": {}}}{}\n",
                r.id,
                json_string(&r.params.bench),
                r.params.flow,
                r.params.k,
                r.params.alpha,
                r.params.beta,
                r.params.bits,
                o.execution_time,
                o.hardware,
                r.modules,
                r.registers,
                r.muxes,
                o.avg_controllability,
                o.avg_observability,
                o.co_depth,
                r.millis,
                r.resumed,
                self.front.iter().any(|f| f.id == r.id),
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        let front_ids: Vec<String> = self.front.iter().map(|r| r.id.to_string()).collect();
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"id\": {}, \"message\": {}}}",
                    f.id,
                    json_string(&f.message)
                )
            })
            .collect();
        let s = &self.stats;
        // Stats keys gated like the per-point pair: cold JSON stays
        // byte-identical.
        let warm_stats = if self.results.iter().any(|r| r.replay.is_some()) {
            format!(
                "\"merges_replayed\": {}, \"merges_recomputed\": {}, ",
                s.merges_replayed, s.merges_recomputed
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  ],\n  \"front\": [{}],\n  \"failures\": [{}],\n  \"stats\": {{\"points_total\": {}, \
             \"points_computed\": {}, \"points_resumed\": {}, \"points_failed\": {}, \
             \"points_cancelled\": {}, \
             \"journal_malformed\": {}, \"journal_torn_tail\": {}, {warm_stats}\"workers\": {}, \
             \"wall_millis\": {}, \"compute_millis\": {}, \
             \"testability\": {{\"hits\": {}, \"misses\": {}, \"incremental\": {}, \
             \"full\": {}}}, \"eval\": {{\"state_hits\": {}, \"state_misses\": {}}}, \
             \"txn\": {{\"begun\": {}, \"committed\": {}, \"rolled_back\": {}}}}}\n}}\n",
            front_ids.join(", "),
            failures.join(", "),
            s.points_total,
            s.points_computed,
            s.points_resumed,
            s.points_failed,
            s.points_cancelled,
            s.journal_malformed,
            s.journal_torn_tail,
            s.workers,
            s.wall_millis,
            s.compute_millis,
            s.testability.hits,
            s.testability.misses,
            s.testability.incremental,
            s.testability.full,
            s.eval.state_hits,
            s.eval.state_misses,
            s.txn.begun,
            s.txn.committed,
            s.txn.rolled_back,
        ));
        out
    }
}

/// Quote and escape a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
