//! Incremental dominance-checked Pareto archive over sweep results.
//!
//! The exploration optimizes five objectives at once: execution time
//! `E` and hardware cost `H` (minimized) and the three testability
//! measures — average controllability, average observability (both
//! maximized) and total C→O depth (minimized). A point survives the
//! archive exactly when no other point is at least as good in every
//! objective and strictly better in one.
//!
//! Determinism: the archive's *set* is the global non-dominated set of
//! whatever was inserted, independent of insertion order (a dominated
//! point can never re-enter: dominance is transitive, so the archive
//! always retains a dominator for anything it evicts or rejects). The
//! runner nevertheless inserts in point-ID order so the stored *order*
//! — and therefore every rendering of the front — is bit-identical
//! regardless of worker count or completion order.

use crate::spec::PointParams;

/// Measured test objectives of one design, present when the sweep ran
/// with coverage grading (`--atpg`): the `hlts-tcov` report folded to
/// the two axes the paper's tables trade off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestObjectives {
    /// Measured fault coverage in percent (maximize).
    pub coverage: f64,
    /// Clock cycles of the kept test set (minimize).
    pub test_cycles: usize,
}

/// The objective vector of one synthesized design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Execution time `E` in control steps (minimize).
    pub execution_time: usize,
    /// Floorplanned hardware cost `H` (minimize).
    pub hardware: f64,
    /// Mean scalarized controllability (maximize).
    pub avg_controllability: f64,
    /// Mean scalarized observability (maximize).
    pub avg_observability: f64,
    /// Total controllable→observable depth (minimize).
    pub co_depth: f64,
    /// Measured coverage objectives — `Some` exactly when the sweep
    /// graded its points ([`SweepSpec::tcov`](crate::SweepSpec::tcov)).
    pub test: Option<TestObjectives>,
}

impl Objectives {
    /// Pareto dominance: no worse in every objective, strictly better
    /// in at least one.
    ///
    /// Float objectives compare with [`f64::total_cmp`]: a NaN smuggled
    /// in (a hand-edited journal, a future metric bug) lands at a
    /// deterministic extreme of each axis instead of making dominance
    /// non-transitive — the property the archive's order-independence
    /// argument rests on.
    ///
    /// The measured test axes join the comparison only when **both**
    /// points carry them; a graded and an ungraded point are mutually
    /// non-dominating (a sweep is uniformly graded or not, so the mixed
    /// case only arises when hand-merging archives — and then neither
    /// point may silently evict the other).
    #[must_use]
    pub fn dominates(&self, other: &Objectives) -> bool {
        use std::cmp::Ordering::{Greater, Less};
        let (test_no_worse, test_better) = match (self.test, other.test) {
            (Some(a), Some(b)) => (
                a.coverage.total_cmp(&b.coverage) != Less && a.test_cycles <= b.test_cycles,
                a.coverage.total_cmp(&b.coverage) == Greater || a.test_cycles < b.test_cycles,
            ),
            (None, None) => (true, false),
            _ => return false,
        };
        let no_worse = self.execution_time <= other.execution_time
            && self.hardware.total_cmp(&other.hardware) != Greater
            && self
                .avg_controllability
                .total_cmp(&other.avg_controllability)
                != Less
            && self.avg_observability.total_cmp(&other.avg_observability) != Less
            && self.co_depth.total_cmp(&other.co_depth) != Greater;
        let better = self.execution_time < other.execution_time
            || self.hardware.total_cmp(&other.hardware) == Less
            || self
                .avg_controllability
                .total_cmp(&other.avg_controllability)
                == Greater
            || self.avg_observability.total_cmp(&other.avg_observability) == Greater
            || self.co_depth.total_cmp(&other.co_depth) == Less;
        no_worse && test_no_worse && (better || test_better)
    }
}

/// The outcome of one completed sweep point.
///
/// `millis` (wall time of the synthesis) and `resumed` (loaded from a
/// journal rather than computed) are diagnostics and excluded from
/// equality, mirroring how `SynthesisResult` excludes its cache
/// counters: results compare by what was synthesized.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The point's stable ID in its sweep.
    pub id: usize,
    /// The parameters the point ran with.
    pub params: PointParams,
    /// The design's objective vector.
    pub objectives: Objectives,
    /// Live functional modules.
    pub modules: usize,
    /// Live registers.
    pub registers: usize,
    /// 2-to-1 mux equivalents.
    pub muxes: usize,
    /// Wall-clock milliseconds this point's synthesis took (0 when
    /// resumed from a journal). Diagnostics only.
    pub millis: u64,
    /// Whether the result was replayed from a checkpoint journal
    /// instead of recomputed. Diagnostics only.
    pub resumed: bool,
    /// Warm-start accounting, `Some((replayed, recomputed))` exactly
    /// when the sweep ran with `--warm-start on`: how many committed
    /// merges came from replaying a neighbour's trace vs the scratch
    /// loop. Diagnostics only — replay changes work, never results, so
    /// the pair is excluded from equality like `millis`/`resumed`.
    pub replay: Option<(usize, usize)>,
}

impl PartialEq for PointResult {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.params == other.params
            && self.objectives == other.objectives
            && self.modules == other.modules
            && self.registers == other.registers
            && self.muxes == other.muxes
    }
}

/// An incremental Pareto archive of [`PointResult`]s.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    entries: Vec<PointResult>,
}

impl ParetoArchive {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        ParetoArchive::default()
    }

    /// Offer a result to the archive. Returns `true` when it enters
    /// (evicting everything it dominates), `false` when an existing
    /// entry dominates it. Mutually non-dominated duplicates coexist.
    pub fn insert(&mut self, result: PointResult) -> bool {
        if self
            .entries
            .iter()
            .any(|e| e.objectives.dominates(&result.objectives))
        {
            return false;
        }
        self.entries
            .retain(|e| !result.objectives.dominates(&e.objectives));
        self.entries.push(result);
        true
    }

    /// The current front, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[PointResult] {
        &self.entries
    }

    /// Number of entries on the front.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consume the archive, yielding the front in insertion order.
    #[must_use]
    pub fn into_entries(self) -> Vec<PointResult> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Flow;

    fn result(id: usize, e: usize, h: f64, c: f64, o: f64, d: f64) -> PointResult {
        PointResult {
            id,
            params: PointParams {
                bench: "t".into(),
                flow: Flow::Ours,
                k: 1,
                alpha: 1.0,
                beta: 1.0,
                bits: 8,
            },
            objectives: Objectives {
                execution_time: e,
                hardware: h,
                avg_controllability: c,
                avg_observability: o,
                co_depth: d,
                test: None,
            },
            modules: 1,
            registers: 1,
            muxes: 0,
            millis: 0,
            resumed: false,
            replay: None,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = result(0, 4, 1.0, 0.9, 0.9, 2.0);
        let b = result(1, 4, 1.0, 0.9, 0.9, 2.0);
        assert!(!a.objectives.dominates(&b.objectives), "equal points tie");
        let better = result(2, 3, 1.0, 0.9, 0.9, 2.0);
        assert!(better.objectives.dominates(&a.objectives));
        assert!(!a.objectives.dominates(&better.objectives));
    }

    #[test]
    fn maximized_objectives_point_the_right_way() {
        let testable = result(0, 4, 1.0, 0.95, 0.95, 2.0);
        let opaque = result(1, 4, 1.0, 0.5, 0.5, 2.0);
        assert!(testable.objectives.dominates(&opaque.objectives));
    }

    #[test]
    fn archive_set_is_insertion_order_independent() {
        let pts = [
            result(0, 4, 2.0, 0.9, 0.9, 3.0),
            result(1, 3, 3.0, 0.8, 0.9, 3.0), // trades E for H/avgC
            result(2, 4, 2.0, 0.9, 0.9, 4.0), // dominated by 0
            result(3, 5, 1.0, 0.9, 0.9, 3.0), // trades H for E
            result(4, 3, 3.0, 0.9, 0.9, 3.0), // dominates 1
        ];
        let front_of = |order: &[usize]| {
            let mut a = ParetoArchive::new();
            for &i in order {
                a.insert(pts[i].clone());
            }
            let mut ids: Vec<usize> = a.entries().iter().map(|e| e.id).collect();
            ids.sort_unstable();
            ids
        };
        let forward = front_of(&[0, 1, 2, 3, 4]);
        assert_eq!(forward, vec![0, 3, 4]);
        assert_eq!(forward, front_of(&[4, 3, 2, 1, 0]));
        assert_eq!(forward, front_of(&[2, 0, 4, 1, 3]));
    }

    #[test]
    fn test_axes_join_dominance_only_when_both_graded() {
        let mut covered = result(0, 4, 1.0, 0.9, 0.9, 2.0);
        covered.objectives.test = Some(TestObjectives {
            coverage: 98.5,
            test_cycles: 120,
        });
        let mut weak = covered.clone();
        weak.id = 1;
        weak.objectives.test = Some(TestObjectives {
            coverage: 91.0,
            test_cycles: 200,
        });
        assert!(covered.objectives.dominates(&weak.objectives));
        assert!(!weak.objectives.dominates(&covered.objectives));
        // Better coverage but more test cycles: a genuine trade-off.
        let mut long = covered.clone();
        long.id = 2;
        long.objectives.test = Some(TestObjectives {
            coverage: 99.9,
            test_cycles: 400,
        });
        assert!(!covered.objectives.dominates(&long.objectives));
        assert!(!long.objectives.dominates(&covered.objectives));
        // Graded vs ungraded: mutually non-dominating, even when one
        // strictly beats the other on every shared axis.
        let plain = result(3, 9, 9.0, 0.1, 0.1, 9.0);
        assert!(!covered.objectives.dominates(&plain.objectives));
        assert!(!plain.objectives.dominates(&covered.objectives));
    }

    #[test]
    fn ties_coexist() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(result(0, 4, 1.0, 0.9, 0.9, 2.0)));
        assert!(a.insert(result(1, 4, 1.0, 0.9, 0.9, 2.0)));
        assert_eq!(a.len(), 2);
    }
}
