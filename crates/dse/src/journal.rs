//! Plain-text checkpoint journal for interrupted sweeps.
//!
//! The journal is append-only, hand-rolled text (no serde, like the
//! rest of the workspace's reports): a two-line header binding the file
//! to one sweep spec, then one `point` line per completed result, in
//! completion order (which under a parallel pool is *not* ID order —
//! resume never depends on line order):
//!
//! ```text
//! hlts-dse journal v1
//! spec 9a3c0b8d12ef4567
//! point 7 bench=dct flow=ours k=3 alpha=2.0 beta=1.0 bits=8 E=9 \
//!       H=1.392 mod=4 reg=7 mux=12 avgC=0.98 avgO=0.95 depth=0.0 ms=312
//! ```
//!
//! (shown wrapped; real lines are single lines). Floats are written in
//! Rust's shortest round-trip format, so a replayed result is
//! bit-identical to the computed one — the property that makes a
//! resumed front equal an uninterrupted one.
//!
//! Warm-start sweeps (`--warm-start on`) additionally write one `trace`
//! line per point — the accepted-merge trace replay consumes, encoded
//! by [`render_trace`] — immediately *before* its `point` line in the
//! same append, and the point line gains an atomic ` rep=N rec=M` pair.
//! A `trace` line whose `point` line never landed (the append was torn
//! between the two) is an orphan and silently dropped: the point will
//! be recomputed, re-recording its trace.
//!
//! A truncated final line (the typical shape of a killed run) is
//! detected and skipped, so a resume after `kill -9` still works; a
//! file is only considered cleanly terminated when the text after its
//! last non-whitespace character is exactly one newline — a torn final
//! line followed by stray trailing blank lines is still a torn tail,
//! not interior corruption. Malformed *interior* lines (a torn mid-file
//! write, disk corruption, a partial overwrite) do not abort the load
//! either: each is skipped and counted in [`JournalScan::malformed`],
//! losing only the corrupted points — the runner recomputes them. Only
//! a garbled header and duplicate point IDs are unrecoverable: the
//! first means the file is not this sweep's journal at all, the second
//! that two lines claim the same slot and the loader cannot know which
//! to trust.

use std::path::Path;

use hlts_core::{MergeTrace, TraceEntry, TraceMergeKind, TraceWinner};

use crate::pareto::{Objectives, PointResult};
use crate::spec::{Flow, PointParams};
use crate::DseError;

/// Magic first line of every journal.
pub const MAGIC: &str = "hlts-dse journal v1";

/// Render the journal header for a sweep with the given fingerprint.
#[must_use]
pub fn render_header(fingerprint: u64) -> String {
    format!("{MAGIC}\nspec {fingerprint:016x}\n")
}

/// Render one completed point as a single journal line (newline
/// included).
#[must_use]
pub fn render_point(r: &PointResult) -> String {
    // The coverage pair appears only on graded sweeps, so plain
    // journals render byte-identically to every earlier version.
    let test = r
        .objectives
        .test
        .map(|t| format!(" cov={:?} tcyc={}", t.coverage, t.test_cycles))
        .unwrap_or_default();
    // Likewise the warm-start pair: only trace-bearing sweeps carry it,
    // and their fingerprint already refuses legacy journals.
    let replay = r
        .replay
        .map(|(rep, rec)| format!(" rep={rep} rec={rec}"))
        .unwrap_or_default();
    format!(
        "point {} {} E={} H={:?} mod={} reg={} mux={} avgC={:?} avgO={:?} depth={:?}{test}{replay} ms={}\n",
        r.id,
        r.params.key(),
        r.objectives.execution_time,
        r.objectives.hardware,
        r.modules,
        r.registers,
        r.muxes,
        r.objectives.avg_controllability,
        r.objectives.avg_observability,
        r.objectives.co_depth,
        r.millis,
    )
}

/// Render one point's accepted-merge trace as a single journal line
/// (newline included), or `None` when the trace is unencodable (an
/// operand symbol that is empty or contains whitespace — traces are an
/// optimization, so the caller just skips the line and the point
/// replays nothing downstream).
///
/// Encoding, whitespace-tokenized after `trace <id>`: each committed
/// merge is `M|R <symA> <symB> w<index> t<total> f<fingerprint:016x>
/// p<prices>`, a terminal iteration is `T t<total> p<prices>`, and
/// `<prices>` is a comma-joined list of `ΔE/ΔH` pairs (shortest
/// round-trip floats) with `x` marking an infeasible candidate.
#[must_use]
pub fn render_trace(id: usize, trace: &MergeTrace) -> Option<String> {
    let sym_ok = |s: &str| !s.is_empty() && !s.contains(char::is_whitespace);
    let prices = |prices: &[Option<(f64, f64)>]| {
        let items: Vec<String> = prices
            .iter()
            .map(|p| match p {
                Some((de, dh)) => format!("{de:?}/{dh:?}"),
                None => "x".to_owned(),
            })
            .collect();
        format!("p{}", items.join(","))
    };
    let mut line = format!("trace {id}");
    for entry in &trace.entries {
        match &entry.winner {
            Some(w) => {
                if !sym_ok(&w.sym_a) || !sym_ok(&w.sym_b) {
                    return None;
                }
                let kind = match w.kind {
                    TraceMergeKind::Modules => 'M',
                    TraceMergeKind::Registers => 'R',
                };
                line.push_str(&format!(
                    " {kind} {} {} w{} t{} f{:016x} {}",
                    w.sym_a,
                    w.sym_b,
                    w.index,
                    entry.total,
                    w.fingerprint,
                    prices(&entry.prices)
                ));
            }
            None => line.push_str(&format!(" T t{} {}", entry.total, prices(&entry.prices))),
        }
    }
    line.push('\n');
    Some(line)
}

fn opt_field<'a>(pairs: &'a [(&str, &str)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn field<'a>(pairs: &'a [(&str, &str)], key: &str, line: &str) -> Result<&'a str, DseError> {
    opt_field(pairs, key)
        .ok_or_else(|| DseError::Journal(format!("missing `{key}` in line `{line}`")))
}

fn parse_num<T: std::str::FromStr>(v: &str, key: &str, line: &str) -> Result<T, DseError> {
    v.parse()
        .map_err(|_| DseError::Journal(format!("bad `{key}={v}` in line `{line}`")))
}

/// Parse one `point` line (without the `point ` prefix already split
/// off by [`parse`]).
fn parse_point(rest: &str, line: &str) -> Result<PointResult, DseError> {
    let mut tokens = rest.split_whitespace();
    let id: usize = tokens
        .next()
        .ok_or_else(|| DseError::Journal(format!("missing point id in `{line}`")))
        .and_then(|t| parse_num(t, "id", line))?;
    let pairs: Vec<(&str, &str)> = tokens
        .map(|t| {
            t.split_once('=')
                .ok_or_else(|| DseError::Journal(format!("bad token `{t}` in line `{line}`")))
        })
        .collect::<Result<_, _>>()?;
    let flow_name = field(&pairs, "flow", line)?;
    let flow = Flow::parse(flow_name)
        .ok_or_else(|| DseError::Journal(format!("unknown flow `{flow_name}` in `{line}`")))?;
    // The coverage pair is optional (plain sweeps never write it) but
    // atomic: exactly one of the two keys means a damaged line.
    let test = match (opt_field(&pairs, "cov"), opt_field(&pairs, "tcyc")) {
        (Some(cov), Some(tcyc)) => Some(crate::pareto::TestObjectives {
            coverage: parse_num(cov, "cov", line)?,
            test_cycles: parse_num(tcyc, "tcyc", line)?,
        }),
        (None, None) => None,
        _ => {
            return Err(DseError::Journal(format!(
                "line has one of `cov`/`tcyc` but not both: `{line}`"
            )))
        }
    };
    // The warm-start pair is just as atomic.
    let replay = match (opt_field(&pairs, "rep"), opt_field(&pairs, "rec")) {
        (Some(rep), Some(rec)) => Some((
            parse_num(rep, "rep", line)?,
            parse_num(rec, "rec", line)?,
        )),
        (None, None) => None,
        _ => {
            return Err(DseError::Journal(format!(
                "line has one of `rep`/`rec` but not both: `{line}`"
            )))
        }
    };
    Ok(PointResult {
        id,
        params: PointParams {
            bench: field(&pairs, "bench", line)?.to_owned(),
            flow,
            k: parse_num(field(&pairs, "k", line)?, "k", line)?,
            alpha: parse_num(field(&pairs, "alpha", line)?, "alpha", line)?,
            beta: parse_num(field(&pairs, "beta", line)?, "beta", line)?,
            bits: parse_num(field(&pairs, "bits", line)?, "bits", line)?,
        },
        objectives: Objectives {
            execution_time: parse_num(field(&pairs, "E", line)?, "E", line)?,
            hardware: parse_num(field(&pairs, "H", line)?, "H", line)?,
            avg_controllability: parse_num(field(&pairs, "avgC", line)?, "avgC", line)?,
            avg_observability: parse_num(field(&pairs, "avgO", line)?, "avgO", line)?,
            co_depth: parse_num(field(&pairs, "depth", line)?, "depth", line)?,
            test,
        },
        modules: parse_num(field(&pairs, "mod", line)?, "mod", line)?,
        registers: parse_num(field(&pairs, "reg", line)?, "reg", line)?,
        muxes: parse_num(field(&pairs, "mux", line)?, "mux", line)?,
        millis: parse_num(field(&pairs, "ms", line)?, "ms", line)?,
        resumed: true,
        replay,
    })
}

/// Parse a tagged numeric token (`w7`, `t12`) from a trace line.
fn tagged<T: std::str::FromStr>(tok: &str, tag: char, line: &str) -> Result<T, DseError> {
    tok.strip_prefix(tag)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DseError::Journal(format!("bad `{tag}…` token `{tok}` in `{line}`")))
}

/// Parse a `p…` price-list token from a trace line.
fn parse_prices(tok: &str, line: &str) -> Result<Vec<Option<(f64, f64)>>, DseError> {
    let rest = tok
        .strip_prefix('p')
        .ok_or_else(|| DseError::Journal(format!("bad price token `{tok}` in `{line}`")))?;
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    rest.split(',')
        .map(|item| {
            if item == "x" {
                return Ok(None);
            }
            let (de, dh) = item
                .split_once('/')
                .ok_or_else(|| DseError::Journal(format!("bad price `{item}` in `{line}`")))?;
            Ok(Some((
                parse_num(de, "ΔE", line)?,
                parse_num(dh, "ΔH", line)?,
            )))
        })
        .collect()
}

/// Parse one `trace` line (without the `trace ` prefix already split
/// off by [`parse`]) into `(point id, trace)`.
fn parse_trace(rest: &str, line: &str) -> Result<(usize, MergeTrace), DseError> {
    let mut tokens = rest.split_whitespace();
    let id: usize = tokens
        .next()
        .ok_or_else(|| DseError::Journal(format!("missing trace id in `{line}`")))
        .and_then(|t| parse_num(t, "id", line))?;
    let mut next = |what: &str| {
        tokens
            .next()
            .ok_or_else(|| DseError::Journal(format!("truncated trace entry ({what}) in `{line}`")))
    };
    let mut entries = Vec::new();
    // Running out of tokens at an entry boundary is the clean end of
    // the line; running out mid-entry is the error `next` raises.
    while let Ok(kind) = next("kind") {
        match kind {
            "M" | "R" => {
                let sym_a = next("symbol")?.to_owned();
                let sym_b = next("symbol")?.to_owned();
                let index = tagged(next("winner index")?, 'w', line)?;
                let total = tagged(next("total")?, 't', line)?;
                let fingerprint = next("fingerprint")?
                    .strip_prefix('f')
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| {
                        DseError::Journal(format!("bad fingerprint token in `{line}`"))
                    })?;
                let prices = parse_prices(next("prices")?, line)?;
                entries.push(TraceEntry {
                    winner: Some(TraceWinner {
                        kind: if kind == "M" {
                            TraceMergeKind::Modules
                        } else {
                            TraceMergeKind::Registers
                        },
                        sym_a,
                        sym_b,
                        index,
                        fingerprint,
                    }),
                    total,
                    prices,
                });
            }
            "T" => {
                let total = tagged(next("total")?, 't', line)?;
                let prices = parse_prices(next("prices")?, line)?;
                entries.push(TraceEntry {
                    winner: None,
                    total,
                    prices,
                });
            }
            other => {
                return Err(DseError::Journal(format!(
                    "unknown trace entry kind `{other}` in `{line}`"
                )))
            }
        }
    }
    Ok((id, MergeTrace { entries }))
}

/// What [`parse`] recovered from a journal's text.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// The sweep-spec fingerprint recorded in the header.
    pub fingerprint: u64,
    /// Every intact completed point, in file order.
    pub points: Vec<PointResult>,
    /// Accepted-merge traces of warm-start journals, `(point id,
    /// trace)` in file order. Orphans (a trace whose point line never
    /// landed) are already dropped.
    pub traces: Vec<(usize, MergeTrace)>,
    /// Interior lines that were skipped as unparseable (a torn final
    /// line of an incomplete file is expected damage and **not**
    /// counted here). Non-zero means the file lost data — the skipped
    /// points will simply be recomputed on resume.
    pub malformed: usize,
    /// Whether a torn final line (an interrupted append: unparseable
    /// final text that is not cleanly newline-terminated, the typical
    /// leftover of a killed run) was dropped — `1` when so, else `0`.
    /// "Cleanly terminated" means the text after the last
    /// non-whitespace character is exactly one newline; stray trailing
    /// blank lines after a torn write still count here, not as
    /// [`JournalScan::malformed`]. Counted separately because it is
    /// *expected* damage, but still surfaced so reports can say the
    /// file was cut short.
    pub torn_tail: usize,
}

/// Parse a journal's text into its spec fingerprint and completed
/// points.
///
/// A malformed final line of a text that does not end in a newline (an
/// interrupted append) is dropped and counted in
/// [`JournalScan::torn_tail`]. Any other unparseable line is skipped
/// and counted in [`JournalScan::malformed`] — resume degrades to
/// recomputing the lost points instead of refusing the whole file.
///
/// # Errors
///
/// Missing/garbled header, duplicate point IDs.
pub fn parse(text: &str) -> Result<JournalScan, DseError> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(DseError::Journal(format!(
            "not a journal (expected `{MAGIC}` first line)"
        )));
    }
    let spec_line = lines
        .next()
        .ok_or_else(|| DseError::Journal("missing `spec` line".into()))?;
    let fingerprint = spec_line
        .strip_prefix("spec ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| DseError::Journal(format!("bad spec line `{spec_line}`")))?;

    let body: Vec<&str> = lines.filter(|l| !l.trim().is_empty()).collect();
    // A file is cleanly terminated only when the text after its last
    // non-whitespace character is exactly one newline. `ends_with('\n')`
    // alone would mis-file a torn final write followed by stray blank
    // lines as interior corruption instead of the expected torn tail.
    let complete = match text.rfind(|c: char| !c.is_whitespace()) {
        Some(i) => {
            let end = i + text[i..].chars().next().map_or(1, char::len_utf8);
            matches!(&text[end..], "\n" | "\r\n")
        }
        None => false,
    };
    let mut out: Vec<PointResult> = Vec::new();
    let mut traces: Vec<(usize, MergeTrace)> = Vec::new();
    let mut malformed = 0usize;
    let mut torn_tail = 0usize;
    enum Line {
        Point(PointResult),
        Trace(usize, MergeTrace),
    }
    for (i, line) in body.iter().enumerate() {
        let parsed = if let Some(rest) = line.strip_prefix("trace ") {
            parse_trace(rest, line).map(|(id, t)| Line::Trace(id, t))
        } else {
            line.strip_prefix("point ")
                .ok_or_else(|| DseError::Journal(format!("unexpected line `{line}`")))
                .and_then(|rest| parse_point(rest, line))
                .map(Line::Point)
        };
        match parsed {
            Ok(Line::Point(r)) => {
                if out.iter().any(|p| p.id == r.id) {
                    return Err(DseError::Journal(format!("duplicate point id {}", r.id)));
                }
                out.push(r);
            }
            Ok(Line::Trace(id, t)) => {
                if traces.iter().any(|(existing, _)| *existing == id) {
                    return Err(DseError::Journal(format!("duplicate trace id {id}")));
                }
                traces.push((id, t));
            }
            Err(_) => {
                let last = i + 1 == body.len();
                if last && !complete {
                    torn_tail = 1; // torn final write from a killed run
                    break;
                }
                malformed += 1; // interior damage: skip, report, go on
            }
        }
    }
    // A trace whose point line never landed is a torn append caught
    // between its two lines: drop it so the point is recomputed.
    traces.retain(|(id, _)| out.iter().any(|p| p.id == *id));
    Ok(JournalScan {
        fingerprint,
        points: out,
        traces,
        malformed,
        torn_tail,
    })
}

/// Read and [`parse`] a journal file.
///
/// # Errors
///
/// I/O failures plus everything [`parse`] rejects.
pub fn load(path: &Path) -> Result<JournalScan, DseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DseError::Journal(format!("{}: {e}", path.display())))?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: usize) -> PointResult {
        PointResult {
            id,
            params: PointParams {
                bench: "dct".into(),
                flow: Flow::Ours,
                k: 3,
                alpha: 0.1,
                beta: 10.0,
                bits: 8,
            },
            objectives: Objectives {
                execution_time: 9,
                hardware: 1.3920000000000001,
                avg_controllability: 0.9765625,
                avg_observability: 0.95,
                co_depth: 0.30000000000000004,
                test: None,
            },
            modules: 4,
            registers: 7,
            muxes: 12,
            millis: 312,
            resumed: false,
            replay: None,
        }
    }

    fn sample_trace() -> MergeTrace {
        MergeTrace {
            entries: vec![
                TraceEntry {
                    winner: Some(TraceWinner {
                        kind: TraceMergeKind::Modules,
                        sym_a: "N1".into(),
                        sym_b: "N4".into(),
                        index: 2,
                        fingerprint: 0x00ab_cdef_0123_4567,
                    }),
                    total: 5,
                    prices: vec![
                        Some((1.0, -0.30000000000000004)),
                        None,
                        Some((-1.0, 0.125)),
                    ],
                },
                TraceEntry {
                    winner: Some(TraceWinner {
                        kind: TraceMergeKind::Registers,
                        sym_a: "p".into(),
                        sym_b: "t3".into(),
                        index: 0,
                        fingerprint: u64::MAX,
                    }),
                    total: 1,
                    prices: vec![Some((0.0, -0.25))],
                },
                TraceEntry {
                    winner: None,
                    total: 2,
                    prices: vec![Some((2.0, 0.5)), None],
                },
            ],
        }
    }

    #[test]
    fn point_line_roundtrips_bit_exactly() {
        let r = sample(7);
        let text = format!("{}{}", render_header(0xdead_beef), render_point(&r));
        let scan = parse(&text).unwrap();
        assert_eq!(scan.fingerprint, 0xdead_beef);
        assert_eq!(scan.malformed, 0);
        assert_eq!(scan.points.len(), 1);
        assert_eq!(scan.points[0], r);
        assert!(scan.points[0].resumed);
        assert!(scan.points[0].objectives.hardware.to_bits() == r.objectives.hardware.to_bits());
    }

    #[test]
    fn coverage_pair_roundtrips_and_is_atomic() {
        use crate::pareto::TestObjectives;
        let mut r = sample(3);
        r.objectives.test = Some(TestObjectives {
            coverage: 97.33333333333333,
            test_cycles: 180,
        });
        let text = format!("{}{}", render_header(5), render_point(&r));
        let scan = parse(&text).unwrap();
        assert_eq!(scan.points[0], r);
        let t = scan.points[0].objectives.test.unwrap();
        assert_eq!(
            t.coverage.to_bits(),
            97.33333333333333_f64.to_bits(),
            "coverage replays bit-exactly"
        );
        // A line carrying cov without tcyc is damage, not a plain point:
        // it is skipped and counted like any other corrupted line.
        let damaged = text.replace(" tcyc=180", "");
        let scan = parse(&damaged).unwrap();
        assert_eq!((scan.points.len(), scan.malformed, scan.torn_tail), (0, 1, 0));
    }

    #[test]
    fn torn_final_line_is_dropped_and_counted_as_torn() {
        let mut text = format!("{}{}", render_header(1), render_point(&sample(0)));
        text.push_str("point 1 bench=dct flow=ours k=3 alp"); // torn, no \n
        let scan = parse(&text).unwrap();
        assert_eq!(scan.points.len(), 1);
        assert_eq!(scan.malformed, 0, "expected kill damage is not corruption");
        assert_eq!(scan.torn_tail, 1, "but the cut-short file is reported");
    }

    #[test]
    fn clean_journal_has_no_torn_tail() {
        let text = format!("{}{}", render_header(1), render_point(&sample(0)));
        let scan = parse(&text).unwrap();
        assert_eq!((scan.malformed, scan.torn_tail), (0, 0));
    }

    #[test]
    fn torn_line_with_trailing_blanks_is_torn_not_malformed() {
        // A killed run's torn write followed by stray blank lines: the
        // final newline(s) belong to the blanks, not to the torn line,
        // so this is still the expected torn tail — not corruption.
        let intact = format!("{}{}", render_header(1), render_point(&sample(0)));
        for tail in ["\n\n", "\n \n", "\n\n\n", "\n\r\n"] {
            let text = format!("{intact}point 1 bench=dct flow=ours k=3 alp{tail}");
            let scan = parse(&text).unwrap();
            assert_eq!(
                (scan.points.len(), scan.malformed, scan.torn_tail),
                (1, 0, 1),
                "tail {tail:?}"
            );
        }
        // Exactly one newline (or \r\n) after content is the *clean*
        // terminator: an unparseable line so terminated is interior
        // corruption, not a torn tail.
        for tail in ["\n", "\r\n"] {
            let text = format!("{intact}point 1 bench=dct flow=ours k=3 alp{tail}");
            let scan = parse(&text).unwrap();
            assert_eq!(
                (scan.points.len(), scan.malformed, scan.torn_tail),
                (1, 1, 0),
                "tail {tail:?}"
            );
        }
        // Trailing blanks after a *clean* file stay harmless.
        let scan = parse(&format!("{intact}\n\n")).unwrap();
        assert_eq!((scan.points.len(), scan.malformed, scan.torn_tail), (1, 0, 0));
    }

    #[test]
    fn trace_line_roundtrips_bit_exactly() {
        let trace = sample_trace();
        let line = render_trace(7, &trace).unwrap();
        let text = format!(
            "{}{}{}",
            render_header(2),
            line,
            render_point(&sample(7))
        );
        let scan = parse(&text).unwrap();
        assert_eq!((scan.malformed, scan.torn_tail), (0, 0));
        assert_eq!(scan.traces, vec![(7, trace.clone())]);
        let replayed = &scan.traces[0].1.entries[0].prices[0].unwrap();
        let original = trace.entries[0].prices[0].unwrap();
        assert_eq!(replayed.1.to_bits(), original.1.to_bits());
    }

    #[test]
    fn replay_pair_roundtrips_and_is_atomic() {
        let mut r = sample(4);
        r.replay = Some((11, 2));
        let text = format!("{}{}", render_header(3), render_point(&r));
        let scan = parse(&text).unwrap();
        assert_eq!(scan.points[0].replay, Some((11, 2)));
        // One of the two keys without the other is damage.
        let damaged = text.replace(" rec=2", "");
        let scan = parse(&damaged).unwrap();
        assert_eq!((scan.points.len(), scan.malformed), (0, 1));
    }

    #[test]
    fn orphan_trace_is_dropped() {
        // The append was torn between the trace line and its point
        // line: the trace must not survive, or resume would warm-start
        // from a trace whose result was never journalled.
        let text = format!(
            "{}{}{}",
            render_header(2),
            render_trace(9, &sample_trace()).unwrap(),
            render_point(&sample(0))
        );
        let scan = parse(&text).unwrap();
        assert_eq!(scan.points.len(), 1);
        assert!(scan.traces.is_empty(), "trace 9 has no point 9");
        assert_eq!((scan.malformed, scan.torn_tail), (0, 0));
    }

    #[test]
    fn duplicate_trace_ids_rejected() {
        let line = render_trace(7, &sample_trace()).unwrap();
        let text = format!("{}{line}{line}{}", render_header(2), render_point(&sample(7)));
        assert!(parse(&text).is_err());
    }

    #[test]
    fn unencodable_symbols_refuse_to_render() {
        let mut trace = sample_trace();
        if let Some(w) = &mut trace.entries[0].winner {
            w.sym_a = "two words".into();
        }
        assert!(render_trace(0, &trace).is_none());
        if let Some(w) = &mut trace.entries[0].winner {
            w.sym_a = String::new();
        }
        assert!(render_trace(0, &trace).is_none());
    }

    #[test]
    fn malformed_interior_lines_are_skipped_and_counted() {
        let text = format!(
            "{}point 1 bench=dct garbage\nnot even a point line\n{}",
            render_header(1),
            render_point(&sample(0))
        );
        let scan = parse(&text).unwrap();
        assert_eq!(scan.malformed, 2);
        assert_eq!(scan.points.len(), 1);
        assert_eq!(scan.points[0].id, 0, "the intact line survives");
    }

    #[test]
    fn duplicate_ids_rejected() {
        let text = format!(
            "{}{}{}",
            render_header(1),
            render_point(&sample(2)),
            render_point(&sample(2))
        );
        assert!(parse(&text).is_err());
    }

    #[test]
    fn non_journal_rejected() {
        assert!(parse("hello\n").is_err());
        assert!(parse(&format!("{MAGIC}\nnope\n")).is_err());
    }
}
