//! The exploration runner: a worker pool over sweep points with shared
//! per-behavior caches and an order-independent Pareto merge.
//!
//! Every behavior in the sweep gets **one** base [`DesignState`] and
//! **one** [`DeltaEvaluator`]; each point forks the base (an
//! `Arc`-sharing copy, not a deep clone) and runs Algorithm 1 through
//! [`IntegratedSynthesizer::run_on`], so the testability fixpoints,
//! critical-path extractions and (E, H) measurements that different
//! parameter points happen to share resolve from the common caches.
//! Under `--jobs N` the points are pulled off one atomic counter by `N`
//! scoped threads; candidate evaluation *inside* a point is kept
//! sequential (the pool already saturates the machine — nesting the
//! per-candidate threads of `hlts-core` would only oversubscribe it).
//!
//! Determinism: each point's result is bit-identical however computed
//! (the PR 1–3 equivalences), completed results are merged into the
//! Pareto archive **in point-ID order** after the pool drains, and
//! journal replay restores floats bit-exactly — so the final front is
//! byte-identical for any worker count, with or without resume.

use std::io::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use hlts_check::faults;
use hlts_core::baselines;
use hlts_core::{
    CoreError, DeltaEvaluator, DesignState, EvalMode, EvalStats, IntegratedSynthesizer,
    MergeTrace, ProgressEvent, ProgressSink, ReplayStats, RunCtl, SynthesisResult,
    TestabilityCacheStats, TxnStats,
};
use hlts_dfg::Dfg;

use crate::journal::{render_header, render_point, render_trace, JournalScan};
use crate::pareto::{Objectives, ParetoArchive, PointResult, TestObjectives};
use crate::spec::{Flow, PointParams, SweepPoint, SweepSpec, TcovSweep};
use crate::DseError;

/// How a sweep is executed.
#[derive(Debug, Clone, Default)]
pub struct ExploreConfig {
    /// Worker threads (`0` and `1` both mean the in-thread sequential
    /// loop; capped at the number of pending points). Without the
    /// `parallel` cargo feature any value degrades to sequential.
    pub jobs: usize,
    /// Append each completed point to this checkpoint journal (header
    /// written first when the file is empty or new).
    pub journal: Option<std::path::PathBuf>,
    /// Previously completed results to replay instead of recomputing —
    /// normally [`crate::journal::load`]ed via [`load_journal`]. Every
    /// entry must match its spec point (ID and parameters).
    pub resume: Vec<PointResult>,
    /// How many malformed journal lines were skipped while producing
    /// [`ExploreConfig::resume`] ([`JournalScan::malformed`]); carried
    /// into [`ExploreStats::journal_malformed`] so reports surface the
    /// data loss.
    pub resume_malformed: usize,
    /// Whether the resume journal ended in a torn final line that was
    /// dropped ([`JournalScan::torn_tail`]); carried into
    /// [`ExploreStats::journal_torn_tail`].
    pub resume_torn_tail: usize,
    /// Accepted-merge traces recovered from the resume journal
    /// ([`JournalScan::traces`]): on a warm-start sweep they pre-seed
    /// the trace pool, so points computed after a resume can still
    /// replay their already-journalled neighbours.
    pub resume_traces: Vec<(usize, MergeTrace)>,
}

/// Aggregate counters of one [`explore`] call: point accounting,
/// timing, and the shared caches' hit statistics summed over the
/// per-behavior contexts. Like the underlying engine counters these
/// are diagnostics — cache hit counts race benignly under parallel
/// execution and are excluded from any equality the front depends on.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Points in the sweep.
    pub points_total: usize,
    /// Points actually synthesized by this call.
    pub points_computed: usize,
    /// Points replayed from [`ExploreConfig::resume`].
    pub points_resumed: usize,
    /// Points that failed (synthesis error, journal append error, or a
    /// worker panic/kill) — listed in [`ExploreOutcome::failures`].
    pub points_failed: usize,
    /// Points abandoned because the run's
    /// [`CancelToken`](hlts_core::CancelToken) fired — also listed in
    /// [`ExploreOutcome::failures`], but accounted separately: a
    /// cancelled point is the *user's* doing, not the engine's.
    pub points_cancelled: usize,
    /// Malformed journal lines skipped while loading the resume
    /// checkpoint (from [`ExploreConfig::resume_malformed`]).
    pub journal_malformed: usize,
    /// Torn final journal lines dropped while loading the resume
    /// checkpoint (from [`ExploreConfig::resume_torn_tail`]; `0` or
    /// `1` — an interrupted append leaves at most one).
    pub journal_torn_tail: usize,
    /// Committed merges obtained by replaying a neighbour's trace,
    /// summed over the points *this call* synthesized (resumed points
    /// did no work here and contribute nothing). Zero unless the sweep
    /// ran with warm starts ([`SweepSpec::warm_start`]).
    pub merges_replayed: usize,
    /// Committed merges the scratch loop computed on the points this
    /// call synthesized. On a cold sweep both counters stay zero — the
    /// classic loop does not account its merges here.
    pub merges_recomputed: usize,
    /// Effective worker-thread count used.
    pub workers: usize,
    /// Wall-clock milliseconds of the whole exploration.
    pub wall_millis: u64,
    /// Sum of the computed points' individual wall times (≥
    /// `wall_millis` under parallel execution — the parallelism
    /// payoff is their ratio).
    pub compute_millis: u64,
    /// Shared testability-engine counters, summed over behaviors.
    pub testability: TestabilityCacheStats,
    /// Shared (E, H) evaluator counters, summed over behaviors.
    pub eval: EvalStats,
    /// Transaction-layer counters, summed over behaviors.
    pub txn: TxnStats,
}

/// The result of one exploration: every point's outcome plus the
/// Pareto front over all of them.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// All completed point results, in point-ID order.
    pub results: Vec<PointResult>,
    /// The non-dominated subset of `results`, in point-ID order.
    pub front: Vec<PointResult>,
    /// Points that did not complete, in point-ID order. A sweep with
    /// failures still reports the front over everything that finished —
    /// identical to what a clean sweep restricted to those points
    /// yields — so partial results stay usable.
    pub failures: Vec<PointFailure>,
    /// Execution counters.
    pub stats: ExploreStats,
}

/// Why one sweep point produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// The point's stable ID in its sweep.
    pub id: usize,
    /// Human-readable failure description.
    pub message: String,
}

/// Load a checkpoint journal and check it against `spec`: the recorded
/// fingerprint must match and every recorded point must agree with the
/// spec's enumeration. Returns the scan — completed results ready for
/// [`ExploreConfig::resume`] plus the count of malformed lines skipped
/// (see [`JournalScan`]).
///
/// # Errors
///
/// Unreadable journals, garbled headers, fingerprint mismatch, points
/// that do not belong to `spec`. Malformed point lines are *not*
/// errors: they are skipped and counted, and the lost points simply
/// recompute.
pub fn load_journal(path: &std::path::Path, spec: &SweepSpec) -> Result<JournalScan, DseError> {
    let scan = crate::journal::load(path)?;
    let expected = spec.fingerprint()?;
    if scan.fingerprint != expected {
        return Err(DseError::Journal(format!(
            "journal {} was written for a different sweep \
             (spec {:016x}, expected {expected:016x})",
            path.display(),
            scan.fingerprint,
        )));
    }
    check_resume(&spec.points()?, &scan.points)?;
    Ok(scan)
}

fn check_resume(points: &[SweepPoint], resume: &[PointResult]) -> Result<(), DseError> {
    for r in resume {
        let point = points.get(r.id).ok_or_else(|| {
            DseError::Journal(format!("resumed point {} is outside the sweep", r.id))
        })?;
        if point.params != r.params {
            return Err(DseError::Journal(format!(
                "resumed point {} ran with `{}` but the sweep specifies `{}`",
                r.id,
                r.params.key(),
                point.params.key()
            )));
        }
    }
    Ok(())
}

/// Penalty added to the parameter-space distance when a candidate
/// neighbour ran with a different shortlist depth `k`: a different `k`
/// chunks the candidate list differently, so its trace diverges almost
/// immediately — any same-`k` neighbour, however far in (α, β), beats
/// every different-`k` one.
const K_MISMATCH_PENALTY: f64 = 1.0e9;

/// Choose the warm-start seed neighbour for `target` among `completed`
/// `(point id, params)` pairs: the nearest eligible point by
/// `|Δα| + |Δβ|` (plus [`K_MISMATCH_PENALTY`] when `k` differs), ties
/// broken toward the smaller id. Eligible means same bench, same bit
/// width, and the integrated flow on both sides — baseline flows
/// commit no merges, so they neither produce nor consume traces.
///
/// This is a **pure function of the set**: the result is independent
/// of the slice's order (the minimum is taken under a total order with
/// the id as final tie-break), so whichever completion order a worker
/// pool produced the same completed set through, the same seed is
/// chosen. The choice only ever shifts *work* between replay and
/// scratch synthesis — never results — but determinism here keeps the
/// replayed/recomputed accounting reproducible at `--jobs 1`.
#[must_use]
pub fn select_seed(completed: &[(usize, &PointParams)], target: &PointParams) -> Option<usize> {
    if target.flow != Flow::Ours {
        return None;
    }
    completed
        .iter()
        .filter(|(_, p)| {
            p.flow == Flow::Ours && p.bench == target.bench && p.bits == target.bits
        })
        .map(|(id, p)| {
            let mut dist = (p.alpha - target.alpha).abs() + (p.beta - target.beta).abs();
            if p.k != target.k {
                dist += K_MISMATCH_PENALTY;
            }
            (dist, *id)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
        .map(|(_, id)| id)
}

/// Shared warm-start state of one exploration: every completed
/// integrated point's accepted-merge trace, indexed by point id. The
/// lock is held only to snapshot the completed set or deposit one
/// trace — never across a synthesis.
struct WarmCtx<'a> {
    points: &'a [SweepPoint],
    traces: Mutex<Vec<Option<Arc<MergeTrace>>>>,
}

impl WarmCtx<'_> {
    /// Snapshot the completed set and pick `target`'s seed trace.
    fn seed_for(&self, target: &PointParams) -> Option<Arc<MergeTrace>> {
        let traces = lock_recover(&self.traces);
        let completed: Vec<(usize, &PointParams)> = traces
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(id, _)| (id, &self.points[id].params))
            .collect();
        let seed = select_seed(&completed, target)?;
        traces[seed].clone()
    }

    fn deposit(&self, id: usize, trace: MergeTrace) {
        lock_recover(&self.traces)[id] = Some(Arc::new(trace));
    }
}

/// One behavior's shared synthesis context.
struct BenchCtx<'a> {
    dfg: &'a Dfg,
    base: DesignState,
    evaluator: DeltaEvaluator,
}

fn synthesize(
    point: &SweepPoint,
    ctx: &BenchCtx<'_>,
    warm: Option<&WarmCtx<'_>>,
    ctl: &RunCtl<'_>,
) -> Result<(SynthesisResult, Option<(MergeTrace, ReplayStats)>), DseError> {
    let params = point.params.synthesis_params();
    // Only the iterative flows can observe mid-point cancellation; the
    // one-shot constructive baselines finish in a single step anyway.
    let run = match (point.params.flow, warm) {
        (Flow::Ours, Some(w)) => {
            let seed = w.seed_for(&point.params);
            return IntegratedSynthesizer::new(params)
                .run_on_warm(
                    &ctx.base,
                    EvalMode::Sequential,
                    &ctx.evaluator,
                    ctl,
                    seed.as_deref(),
                )
                .map(|warm_run| (warm_run.result, Some((warm_run.trace, warm_run.replay))))
                .map_err(DseError::Core);
        }
        (Flow::Ours, None) => IntegratedSynthesizer::new(params).run_on_ctl(
            &ctx.base,
            EvalMode::Sequential,
            &ctx.evaluator,
            ctl,
        ),
        (Flow::Camad, _) => baselines::camad_ctl(ctx.dfg, &params, ctl),
        (Flow::Approach1, _) => baselines::approach1(ctx.dfg, &params),
        (Flow::Approach2, _) => baselines::approach2(ctx.dfg, &params),
    };
    run.map(|r| (r, None)).map_err(DseError::Core)
}

/// Elaborate a completed point to gates and grade its fault coverage.
/// Per-point grading runs with `jobs = 1` — the sweep pool is already
/// the parallelism; nesting tcov's fault partitions would oversubscribe
/// it (the report is jobs-invariant, so this is purely a scheduling
/// choice).
fn grade_point(
    point: &SweepPoint,
    run: &SynthesisResult,
    tcov: &TcovSweep,
    ctl: &RunCtl<'_>,
) -> Result<TestObjectives, DseError> {
    let cfg = hlts_tcov::TcovConfig::for_schedule(run.schedule.num_steps(), tcov.sample(), 1);
    let report = hlts_tcov::grade_design(
        &run.dfg,
        &run.schedule,
        &run.allocation,
        point.params.bits,
        &cfg,
        ctl,
    )
    .map_err(|e| match e {
        hlts_tcov::TcovError::Cancelled => DseError::Core(CoreError::Cancelled),
        other => DseError::Coverage(other.to_string()),
    })?;
    Ok(TestObjectives {
        coverage: report.coverage(),
        test_cycles: report.test_cycles,
    })
}

fn run_point(
    point: &SweepPoint,
    ctx: &BenchCtx<'_>,
    tcov: Option<TcovSweep>,
    warm: Option<&WarmCtx<'_>>,
    ctl: &RunCtl<'_>,
) -> Result<(PointResult, Option<String>), DseError> {
    let t0 = Instant::now();
    let (run, captured) = synthesize(point, ctx, warm, ctl)?;
    let test = tcov
        .map(|t| grade_point(point, &run, &t, ctl))
        .transpose()?;
    // On a warm sweep every point carries the accounting pair (baseline
    // flows commit no merges: (0, 0)), keeping the journal schema
    // uniform; the trace line exists only for the integrated flow.
    let replay = match (&captured, warm) {
        (Some((_, stats)), _) => Some((stats.replayed, stats.recomputed)),
        (None, Some(_)) => Some((0, 0)),
        (None, None) => None,
    };
    let trace_line = captured.as_ref().and_then(|(trace, _)| {
        if let Some(w) = warm {
            // The pool feeds in-process neighbours and needs no
            // encoding; the journal line is rendered separately (and
            // skipped in the astronomically unlikely case of an
            // unencodable operand symbol — traces are an optimization).
            w.deposit(point.id, trace.clone());
        }
        render_trace(point.id, trace)
    });
    let m = &run.metrics;
    Ok((
        PointResult {
            id: point.id,
            params: point.params.clone(),
            objectives: Objectives {
                execution_time: m.execution_time,
                hardware: m.hardware.total(),
                avg_controllability: m.avg_controllability,
                avg_observability: m.avg_observability,
                co_depth: m.co_depth,
                test,
            },
            modules: m.num_modules,
            registers: m.num_registers,
            muxes: m.mux_count,
            millis: t0.elapsed().as_millis() as u64,
            resumed: false,
            replay,
        },
        trace_line,
    ))
}

/// A completed slot: the worker pool writes these, the merge loop
/// drains them in ID order.
type Slot = Option<Result<PointResult, DseError>>;

/// Lock a mutex, recovering from poisoning. The data guarded here
/// (the journal sink, the per-point result slots) is consistent at
/// every await-free store — a panicking worker can only have left a
/// whole append or a whole slot write behind — so the sane response to
/// a poisoned lock is to keep draining the sweep, not to cascade the
/// panic to every surviving worker.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a panic payload (the two shapes `panic!`
/// produces, else a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

struct Sink {
    file: Option<std::fs::File>,
}

impl Sink {
    fn open(cfg: &ExploreConfig, fingerprint: u64) -> Result<Sink, DseError> {
        let Some(path) = &cfg.journal else {
            return Ok(Sink { file: None });
        };
        let io_err = |e: std::io::Error| DseError::Journal(format!("{}: {e}", path.display()));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        if len == 0 {
            let mut file = file;
            file.write_all(render_header(fingerprint).as_bytes())
                .map_err(io_err)?;
            return Ok(Sink { file: Some(file) });
        }
        // A killed run can leave a torn final line (no trailing
        // newline). Appending after it would corrupt the next line, so
        // drop the tail back to the last completed line first — the
        // exact bytes a resuming [`crate::journal::parse`] ignored.
        let content = std::fs::read(path).map_err(io_err)?;
        if let Some(last_nl) = content.iter().rposition(|&b| b == b'\n') {
            if last_nl + 1 != content.len() {
                file.set_len((last_nl + 1) as u64).map_err(io_err)?;
            }
        }
        Ok(Sink { file: Some(file) })
    }

    /// Append one completed point — and, on warm sweeps, its trace
    /// line immediately *before* it — as a single write+flush, so an
    /// interrupted append can only ever leave a torn tail, never a
    /// trace/point pair with one half missing an earlier line.
    fn append(&mut self, r: &PointResult, trace: Option<&str>) -> Result<(), DseError> {
        if let Some(f) = &mut self.file {
            // Fault-injection sites (inert unless the `test-faults`
            // feature is on AND a plan armed them): a panic while the
            // sink lock is held — poisoning it for every other worker —
            // and a garbled line standing in for mid-file disk
            // corruption.
            assert!(
                !faults::fire(faults::sites::DSE_SINK_PANIC),
                "injected fault: journal sink panicked mid-append"
            );
            let line = if faults::fire(faults::sites::DSE_SINK_CORRUPT) {
                format!("point {} <<injected corruption>>\n", r.id)
            } else {
                format!("{}{}", trace.unwrap_or_default(), render_point(r))
            };
            f.write_all(line.as_bytes())
                .and_then(|()| f.flush())
                .map_err(|e| DseError::Journal(format!("journal write failed: {e}")))?;
        }
        Ok(())
    }
}

/// Shared progress bookkeeping of one exploration: the caller's sink
/// plus the completed-point counter the [`ProgressEvent::PointDone`]
/// events carry. Counter updates race benignly across workers — the
/// (id, total) payload is exact, `completed` is a monotone snapshot.
struct PointProgress<'a> {
    sink: &'a dyn ProgressSink,
    completed: std::sync::atomic::AtomicUsize,
    total: usize,
}

impl PointProgress<'_> {
    fn point_done(&self, id: usize) {
        let completed = 1 + self
            .completed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.sink.event(ProgressEvent::PointDone {
            id,
            completed,
            total: self.total,
        });
    }
}

/// Run one point and journal its result, catching panics: a panicking
/// point (or an injected fault) becomes a [`DseError::Worker`] for that
/// point alone instead of tearing down the pool.
fn run_point_guarded(
    point: &SweepPoint,
    ctx: &BenchCtx<'_>,
    tcov: Option<TcovSweep>,
    warm: Option<&WarmCtx<'_>>,
    sink: &Mutex<Sink>,
    ctl: &RunCtl<'_>,
    progress: &PointProgress<'_>,
) -> Result<PointResult, DseError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (r, trace_line) = run_point(point, ctx, tcov, warm, ctl)?;
        // A journal failure must not lose the computed result silently;
        // surface it as the point's outcome.
        lock_recover(sink).append(&r, trace_line.as_deref())?;
        progress.point_done(point.id);
        Ok(r)
    }));
    outcome.unwrap_or_else(|payload| {
        Err(DseError::Worker(format!(
            "point {} panicked: {}",
            point.id,
            panic_message(payload.as_ref())
        )))
    })
}

/// Run `spec` under `cfg`: synthesize every point not covered by
/// [`ExploreConfig::resume`], journal completions as they happen, and
/// fold everything into the Pareto front.
///
/// Per-point trouble — a synthesis error, a journal append failure, a
/// panicking worker — does **not** abort the sweep: the point lands in
/// [`ExploreOutcome::failures`], the pool keeps draining, and the front
/// is computed over everything that completed (bit-identical to a
/// clean sweep restricted to those points).
///
/// # Errors
///
/// Sweep-level problems only: invalid specs, resume entries that
/// contradict the spec, and failure to open the checkpoint journal.
pub fn explore(spec: &SweepSpec, cfg: &ExploreConfig) -> Result<ExploreOutcome, DseError> {
    explore_ctl(spec, cfg, &RunCtl::none())
}

/// [`explore`] under an external [`RunCtl`]: cancellation is observed
/// at **two** granularities — workers stop claiming new points, and
/// the point currently synthesizing stops at its next iteration
/// boundary (see [`IntegratedSynthesizer::run_on_ctl`]). Every point
/// finished before the token fired is already journaled (the sink
/// flushes per append), so a cancelled sweep's checkpoint resumes
/// exactly where it stopped; the outcome reports the partial front
/// over the finished points plus [`ExploreStats::points_cancelled`].
/// The sink receives one [`ProgressEvent::PointDone`] per completed
/// point. An unfired token leaves the outcome bit-identical to
/// [`explore`].
///
/// # Errors
///
/// As [`explore`] — cancellation is **not** an error at this level;
/// it degrades the outcome like a per-point failure does.
pub fn explore_ctl(
    spec: &SweepSpec,
    cfg: &ExploreConfig,
    ctl: &RunCtl<'_>,
) -> Result<ExploreOutcome, DseError> {
    let t0 = Instant::now();
    let points = spec.points()?;
    let fingerprint = spec.fingerprint()?;
    check_resume(&points, &cfg.resume)?;

    let mut slots: Vec<Slot> = (0..points.len()).map(|_| None).collect();
    for r in &cfg.resume {
        let mut replay = r.clone();
        replay.resumed = true;
        replay.millis = 0;
        slots[r.id] = Some(Ok(replay));
    }

    let contexts: Vec<BenchCtx<'_>> = spec
        .benches
        .iter()
        .map(|(_, dfg)| {
            Ok(BenchCtx {
                dfg,
                base: DesignState::initial(dfg).map_err(DseError::Core)?,
                evaluator: DeltaEvaluator::new(),
            })
        })
        .collect::<Result<_, DseError>>()?;
    let ctx_index: Vec<usize> = points
        .iter()
        .map(|p| {
            spec.benches
                .iter()
                .position(|(n, _)| *n == p.params.bench)
                .ok_or_else(|| {
                    DseError::Spec(format!(
                        "point {} names unknown bench `{}`",
                        p.id, p.params.bench
                    ))
                })
        })
        .collect::<Result<_, DseError>>()?;

    let pending: Vec<&SweepPoint> = points.iter().filter(|p| slots[p.id].is_none()).collect();
    // The warm-start trace pool, pre-seeded with the resume journal's
    // traces so a resumed sweep replays its own past as readily as a
    // fresh one replays its in-flight neighbours.
    let warm = spec.warm_start.then(|| {
        let mut traces: Vec<Option<Arc<MergeTrace>>> = vec![None; points.len()];
        for (id, trace) in &cfg.resume_traces {
            if let Some(slot) = traces.get_mut(*id) {
                *slot = Some(Arc::new(trace.clone()));
            }
        }
        WarmCtx {
            points: &points,
            traces: Mutex::new(traces),
        }
    });
    let sink = Mutex::new(Sink::open(cfg, fingerprint)?);
    let workers = effective_workers(cfg.jobs, pending.len());
    let progress = PointProgress {
        sink: ctl.progress,
        completed: std::sync::atomic::AtomicUsize::new(cfg.resume.len()),
        total: points.len(),
    };

    if workers <= 1 {
        for point in &pending {
            if ctl.cancel.is_cancelled() {
                break; // unclaimed slots stay None → cancelled below
            }
            if faults::fire(faults::sites::DSE_WORKER_KILL) {
                slots[point.id] = Some(Err(DseError::Worker(format!(
                    "worker killed by fault injection at point {} (point abandoned)",
                    point.id
                ))));
                continue;
            }
            slots[point.id] = Some(run_point_guarded(
                point,
                &contexts[ctx_index[point.id]],
                spec.tcov,
                warm.as_ref(),
                &sink,
                ctl,
                &progress,
            ));
        }
    } else {
        run_pool(
            &pending,
            &contexts,
            &ctx_index,
            spec.tcov,
            warm.as_ref(),
            &sink,
            &mut slots,
            workers,
            ctl,
            &progress,
        );
    }

    let cancelled = ctl.cancel.is_cancelled();
    let mut results = Vec::with_capacity(points.len());
    let mut failures = Vec::new();
    let mut points_cancelled = 0usize;
    for (id, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => results.push(r),
            Some(Err(DseError::Core(CoreError::Cancelled))) => {
                points_cancelled += 1;
                failures.push(PointFailure {
                    id,
                    message: "cancelled mid-synthesis (stopped at an iteration boundary)".into(),
                });
            }
            Some(Err(e)) => failures.push(PointFailure {
                id,
                message: e.to_string(),
            }),
            None if cancelled => {
                points_cancelled += 1;
                failures.push(PointFailure {
                    id,
                    message: "cancelled before start".into(),
                });
            }
            None => failures.push(PointFailure {
                id,
                message: "never scheduled (the worker pool died before reaching it)".into(),
            }),
        }
    }

    // The order-independent merge: completion order varied, ID order
    // does not.
    let mut archive = ParetoArchive::new();
    for r in &results {
        archive.insert(r.clone());
    }

    let points_resumed = cfg.resume.len();
    let mut stats = ExploreStats {
        points_total: points.len(),
        points_computed: results.len() - points_resumed,
        points_resumed,
        points_failed: failures.len() - points_cancelled,
        points_cancelled,
        journal_malformed: cfg.resume_malformed,
        journal_torn_tail: cfg.resume_torn_tail,
        workers,
        wall_millis: t0.elapsed().as_millis() as u64,
        compute_millis: results.iter().map(|r| r.millis).sum(),
        ..ExploreStats::default()
    };
    for r in results.iter().filter(|r| !r.resumed) {
        if let Some((rep, rec)) = r.replay {
            stats.merges_replayed += rep;
            stats.merges_recomputed += rec;
        }
    }
    for ctx in &contexts {
        add_testability(&mut stats.testability, ctx.base.testability_engine().stats());
        add_eval(&mut stats.eval, ctx.evaluator.stats());
        add_txn(&mut stats.txn, ctx.base.txn_stats());
    }

    Ok(ExploreOutcome {
        results,
        front: archive.into_entries(),
        failures,
        stats,
    })
}

#[cfg(feature = "parallel")]
fn effective_workers(jobs: usize, pending: usize) -> usize {
    jobs.clamp(1, pending.max(1))
}

#[cfg(not(feature = "parallel"))]
fn effective_workers(_jobs: usize, _pending: usize) -> usize {
    1
}

/// Drain `pending` with `workers` scoped threads pulling point indices
/// off one shared counter. Slots are disjoint per point, so each is
/// its own mutex; the journal sink serializes appends.
///
/// Per-point panics are contained by [`run_point_guarded`]; the
/// injected worker-kill fault terminates one thread after it claimed a
/// point (the claimed point is marked failed, every later point stays
/// on the counter for the surviving workers).
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)] // internal: mirrors explore_ctl's locals
fn run_pool(
    pending: &[&SweepPoint],
    contexts: &[BenchCtx<'_>],
    ctx_index: &[usize],
    tcov: Option<TcovSweep>,
    warm: Option<&WarmCtx<'_>>,
    sink: &Mutex<Sink>,
    slots: &mut [Slot],
    workers: usize,
    ctl: &RunCtl<'_>,
    progress: &PointProgress<'_>,
) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let out: Vec<Mutex<Slot>> = pending.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    if ctl.cancel.is_cancelled() {
                        break; // stop claiming; unclaimed slots stay None
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = pending.get(i) else { break };
                    if faults::fire(faults::sites::DSE_WORKER_KILL) {
                        *lock_recover(&out[i]) = Some(Err(DseError::Worker(format!(
                            "worker killed by fault injection at point {} (point abandoned)",
                            point.id
                        ))));
                        break; // this worker dies; the others drain on
                    }
                    let done = run_point_guarded(
                        point,
                        &contexts[ctx_index[point.id]],
                        tcov,
                        warm,
                        sink,
                        ctl,
                        progress,
                    );
                    *lock_recover(&out[i]) = Some(done);
                })
            })
            .collect();
        for h in handles {
            // `run_point_guarded` contains per-point panics, so a join
            // error is a panic outside any point's scope — nothing to
            // attribute it to; propagate instead of swallowing it.
            if let Err(payload) = h.join() {
                resume_unwind(payload);
            }
        }
    });
    for (point, slot) in pending.iter().zip(out) {
        slots[point.id] = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
    }
}

#[cfg(not(feature = "parallel"))]
#[allow(clippy::too_many_arguments)]
fn run_pool(
    _pending: &[&SweepPoint],
    _contexts: &[BenchCtx<'_>],
    _ctx_index: &[usize],
    _tcov: Option<TcovSweep>,
    _warm: Option<&WarmCtx<'_>>,
    _sink: &Mutex<Sink>,
    _slots: &mut [Slot],
    _workers: usize,
    _ctl: &RunCtl<'_>,
    _progress: &PointProgress<'_>,
) {
    unreachable!("effective_workers is 1 without the `parallel` feature")
}

fn add_testability(into: &mut TestabilityCacheStats, s: TestabilityCacheStats) {
    into.hits += s.hits;
    into.misses += s.misses;
    into.incremental += s.incremental;
    into.full += s.full;
    into.updates_propagated += s.updates_propagated;
}

fn add_eval(into: &mut EvalStats, s: EvalStats) {
    into.state_hits += s.state_hits;
    into.state_misses += s.state_misses;
    into.critical_path.hits += s.critical_path.hits;
    into.critical_path.misses += s.critical_path.misses;
    into.critical_path.chain_fast_path += s.critical_path.chain_fast_path;
    into.critical_path.full_reachability += s.critical_path.full_reachability;
}

fn add_txn(into: &mut TxnStats, s: TxnStats) {
    into.begun += s.begun;
    into.committed += s.committed;
    into.rolled_back += s.rolled_back;
    into.ops_recorded += s.ops_recorded;
    into.ops_replayed += s.ops_replayed;
}
