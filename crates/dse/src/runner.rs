//! The exploration runner: a worker pool over sweep points with shared
//! per-behavior caches and an order-independent Pareto merge.
//!
//! Every behavior in the sweep gets **one** base [`DesignState`] and
//! **one** [`DeltaEvaluator`]; each point forks the base (an
//! `Arc`-sharing copy, not a deep clone) and runs Algorithm 1 through
//! [`IntegratedSynthesizer::run_on`], so the testability fixpoints,
//! critical-path extractions and (E, H) measurements that different
//! parameter points happen to share resolve from the common caches.
//! Under `--jobs N` the points are pulled off one atomic counter by `N`
//! scoped threads; candidate evaluation *inside* a point is kept
//! sequential (the pool already saturates the machine — nesting the
//! per-candidate threads of `hlts-core` would only oversubscribe it).
//!
//! Determinism: each point's result is bit-identical however computed
//! (the PR 1–3 equivalences), completed results are merged into the
//! Pareto archive **in point-ID order** after the pool drains, and
//! journal replay restores floats bit-exactly — so the final front is
//! byte-identical for any worker count, with or without resume.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use hlts_core::baselines;
use hlts_core::{
    DeltaEvaluator, DesignState, EvalMode, EvalStats, IntegratedSynthesizer, SynthesisResult,
    TestabilityCacheStats, TxnStats,
};
use hlts_dfg::Dfg;

use crate::journal::{render_header, render_point};
use crate::pareto::{Objectives, ParetoArchive, PointResult};
use crate::spec::{Flow, SweepPoint, SweepSpec};
use crate::DseError;

/// How a sweep is executed.
#[derive(Debug, Clone, Default)]
pub struct ExploreConfig {
    /// Worker threads (`0` and `1` both mean the in-thread sequential
    /// loop; capped at the number of pending points). Without the
    /// `parallel` cargo feature any value degrades to sequential.
    pub jobs: usize,
    /// Append each completed point to this checkpoint journal (header
    /// written first when the file is empty or new).
    pub journal: Option<std::path::PathBuf>,
    /// Previously completed results to replay instead of recomputing —
    /// normally [`crate::journal::load`]ed via [`load_journal`]. Every
    /// entry must match its spec point (ID and parameters).
    pub resume: Vec<PointResult>,
}

/// Aggregate counters of one [`explore`] call: point accounting,
/// timing, and the shared caches' hit statistics summed over the
/// per-behavior contexts. Like the underlying engine counters these
/// are diagnostics — cache hit counts race benignly under parallel
/// execution and are excluded from any equality the front depends on.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Points in the sweep.
    pub points_total: usize,
    /// Points actually synthesized by this call.
    pub points_computed: usize,
    /// Points replayed from [`ExploreConfig::resume`].
    pub points_resumed: usize,
    /// Effective worker-thread count used.
    pub workers: usize,
    /// Wall-clock milliseconds of the whole exploration.
    pub wall_millis: u64,
    /// Sum of the computed points' individual wall times (≥
    /// `wall_millis` under parallel execution — the parallelism
    /// payoff is their ratio).
    pub compute_millis: u64,
    /// Shared testability-engine counters, summed over behaviors.
    pub testability: TestabilityCacheStats,
    /// Shared (E, H) evaluator counters, summed over behaviors.
    pub eval: EvalStats,
    /// Transaction-layer counters, summed over behaviors.
    pub txn: TxnStats,
}

/// The result of one exploration: every point's outcome plus the
/// Pareto front over all of them.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// All point results, in point-ID order.
    pub results: Vec<PointResult>,
    /// The non-dominated subset, in point-ID order.
    pub front: Vec<PointResult>,
    /// Execution counters.
    pub stats: ExploreStats,
}

/// Load a checkpoint journal and check it against `spec`: the recorded
/// fingerprint must match and every recorded point must agree with the
/// spec's enumeration. Returns the completed results ready for
/// [`ExploreConfig::resume`].
///
/// # Errors
///
/// Unreadable/garbled journals, fingerprint mismatch, points that do
/// not belong to `spec`.
pub fn load_journal(
    path: &std::path::Path,
    spec: &SweepSpec,
) -> Result<Vec<PointResult>, DseError> {
    let (fingerprint, results) = crate::journal::load(path)?;
    let expected = spec.fingerprint()?;
    if fingerprint != expected {
        return Err(DseError::Journal(format!(
            "journal {} was written for a different sweep \
             (spec {fingerprint:016x}, expected {expected:016x})",
            path.display()
        )));
    }
    check_resume(&spec.points()?, &results)?;
    Ok(results)
}

fn check_resume(points: &[SweepPoint], resume: &[PointResult]) -> Result<(), DseError> {
    for r in resume {
        let point = points.get(r.id).ok_or_else(|| {
            DseError::Journal(format!("resumed point {} is outside the sweep", r.id))
        })?;
        if point.params != r.params {
            return Err(DseError::Journal(format!(
                "resumed point {} ran with `{}` but the sweep specifies `{}`",
                r.id,
                r.params.key(),
                point.params.key()
            )));
        }
    }
    Ok(())
}

/// One behavior's shared synthesis context.
struct BenchCtx<'a> {
    dfg: &'a Dfg,
    base: DesignState,
    evaluator: DeltaEvaluator,
}

fn synthesize(point: &SweepPoint, ctx: &BenchCtx<'_>) -> Result<SynthesisResult, DseError> {
    let params = point.params.synthesis_params();
    let run = match point.params.flow {
        Flow::Ours => IntegratedSynthesizer::new(params).run_on(
            &ctx.base,
            EvalMode::Sequential,
            &ctx.evaluator,
        ),
        Flow::Camad => baselines::camad(ctx.dfg, &params),
        Flow::Approach1 => baselines::approach1(ctx.dfg, &params),
        Flow::Approach2 => baselines::approach2(ctx.dfg, &params),
    };
    run.map_err(DseError::Core)
}

fn run_point(point: &SweepPoint, ctx: &BenchCtx<'_>) -> Result<PointResult, DseError> {
    let t0 = Instant::now();
    let run = synthesize(point, ctx)?;
    let m = &run.metrics;
    Ok(PointResult {
        id: point.id,
        params: point.params.clone(),
        objectives: Objectives {
            execution_time: m.execution_time,
            hardware: m.hardware.total(),
            avg_controllability: m.avg_controllability,
            avg_observability: m.avg_observability,
            co_depth: m.co_depth,
        },
        modules: m.num_modules,
        registers: m.num_registers,
        muxes: m.mux_count,
        millis: t0.elapsed().as_millis() as u64,
        resumed: false,
    })
}

/// A completed slot: the worker pool writes these, the merge loop
/// drains them in ID order.
type Slot = Option<Result<PointResult, DseError>>;

struct Sink {
    file: Option<std::fs::File>,
}

impl Sink {
    fn open(cfg: &ExploreConfig, fingerprint: u64) -> Result<Sink, DseError> {
        let Some(path) = &cfg.journal else {
            return Ok(Sink { file: None });
        };
        let io_err = |e: std::io::Error| DseError::Journal(format!("{}: {e}", path.display()));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        if len == 0 {
            let mut file = file;
            file.write_all(render_header(fingerprint).as_bytes())
                .map_err(io_err)?;
            return Ok(Sink { file: Some(file) });
        }
        // A killed run can leave a torn final line (no trailing
        // newline). Appending after it would corrupt the next line, so
        // drop the tail back to the last completed line first — the
        // exact bytes a resuming [`crate::journal::parse`] ignored.
        let content = std::fs::read(path).map_err(io_err)?;
        if let Some(last_nl) = content.iter().rposition(|&b| b == b'\n') {
            if last_nl + 1 != content.len() {
                file.set_len((last_nl + 1) as u64).map_err(io_err)?;
            }
        }
        Ok(Sink { file: Some(file) })
    }

    fn append(&mut self, r: &PointResult) -> Result<(), DseError> {
        if let Some(f) = &mut self.file {
            f.write_all(render_point(r).as_bytes())
                .and_then(|()| f.flush())
                .map_err(|e| DseError::Journal(format!("journal write failed: {e}")))?;
        }
        Ok(())
    }
}

/// Run `spec` under `cfg`: synthesize every point not covered by
/// [`ExploreConfig::resume`], journal completions as they happen, and
/// fold everything into the Pareto front.
///
/// # Errors
///
/// Invalid specs, resume entries that contradict the spec, journal I/O
/// failures, and synthesis errors (reported for the smallest failing
/// point ID).
///
/// # Panics
///
/// Panics if a worker thread panics (propagated) or an internal mutex
/// is poisoned by such a panic.
pub fn explore(spec: &SweepSpec, cfg: &ExploreConfig) -> Result<ExploreOutcome, DseError> {
    let t0 = Instant::now();
    let points = spec.points()?;
    let fingerprint = spec.fingerprint()?;
    check_resume(&points, &cfg.resume)?;

    let mut slots: Vec<Slot> = (0..points.len()).map(|_| None).collect();
    for r in &cfg.resume {
        let mut replay = r.clone();
        replay.resumed = true;
        replay.millis = 0;
        slots[r.id] = Some(Ok(replay));
    }

    let contexts: Vec<BenchCtx<'_>> = spec
        .benches
        .iter()
        .map(|(_, dfg)| {
            Ok(BenchCtx {
                dfg,
                base: DesignState::initial(dfg).map_err(DseError::Core)?,
                evaluator: DeltaEvaluator::new(),
            })
        })
        .collect::<Result<_, DseError>>()?;
    let ctx_index: Vec<usize> = points
        .iter()
        .map(|p| {
            spec.benches
                .iter()
                .position(|(n, _)| *n == p.params.bench)
                .expect("points() validated bench names")
        })
        .collect();

    let pending: Vec<&SweepPoint> = points.iter().filter(|p| slots[p.id].is_none()).collect();
    let sink = Mutex::new(Sink::open(cfg, fingerprint)?);
    let workers = effective_workers(cfg.jobs, pending.len());

    if workers <= 1 {
        for point in &pending {
            let done = run_point(point, &contexts[ctx_index[point.id]]);
            if let Ok(r) = &done {
                sink.lock().expect("journal sink poisoned").append(r)?;
            }
            slots[point.id] = Some(done);
        }
    } else {
        run_pool(&pending, &contexts, &ctx_index, &sink, &mut slots, workers);
    }

    let mut results = Vec::with_capacity(points.len());
    for (id, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => results.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("point {id} neither resumed nor scheduled"),
        }
    }

    // The order-independent merge: completion order varied, ID order
    // does not.
    let mut archive = ParetoArchive::new();
    for r in &results {
        archive.insert(r.clone());
    }

    let points_resumed = cfg.resume.len();
    let mut stats = ExploreStats {
        points_total: results.len(),
        points_computed: results.len() - points_resumed,
        points_resumed,
        workers,
        wall_millis: t0.elapsed().as_millis() as u64,
        compute_millis: results.iter().map(|r| r.millis).sum(),
        ..ExploreStats::default()
    };
    for ctx in &contexts {
        add_testability(&mut stats.testability, ctx.base.testability_engine().stats());
        add_eval(&mut stats.eval, ctx.evaluator.stats());
        add_txn(&mut stats.txn, ctx.base.txn_stats());
    }

    Ok(ExploreOutcome {
        results,
        front: archive.into_entries(),
        stats,
    })
}

#[cfg(feature = "parallel")]
fn effective_workers(jobs: usize, pending: usize) -> usize {
    jobs.clamp(1, pending.max(1))
}

#[cfg(not(feature = "parallel"))]
fn effective_workers(_jobs: usize, _pending: usize) -> usize {
    1
}

/// Drain `pending` with `workers` scoped threads pulling point indices
/// off one shared counter. Slots are disjoint per point, so each is
/// its own mutex; the journal sink serializes appends.
#[cfg(feature = "parallel")]
fn run_pool(
    pending: &[&SweepPoint],
    contexts: &[BenchCtx<'_>],
    ctx_index: &[usize],
    sink: &Mutex<Sink>,
    slots: &mut [Slot],
    workers: usize,
) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let out: Vec<Mutex<Slot>> = pending.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = pending.get(i) else { break };
                    let done = run_point(point, &contexts[ctx_index[point.id]]);
                    if let Ok(r) = &done {
                        // A journal failure must not lose the computed
                        // result; surface it through the slot instead.
                        if let Err(e) = sink.lock().expect("journal sink poisoned").append(r) {
                            *out[i].lock().expect("slot poisoned") = Some(Err(e));
                            continue;
                        }
                    }
                    *out[i].lock().expect("slot poisoned") = Some(done);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("explore worker panicked");
        }
    });
    for (point, slot) in pending.iter().zip(out) {
        slots[point.id] = slot.into_inner().expect("slot poisoned");
    }
}

#[cfg(not(feature = "parallel"))]
fn run_pool(
    _pending: &[&SweepPoint],
    _contexts: &[BenchCtx<'_>],
    _ctx_index: &[usize],
    _sink: &Mutex<Sink>,
    _slots: &mut [Slot],
    _workers: usize,
) {
    unreachable!("effective_workers is 1 without the `parallel` feature")
}

fn add_testability(into: &mut TestabilityCacheStats, s: TestabilityCacheStats) {
    into.hits += s.hits;
    into.misses += s.misses;
    into.incremental += s.incremental;
    into.full += s.full;
    into.updates_propagated += s.updates_propagated;
}

fn add_eval(into: &mut EvalStats, s: EvalStats) {
    into.state_hits += s.state_hits;
    into.state_misses += s.state_misses;
    into.critical_path.hits += s.critical_path.hits;
    into.critical_path.misses += s.critical_path.misses;
    into.critical_path.chain_fast_path += s.critical_path.chain_fast_path;
    into.critical_path.full_reachability += s.critical_path.full_reachability;
}

fn add_txn(into: &mut TxnStats, s: TxnStats) {
    into.begun += s.begun;
    into.committed += s.committed;
    into.rolled_back += s.rolled_back;
    into.ops_recorded += s.ops_recorded;
    into.ops_replayed += s.ops_replayed;
}
