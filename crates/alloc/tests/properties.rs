//! Property-based tests for the allocation substrate: register
//! allocators must produce legal, complete groupings; the left-edge
//! count must match the max-live lower bound on loop-free graphs; and
//! merger transformations must preserve binding invariants.

use hlts_alloc::{
    greedy_module_allocation, lee_register_allocation, left_edge_registers, Allocation,
};
use hlts_dfg::{Dfg, DfgBuilder, OpKind};
use hlts_sched::{list_schedule, Lifetimes, ListPriority};
use proptest::prelude::*;

fn build_dfg(spec: &[(u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut vals = vec![b.input("i0"), b.input("i1")];
    for (n, &(k, x, y)) in spec.iter().enumerate() {
        let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Or];
        let kind = kinds[k as usize % kinds.len()];
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let out = b
            .op(&format!("N{n}"), kind, &[a, c], &format!("v{n}"))
            .expect("fresh name");
        vals.push(out);
    }
    let last = *vals.last().expect("nonempty");
    b.mark_output(last);
    b.finish().expect("well-formed")
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

proptest! {
    /// Left-edge covers every register value exactly once, with pairwise
    /// disjoint lifetimes per group, and meets the max-live bound.
    #[test]
    fn left_edge_is_complete_legal_and_tight(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
        let lt = Lifetimes::compute(&d, &s);
        let groups = left_edge_registers(&d, &lt);
        let covered: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, lt.register_values().len());
        for g in &groups {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    prop_assert!(lt.disjoint(a, b));
                }
            }
        }
        // loop-free graphs: greedy-by-birth left edge is optimal
        prop_assert_eq!(groups.len(), lt.max_live());
    }

    /// Lee allocation is legal and complete (it may use more registers
    /// than left-edge in exchange for PI/PO seeding, never fewer than
    /// max-live).
    #[test]
    fn lee_allocation_is_legal(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
        let lt = Lifetimes::compute(&d, &s);
        let groups = lee_register_allocation(&d, &lt);
        let covered: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, lt.register_values().len());
        prop_assert!(groups.len() >= lt.max_live());
        for g in &groups {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    prop_assert!(lt.disjoint(a, b));
                }
            }
        }
    }

    /// Greedy module allocation partitions the ops into kind-homogeneous
    /// step-conflict-free units.
    #[test]
    fn greedy_module_allocation_is_legal(spec in spec_strategy()) {
        let d = build_dfg(&spec);
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).expect("schedulable");
        let groups = greedy_module_allocation(&d, &s);
        let covered: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, d.num_ops());
        for g in &groups {
            for (i, &a) in g.iter().enumerate() {
                prop_assert_eq!(d.op(a).kind(), d.op(g[0]).kind(), "kind-homogeneous");
                for &b in &g[i + 1..] {
                    prop_assert!(s.step_of(a) != s.step_of(b));
                }
            }
        }
        prop_assert!(s.validate_groups(&d, &groups).is_ok());
    }

    /// Random module mergers either succeed (consistent binding) or fail
    /// (unchanged binding); module/register counts only ever shrink.
    #[test]
    fn random_mergers_preserve_binding_invariants(
        spec in spec_strategy(),
        merges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..10),
    ) {
        let d = build_dfg(&spec);
        let mut a = Allocation::one_to_one(&d);
        for (x, y, register) in merges {
            let before_modules = a.num_modules();
            let before_registers = a.num_registers();
            if register {
                let regs: Vec<_> = a.registers().map(|r| r.id()).collect();
                let (ra, rb) = (
                    regs[x as usize % regs.len()],
                    regs[y as usize % regs.len()],
                );
                let _ = a.merge_registers(ra, rb);
            } else {
                let mods: Vec<_> = a.modules().map(|m| m.id()).collect();
                let (ma, mb) = (
                    mods[x as usize % mods.len()],
                    mods[y as usize % mods.len()],
                );
                let _ = a.merge_modules(&d, ma, mb);
            }
            prop_assert!(a.num_modules() <= before_modules);
            prop_assert!(a.num_registers() <= before_registers);
            // every op still has a live module; every register value a
            // live register
            for op in d.ops() {
                prop_assert!(a.module(a.module_of(op.id())).is_some());
            }
            prop_assert!(a.covers(&d));
        }
    }
}
