use std::error::Error;
use std::fmt;

/// Errors produced by binding construction and merger transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// Two modules host operation kinds no shared functional unit can
    /// execute (e.g. a multiplication and an addition).
    IncompatibleModules {
        /// Name of an operation in the first module.
        a: String,
        /// Name of an operation in the second module.
        b: String,
    },
    /// A register merge would put two simultaneously-live values in one
    /// register.
    LifetimeOverlap {
        /// First value's name.
        a: String,
        /// Second value's name.
        b: String,
    },
    /// Two operations bound to one module share a control step.
    StepConflict {
        /// First operation's name.
        a: String,
        /// Second operation's name.
        b: String,
        /// The clashing step.
        step: usize,
    },
    /// An id was out of range or stale (already merged away).
    InvalidId(String),
    /// A value that needs no register (constant/condition) was bound.
    NeedsNoRegister(String),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::IncompatibleModules { a, b } => {
                write!(f, "no shared functional unit can execute `{a}` and `{b}`")
            }
            AllocError::LifetimeOverlap { a, b } => {
                write!(f, "values `{a}` and `{b}` are simultaneously live")
            }
            AllocError::StepConflict { a, b, step } => write!(
                f,
                "operations `{a}` and `{b}` share a module but both occupy step {step}"
            ),
            AllocError::InvalidId(s) => write!(f, "invalid or stale id: {s}"),
            AllocError::NeedsNoRegister(s) => {
                write!(f, "value `{s}` does not occupy a register")
            }
        }
    }
}

impl Error for AllocError {}
