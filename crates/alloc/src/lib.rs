//! # hlts-alloc — data-path allocation substrate
//!
//! Module and register binding for the `hlts` high-level test synthesis
//! system:
//!
//! * [`Allocation`] — the binding state: which operations share a
//!   functional unit ([`Module`]) and which values share a [`Register`];
//!   supports the *merger* transformation that drives the paper's
//!   synthesis algorithm, plus legality checks and the paper's table
//!   rendering;
//! * [`left_edge_registers`] — classic left-edge register allocation and
//!   [`lee_register_allocation`], the PI/PO-seeded variant used by the
//!   paper's Approach 1/2 baselines (Lee et al.'s allocation rule 1);
//! * [`greedy_module_allocation`] — step-wise functional-unit binding for
//!   a fixed schedule (baseline module allocation);
//! * [`connectivity_merge`] — connectivity/closeness-driven merging
//!   without testability consideration, standing in for the CAMAD
//!   synthesis baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod connectivity;
mod error;
mod left_edge;
mod module_alloc;

pub use binding::{
    Allocation, Module, ModuleId, ModuleMergeUndo, Register, RegisterId, RegisterMergeUndo,
};
pub use connectivity::{
    connectivity_merge, module_merge_gain, register_merge_gain, ConnectivityParams,
};
pub use error::AllocError;
pub use left_edge::{lee_register_allocation, left_edge_registers};
pub use module_alloc::greedy_module_allocation;
