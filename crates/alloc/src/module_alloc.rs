//! Baseline module allocation for a fixed schedule.

use std::collections::BTreeMap;

use hlts_dfg::{Dfg, OpId, OpKind};
use hlts_sched::Schedule;

/// First-fit functional-unit binding for a fixed schedule, with
/// kind-homogeneous units.
///
/// Operations of each kind are taken in step order and placed on the
/// first unit of that kind with no occupant in the same step — the
/// left-edge idea applied to functional units. Keeping units
/// kind-homogeneous matches the module allocations the paper reports for
/// Approaches 1 and 2 (separate `(*)`, `(+)`, `(-)` units; only the
/// CAMAD and integrated flows create mixed `(±)` ALUs via mergers).
///
/// Returns module groups (each inner vector shares one unit).
///
/// # Example
///
/// ```
/// use hlts_dfg::parse;
/// use hlts_sched::{list_schedule, ListPriority};
/// use hlts_alloc::greedy_module_allocation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = parse("dfg t { input a, b;
///     N1: x = a * b; N2: y = x * b; N3: z = x + y; output z; }")?;
/// let s = list_schedule(&dfg, &[], ListPriority::CriticalPath)?;
/// let groups = greedy_module_allocation(&dfg, &s);
/// // the two sequential muls share one multiplier; the add has its own unit
/// assert_eq!(groups.len(), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn greedy_module_allocation(dfg: &Dfg, schedule: &Schedule) -> Vec<Vec<OpId>> {
    /// One functional unit under construction: its operations and the
    /// control steps they occupy.
    type Unit = (Vec<OpId>, Vec<usize>);
    let mut units: BTreeMap<OpKind, Vec<Unit>> = BTreeMap::new();
    let mut ops: Vec<OpId> = dfg.ops().iter().map(|o| o.id()).collect();
    ops.sort_by_key(|&o| (schedule.step_of(o), o.index()));
    for op in ops {
        let kind = dfg.op(op).kind();
        let step = schedule.step_of(op);
        let list = units.entry(kind).or_default();
        match list.iter_mut().find(|(_, steps)| !steps.contains(&step)) {
            Some((unit, steps)) => {
                unit.push(op);
                steps.push(step);
            }
            None => list.push((vec![op], vec![step])),
        }
    }
    units
        .into_values()
        .flatten()
        .map(|(unit, _)| unit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::DfgBuilder;
    use hlts_sched::Schedule;

    #[test]
    fn parallel_same_kind_ops_get_distinct_units() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        for i in 0..3 {
            b.op(&format!("N{i}"), OpKind::Add, &[a, c], &format!("t{i}"))
                .unwrap();
        }
        let d = b.finish().unwrap();
        let s = Schedule::from_step_vec(vec![0, 0, 1]);
        let groups = greedy_module_allocation(&d, &s);
        // two adds in step 0 need two adders; the third reuses one.
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn kinds_are_not_mixed() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        b.op("N2", OpKind::Sub, &[a, c], "t2").unwrap();
        let d = b.finish().unwrap();
        let s = Schedule::from_step_vec(vec![0, 1]);
        let groups = greedy_module_allocation(&d, &s);
        // although add/sub could share an ALU, the baseline keeps them apart
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn covers_every_op_once() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Mul, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[t1, c], "t2").unwrap();
        b.op("N3", OpKind::Add, &[t1, t2], "t3").unwrap();
        let d = b.finish().unwrap();
        let s = Schedule::from_step_vec(vec![0, 1, 2]);
        let groups = greedy_module_allocation(&d, &s);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        // both muls share one multiplier
        assert!(groups.iter().any(|g| g.len() == 2));
    }
}
