//! Left-edge register allocation, classic and Lee-style.

use hlts_dfg::{Dfg, ValueId, ValueKind};
use hlts_sched::Lifetimes;

/// Classic left-edge register allocation: values sorted by increasing
/// birth are packed first-fit into registers, yielding the minimum
/// register count for the given lifetimes.
///
/// Returns register groups (each inner vector shares one register).
/// Constants and condition flags occupy no register and are absent.
///
/// # Example
///
/// ```
/// use hlts_dfg::parse;
/// use hlts_sched::{list_schedule, Lifetimes, ListPriority};
/// use hlts_alloc::left_edge_registers;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = parse("dfg t { input a, b; N1: t = a + b; N2: y = t * b; output y; }")?;
/// let s = list_schedule(&dfg, &[], ListPriority::CriticalPath)?;
/// let lt = Lifetimes::compute(&dfg, &s);
/// let groups = left_edge_registers(&dfg, &lt);
/// // 4 data values fit in fewer than 4 registers thanks to disjoint lifetimes
/// assert!(groups.len() < 4);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn left_edge_registers(dfg: &Dfg, lifetimes: &Lifetimes) -> Vec<Vec<ValueId>> {
    let _ = dfg;
    let mut groups: Vec<Vec<ValueId>> = Vec::new();
    for v in lifetimes.register_values() {
        // first register every occupant of which is lifetime-disjoint
        // (the pairwise check also covers loop-copy slots)
        match (0..groups.len()).find(|&g| groups[g].iter().all(|&m| lifetimes.disjoint(v, m))) {
            Some(g) => groups[g].push(v),
            None => groups.push(vec![v]),
        }
    }
    groups
}

/// Lee, Wolf & Jha's testability-aware register allocation (their rule 1:
/// *"whenever possible, allocate a register to at least one primary input
/// or primary output variable"*).
///
/// Primary-input and primary-output variables are placed first (left-edge
/// among themselves), seeding the register set with externally
/// controllable/observable registers; the remaining variables are then
/// packed first-fit into those seeded registers, opening new registers
/// only when no seeded register is lifetime-compatible. The register
/// count matches the left-edge minimum whenever the seeds allow it.
#[must_use]
pub fn lee_register_allocation(dfg: &Dfg, lifetimes: &Lifetimes) -> Vec<Vec<ValueId>> {
    let is_pio = |v: ValueId| matches!(dfg.value(v).kind(), ValueKind::Input | ValueKind::Output);
    let mut groups: Vec<Vec<ValueId>> = Vec::new();
    let all = lifetimes.register_values();
    for pass in 0..2 {
        for &v in &all {
            if (pass == 0) != is_pio(v) {
                continue;
            }
            match (0..groups.len()).find(|&g| groups[g].iter().all(|&m| lifetimes.disjoint(v, m))) {
                Some(g) => groups[g].push(v),
                None => groups.push(vec![v]),
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_sched::{list_schedule, ListPriority, Schedule};

    /// Chain a -> t1 -> t2 -> y: lifetimes mostly disjoint.
    fn chain() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Add, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Add, &[t1, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Add, &[t2, c], "y").unwrap();
        b.mark_output(y);
        let d = b.finish().unwrap();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        (d, s)
    }

    #[test]
    fn left_edge_packs_chain() {
        let (d, s) = chain();
        let lt = Lifetimes::compute(&d, &s);
        let groups = left_edge_registers(&d, &lt);
        // a dies step 0; t1 born 1 dies 1; t2 born 2 dies 2; y born 3.
        // a,t1,t2,y can share one register; c needs its own.
        assert_eq!(groups.len(), 2, "{groups:?}");
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn left_edge_groups_are_disjoint_lifetimes() {
        let (d, s) = chain();
        let lt = Lifetimes::compute(&d, &s);
        for g in left_edge_registers(&d, &lt) {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    assert!(lt.disjoint(a, b));
                }
            }
        }
    }

    #[test]
    fn left_edge_matches_max_live_lower_bound() {
        let (d, s) = chain();
        let lt = Lifetimes::compute(&d, &s);
        let groups = left_edge_registers(&d, &lt);
        assert!(groups.len() >= lt.max_live().min(groups.len()));
        // left-edge is optimal for interval graphs:
        assert_eq!(groups.len(), lt.max_live());
    }

    #[test]
    fn lee_every_register_has_pio_when_possible() {
        let (d, s) = chain();
        let lt = Lifetimes::compute(&d, &s);
        let groups = lee_register_allocation(&d, &lt);
        for g in &groups {
            let has_pio = g.iter().any(|&v| {
                matches!(
                    d.value(v).kind(),
                    hlts_dfg::ValueKind::Input | hlts_dfg::ValueKind::Output
                )
            });
            assert!(has_pio, "register {g:?} lacks a PI/PO seed");
        }
    }

    #[test]
    fn lee_groups_are_legal() {
        let (d, s) = chain();
        let lt = Lifetimes::compute(&d, &s);
        for g in lee_register_allocation(&d, &lt) {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    assert!(lt.disjoint(a, b));
                }
            }
        }
    }

    #[test]
    fn lee_covers_all_register_values() {
        let (d, s) = chain();
        let lt = Lifetimes::compute(&d, &s);
        let n: usize = lee_register_allocation(&d, &lt).iter().map(Vec::len).sum();
        assert_eq!(n, lt.register_values().len());
    }
}
