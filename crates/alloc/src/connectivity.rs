//! Connectivity/closeness-driven merging — the allocation style of the
//! CAMAD high-level synthesis system (Peng & Kuchcinski, TCAD 1994),
//! which the paper uses as its no-testability baseline.
//!
//! "Conventional allocation approaches often select and merge the data
//! path nodes according to their connectivity or closeness, which aims to
//! minimize interconnections and multiplexors" (paper, §3). This module
//! scores candidate mergers by exactly that objective and provides a
//! standalone fixed-schedule merger; the full CAMAD baseline (which also
//! reschedules) lives in `hlts-core`'s baseline driver and reuses these
//! scores.

use hlts_dfg::{Dfg, OpId, ValueId};
use hlts_sched::Lifetimes;

use crate::{Allocation, ModuleId, RegisterId};

/// Tuning knobs for connectivity scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityParams {
    /// Cost per 2-to-1 multiplexer a merger introduces.
    pub mux_penalty: f64,
    /// Bonus per shared source/sink connection a merger saves.
    pub share_bonus: f64,
    /// Whether register mergers are considered at all. CAMAD-style flows
    /// often keep one register per variable (as the paper's CAMAD rows
    /// show for Ex and Dct) because register sharing buys little
    /// interconnect and costs muxes.
    pub merge_registers: bool,
}

impl Default for ConnectivityParams {
    fn default() -> Self {
        ConnectivityParams {
            mux_penalty: 1.0,
            share_bonus: 2.0,
            merge_registers: true,
        }
    }
}

/// Connectivity gain of merging two modules: saved interconnect (shared
/// input-port sources and shared output sinks) minus the muxes the merge
/// introduces. Positive means the merge reduces wiring.
#[must_use]
pub fn module_merge_gain(
    dfg: &Dfg,
    alloc: &Allocation,
    params: &ConnectivityParams,
    a: ModuleId,
    b: ModuleId,
) -> f64 {
    let (ma, mb) = match (alloc.module(a), alloc.module(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return f64::NEG_INFINITY,
    };
    let max_arity = ma
        .ops()
        .iter()
        .chain(mb.ops())
        .map(|&o| dfg.op(o).inputs().len())
        .max()
        .unwrap_or(0);
    let mut shared = 0usize;
    let mut muxes = 0usize;
    for port in 0..max_arity {
        let src = |ops: &[OpId]| -> Vec<Option<RegisterId>> {
            let mut v: Vec<Option<RegisterId>> = ops
                .iter()
                .filter_map(|&o| dfg.op(o).inputs().get(port).copied())
                .map(|val| alloc.register_of(val))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let sa = src(ma.ops());
        let sb = src(mb.ops());
        shared += sa.iter().filter(|s| sb.contains(s)).count();
        let mut union = sa.clone();
        for s in &sb {
            if !union.contains(s) {
                union.push(*s);
            }
        }
        // a merged port needs (|union| - 1) 2:1 muxes; separately the two
        // ports needed (|sa|-1) + (|sb|-1).
        let before = sa.len().saturating_sub(1) + sb.len().saturating_sub(1);
        muxes += union.len().saturating_sub(1).saturating_sub(before);
    }
    // shared output sinks: registers written by both modules
    let sinks = |ops: &[OpId]| -> Vec<RegisterId> {
        let mut v: Vec<RegisterId> = ops
            .iter()
            .filter_map(|&o| dfg.op(o).output())
            .filter_map(|val| alloc.register_of(val))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let ka = sinks(ma.ops());
    let kb = sinks(mb.ops());
    let shared_sinks = ka.iter().filter(|s| kb.contains(s)).count();
    params.share_bonus * (shared + shared_sinks) as f64 - params.mux_penalty * muxes as f64
}

/// Connectivity gain of merging two registers: saved interconnect
/// (shared producer modules and shared consumer module ports) minus
/// introduced muxes.
#[must_use]
pub fn register_merge_gain(
    dfg: &Dfg,
    alloc: &Allocation,
    params: &ConnectivityParams,
    a: RegisterId,
    b: RegisterId,
) -> f64 {
    let (ra, rb) = match (alloc.register(a), alloc.register(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return f64::NEG_INFINITY,
    };
    let producers = |vals: &[ValueId]| -> Vec<Option<ModuleId>> {
        let mut v: Vec<Option<ModuleId>> = vals
            .iter()
            .map(|&val| dfg.def_of(val).map(|o| alloc.module_of(o)))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let consumers = |vals: &[ValueId]| -> Vec<(ModuleId, usize)> {
        let mut v: Vec<(ModuleId, usize)> = vals
            .iter()
            .flat_map(|&val| {
                dfg.uses_of(val).iter().flat_map(move |&o| {
                    dfg.op(o)
                        .inputs()
                        .iter()
                        .enumerate()
                        .filter(move |&(_, &iv)| iv == val)
                        .map(move |(port, _)| (alloc.module_of(o), port))
                })
            })
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let pa = producers(ra.values());
    let pb = producers(rb.values());
    let shared_prod = pa.iter().filter(|p| pb.contains(p)).count();
    let mut union = pa.clone();
    for p in &pb {
        if !union.contains(p) {
            union.push(*p);
        }
    }
    let muxes_before = pa.len().saturating_sub(1) + pb.len().saturating_sub(1);
    let muxes = union.len().saturating_sub(1).saturating_sub(muxes_before);
    let ca = consumers(ra.values());
    let cb = consumers(rb.values());
    let shared_cons = ca.iter().filter(|c| cb.contains(c)).count();
    params.share_bonus * (shared_prod + shared_cons) as f64 - params.mux_penalty * muxes as f64
}

/// Standalone connectivity merger under a *fixed* schedule: repeatedly
/// apply the highest positive-gain legal merger until none remains.
///
/// Module mergers require the hosted operations to occupy distinct steps;
/// register mergers require disjoint lifetimes (and are only considered
/// when [`ConnectivityParams::merge_registers`] is set).
///
/// This models a schedule-then-allocate connectivity flow; the paper's
/// CAMAD baseline, which intertwines rescheduling, is driven from
/// `hlts-core` using the same gain functions.
#[must_use]
pub fn connectivity_merge(
    dfg: &Dfg,
    schedule: &hlts_sched::Schedule,
    lifetimes: &Lifetimes,
    params: &ConnectivityParams,
) -> Allocation {
    let mut alloc = Allocation::one_to_one(dfg);
    loop {
        let mut best: Option<(f64, Candidate)> = None;
        // module pairs
        let module_ids: Vec<ModuleId> = alloc.modules().map(|m| m.id()).collect();
        for (i, &a) in module_ids.iter().enumerate() {
            for &b in &module_ids[i + 1..] {
                if !modules_step_compatible(dfg, &alloc, schedule, a, b)
                    || !modules_kind_compatible(dfg, &alloc, a, b)
                {
                    continue;
                }
                let gain = module_merge_gain(dfg, &alloc, params, a, b);
                if gain > 0.0 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, Candidate::Modules(a, b)));
                }
            }
        }
        if params.merge_registers {
            let reg_ids: Vec<RegisterId> = alloc.registers().map(|r| r.id()).collect();
            for (i, &a) in reg_ids.iter().enumerate() {
                for &b in &reg_ids[i + 1..] {
                    if !registers_lifetime_compatible(&alloc, lifetimes, a, b) {
                        continue;
                    }
                    let gain = register_merge_gain(dfg, &alloc, params, a, b);
                    if gain > 0.0 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((gain, Candidate::Registers(a, b)));
                    }
                }
            }
        }
        match best {
            Some((_, Candidate::Modules(a, b))) => {
                alloc
                    .merge_modules(dfg, a, b)
                    .expect("candidate pre-checked");
            }
            Some((_, Candidate::Registers(a, b))) => {
                alloc
                    .merge_registers_checked(dfg, lifetimes, a, b)
                    .expect("candidate pre-checked");
            }
            None => break,
        }
    }
    alloc
}

enum Candidate {
    Modules(ModuleId, ModuleId),
    Registers(RegisterId, RegisterId),
}

/// Whether all cross pairs of the two modules' operations sit in distinct
/// steps of `schedule`.
pub(crate) fn modules_step_compatible(
    _dfg: &Dfg,
    alloc: &Allocation,
    schedule: &hlts_sched::Schedule,
    a: ModuleId,
    b: ModuleId,
) -> bool {
    let (ma, mb) = match (alloc.module(a), alloc.module(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return false,
    };
    for &oa in ma.ops() {
        for &ob in mb.ops() {
            if schedule.step_of(oa) == schedule.step_of(ob) {
                return false;
            }
        }
    }
    true
}

pub(crate) fn modules_kind_compatible(
    dfg: &Dfg,
    alloc: &Allocation,
    a: ModuleId,
    b: ModuleId,
) -> bool {
    let (ma, mb) = match (alloc.module(a), alloc.module(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return false,
    };
    ma.ops().iter().all(|&oa| {
        mb.ops().iter().all(|&ob| {
            dfg.op(oa)
                .kind()
                .fu_class()
                .compatible(dfg.op(ob).kind().fu_class())
        })
    })
}

pub(crate) fn registers_lifetime_compatible(
    alloc: &Allocation,
    lifetimes: &Lifetimes,
    a: RegisterId,
    b: RegisterId,
) -> bool {
    let (ra, rb) = match (alloc.register(a), alloc.register(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return false,
    };
    ra.values()
        .iter()
        .all(|&va| rb.values().iter().all(|&vb| lifetimes.disjoint(va, vb)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlts_dfg::{DfgBuilder, OpKind};
    use hlts_sched::{list_schedule, ListPriority};

    /// Two sequential muls reading the same register pair — the canonical
    /// profitable connectivity merge.
    fn sequential_muls() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t1 = b.op("N1", OpKind::Mul, &[a, c], "t1").unwrap();
        let t2 = b.op("N2", OpKind::Mul, &[a, c], "t2").unwrap();
        let y = b.op("N3", OpKind::Add, &[t1, t2], "y").unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn shared_sources_give_positive_gain() {
        let d = sequential_muls();
        let alloc = Allocation::one_to_one(&d);
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let g = module_merge_gain(
            &d,
            &alloc,
            &ConnectivityParams::default(),
            alloc.module_of(n1),
            alloc.module_of(n2),
        );
        assert!(g > 0.0, "gain {g}");
    }

    #[test]
    fn disjoint_sources_give_nonpositive_gain() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let e = b.input("e");
        let f = b.input("f");
        b.op("N1", OpKind::Mul, &[a, c], "t1").unwrap();
        b.op("N2", OpKind::Mul, &[e, f], "t2").unwrap();
        let d = b.finish().unwrap();
        let alloc = Allocation::one_to_one(&d);
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        let g = module_merge_gain(
            &d,
            &alloc,
            &ConnectivityParams::default(),
            alloc.module_of(n1),
            alloc.module_of(n2),
        );
        assert!(g <= 0.0, "gain {g}");
    }

    #[test]
    fn merge_loop_reduces_modules_and_respects_schedule() {
        let d = sequential_muls();
        // force the two muls into different steps so the merge is legal
        let mut d2 = d.clone();
        let n1 = d2.op_by_name("N1").unwrap();
        let n2 = d2.op_by_name("N2").unwrap();
        d2.add_precedence(n1, n2).unwrap();
        let s = list_schedule(&d2, &[], ListPriority::CriticalPath).unwrap();
        let lt = Lifetimes::compute(&d2, &s);
        let alloc = connectivity_merge(&d2, &s, &lt, &ConnectivityParams::default());
        assert!(alloc.num_modules() < 3);
        alloc.validate(&d2, &s, &lt).unwrap();
    }

    #[test]
    fn same_step_modules_never_merge() {
        let d = sequential_muls();
        let s = list_schedule(&d, &[], ListPriority::CriticalPath).unwrap();
        // N1, N2 share step 0 under ASAP
        assert_eq!(s.step_of(d.op_by_name("N1").unwrap()), 0);
        assert_eq!(s.step_of(d.op_by_name("N2").unwrap()), 0);
        let lt = Lifetimes::compute(&d, &s);
        let alloc = connectivity_merge(&d, &s, &lt, &ConnectivityParams::default());
        let n1 = d.op_by_name("N1").unwrap();
        let n2 = d.op_by_name("N2").unwrap();
        assert_ne!(alloc.module_of(n1), alloc.module_of(n2));
        alloc.validate(&d, &s, &lt).unwrap();
    }

    #[test]
    fn register_gain_counts_shared_producers() {
        let d = sequential_muls();
        let mut d2 = d;
        let n1 = d2.op_by_name("N1").unwrap();
        let n2 = d2.op_by_name("N2").unwrap();
        d2.add_precedence(n1, n2).unwrap();
        let s = list_schedule(&d2, &[], ListPriority::CriticalPath).unwrap();
        let lt = Lifetimes::compute(&d2, &s);
        let mut alloc = Allocation::one_to_one(&d2);
        // merge the two mul modules first so t1/t2 share a producer
        alloc
            .merge_modules(&d2, alloc.module_of(n1), alloc.module_of(n2))
            .unwrap();
        let t1 = d2.value_by_name("t1").unwrap();
        let t2 = d2.value_by_name("t2").unwrap();
        let g = register_merge_gain(
            &d2,
            &alloc,
            &ConnectivityParams::default(),
            alloc.register_of(t1).unwrap(),
            alloc.register_of(t2).unwrap(),
        );
        assert!(g > 0.0, "gain {g}");
        let _ = (s, lt);
    }

    #[test]
    fn no_register_merging_when_disabled() {
        let d = sequential_muls();
        let mut d2 = d;
        let n1 = d2.op_by_name("N1").unwrap();
        let n2 = d2.op_by_name("N2").unwrap();
        d2.add_precedence(n1, n2).unwrap();
        let s = list_schedule(&d2, &[], ListPriority::CriticalPath).unwrap();
        let lt = Lifetimes::compute(&d2, &s);
        let params = ConnectivityParams {
            merge_registers: false,
            ..ConnectivityParams::default()
        };
        let alloc = connectivity_merge(&d2, &s, &lt, &params);
        // one register per data value, untouched
        assert_eq!(alloc.num_registers(), 5);
    }
}
