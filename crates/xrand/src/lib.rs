//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! crate provides the (small) API subset hlts actually uses under the
//! same paths: [`rngs::StdRng`], [`Rng`], [`SeedableRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid for test-pattern generation and
//! fault sampling, deterministic across platforms, and dependency-free.
//!
//! This is **not** a drop-in reimplementation of `rand` semantics:
//! stream values differ from the real `StdRng` (which is ChaCha-based).
//! Everything in-tree treats the RNG as an arbitrary deterministic
//! stream, so only reproducibility within this workspace matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A core source of randomness: the `rand_core::RngCore` subset.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `T` from an RNG — the subset of
/// `rand::distributions::Standard` behavior hlts uses.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `[low, high)`; mirrors
    /// `rand::Rng::gen_range(low..high)` for `usize` bounds.
    ///
    /// # Panics
    ///
    /// Panics on an empty (or reversed) range, naming the offending
    /// bounds.
    fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(
            range.start < range.end,
            "gen_range over empty range {}..{}",
            range.start,
            range.end
        );
        let span = range.end - range.start;
        // Lemire-style rejection-free enough for test use: modulo bias is
        // negligible for span << 2^64.
        range.start + (self.next_u64() % span as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to id");
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_extremes_hold_for_every_seed_offset() {
        // p = 0.0 can never fire (samples are in [0, 1)) and p = 1.0
        // always fires, regardless of where in the stream we are.
        for seed in [0, 1, u64::MAX] {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                assert!(!rng.clone().gen_bool(0.0));
                assert!(rng.gen_bool(1.0));
            }
        }
    }

    /// Pinned stream values: the generator is pure integer arithmetic,
    /// so these hold on every platform and toolchain. Seeded workload
    /// generation depends on this — a drifting stream would silently
    /// change every generated graph.
    #[test]
    fn seed_42_stream_is_pinned_across_platforms() {
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(
            got,
            vec![
                0x1578_0b2e_0c2e_c716,
                0x6104_d986_6d11_3a7e,
                0xae17_5332_39e4_99a1,
                0xecb8_ad47_03b3_60a1,
            ]
        );
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(10..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    #[should_panic(expected = "gen_range over empty range 7..7")]
    fn gen_range_empty_range_names_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(7..7);
    }

    #[test]
    #[should_panic(expected = "gen_range over empty range 9..3")]
    fn gen_range_reversed_range_names_bounds() {
        // Before the bounds check preceded the span subtraction, a
        // reversed range underflowed instead of reporting itself.
        let mut rng = StdRng::seed_from_u64(0);
        #[allow(clippy::reversed_empty_ranges)]
        let _ = rng.gen_range(9..3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
