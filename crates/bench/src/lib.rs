//! # hlts-bench — the experiment harness
//!
//! Shared plumbing for the table/figure regeneration binaries (see
//! `src/bin/`) and the Criterion benches: running all four synthesis
//! flows on a benchmark, elaborating the results to gates and measuring
//! the paper's columns (fault coverage, test-generation effort, applied
//! test cycles, area).
//!
//! Binaries (one per table/figure of the paper):
//!
//! * `table1_ex`, `table2_dct`, `table3_diffeq` — Tables 1–3;
//! * `figure2_ex_schedule`, `figure3_schedules` — Figures 2–3;
//! * `param_sweep` — the paper's (k, α, β) insensitivity claim.
//!
//! Set `HLTS_QUICK=1` to shrink the fault sample and pattern budget for
//! a fast smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hlts_atpg::{AtpgConfig, TestGenerator, TestReport};
use hlts_core::{baselines, CoreError, IntegratedSynthesizer, SynthesisParams, SynthesisResult};
use hlts_dfg::Dfg;
use hlts_etpn::Etpn;
use hlts_netlist::elaborate;

/// The four synthesis flows of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// CAMAD-style connectivity synthesis (no testability).
    Camad,
    /// Force-directed scheduling + Lee allocation.
    Approach1,
    /// Mobility-path scheduling + modified left-edge allocation.
    Approach2,
    /// The integrated algorithm (this paper).
    Ours,
}

impl Flow {
    /// All flows in the tables' row order.
    #[must_use]
    pub fn all() -> [Flow; 4] {
        [Flow::Camad, Flow::Approach1, Flow::Approach2, Flow::Ours]
    }

    /// Row label used in the tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Flow::Camad => "CAMAD",
            Flow::Approach1 => "Approach 1",
            Flow::Approach2 => "Approach 2",
            Flow::Ours => "Ours",
        }
    }

    /// Run the flow on `dfg` at the given bit width (the width selects
    /// the paper's (k, α, β) parameter set for "Ours").
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures (none occur on the shipped
    /// benchmarks).
    pub fn run(self, dfg: &Dfg, bits: u32) -> Result<SynthesisResult, CoreError> {
        let p = SynthesisParams::paper_defaults(bits);
        match self {
            Flow::Camad => {
                // area-optimized configuration, as the paper's
                // "area-optimized benchmark" rows
                let camad_p = SynthesisParams {
                    alpha: 0.1,
                    beta: 10.0,
                    ..p
                };
                baselines::camad(dfg, &camad_p)
            }
            Flow::Approach1 => baselines::approach1(dfg, &p),
            Flow::Approach2 => baselines::approach2(dfg, &p),
            Flow::Ours => IntegratedSynthesizer::new(p).run(dfg),
        }
    }
}

/// One table cell set: a synthesized design measured at one bit width.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Synthesis output (schedule, allocation, structural metrics).
    pub result: SynthesisResult,
    /// ATPG outcome.
    pub report: TestReport,
    /// Gate count of the elaborated netlist.
    pub gates: usize,
}

/// Whether quick mode is enabled (`HLTS_QUICK=1`).
#[must_use]
pub fn quick() -> bool {
    std::env::var("HLTS_QUICK").is_ok_and(|v| v == "1")
}

/// The ATPG configuration used by all tables: the random phase walks
/// the schedule protocol; fault sampling keeps 16-bit runs tractable.
#[must_use]
pub fn table_atpg_config(steps: usize, bits: u32) -> AtpgConfig {
    let q = quick();
    AtpgConfig {
        sequence_cycles: (steps + 1) * 2,
        random_sequences: if q { 6 } else { 16 },
        frames: steps + 3,
        fault_sample: Some(if q {
            500
        } else if bits >= 16 {
            1500
        } else {
            2000
        }),
        max_deterministic_targets: if q { 40 } else { 200 },
        ..AtpgConfig::default()
    }
}

/// Synthesize with `flow` and measure fault coverage / effort / cycles
/// at `bits`.
///
/// # Errors
///
/// Propagates synthesis and elaboration failures.
pub fn measure(
    flow: Flow,
    dfg: &Dfg,
    bits: u32,
) -> Result<Measurement, Box<dyn std::error::Error>> {
    let result = flow.run(dfg, bits)?;
    let etpn = Etpn::from_parts(&result.dfg, &result.schedule, &result.allocation)?;
    let nl = elaborate(
        &result.dfg,
        &result.schedule,
        &result.allocation,
        &etpn,
        bits,
    )?;
    let cfg = table_atpg_config(result.schedule.num_steps(), bits);
    let report = TestGenerator::new(cfg).run(&nl);
    Ok(Measurement {
        gates: nl.num_gates(),
        result,
        report,
    })
}

/// Print one of the paper's tables (Tables 1–3) for `dfg`: per flow the
/// module/register allocation, mux count, and per bit width the fault
/// coverage, test-generation effort, test cycles and area.
///
/// # Panics
///
/// Panics if a flow fails on the benchmark (they do not).
pub fn print_table(title: &str, dfg: &Dfg, with_area: bool) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    let widths: &[u32] = if quick() { &[4, 8] } else { &[4, 8, 16] };
    for flow in Flow::all() {
        let shape = flow.run(dfg, 8).expect("synthesis succeeds");
        println!("\n--- {} ---", flow.label());
        print!("{}", shape.allocation.render(&shape.dfg));
        println!(
            "#Mux = {}   E = {} steps   registers = {}   modules = {}",
            shape.metrics.mux_count,
            shape.metrics.execution_time,
            shape.metrics.num_registers,
            shape.metrics.num_modules,
        );
        if with_area {
            println!(
                "{:>5} {:>9} {:>10} {:>12} {:>10} {:>10}",
                "#Bit", "Fault cov", "TG effort", "TG wall [ms]", "Test cyc", "Area"
            );
        } else {
            println!(
                "{:>5} {:>9} {:>10} {:>12} {:>10}",
                "#Bit", "Fault cov", "TG effort", "TG wall [ms]", "Test cyc"
            );
        }
        for &bits in widths {
            let m = measure(flow, dfg, bits).expect("measurement succeeds");
            if with_area {
                println!(
                    "{:>5} {:>8.2}% {:>10.0} {:>12.0} {:>10} {:>10.3}",
                    bits,
                    m.report.coverage(),
                    m.report.effort(),
                    m.report.wall.as_millis(),
                    m.report.test_cycles,
                    m.result.metrics.hardware.total(),
                );
            } else {
                println!(
                    "{:>5} {:>8.2}% {:>10.0} {:>12.0} {:>10}",
                    bits,
                    m.report.coverage(),
                    m.report.effort(),
                    m.report.wall.as_millis(),
                    m.report.test_cycles,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_flows_run_on_tseng() {
        let dfg = hlts_benchmarks::tseng();
        for flow in Flow::all() {
            let r = flow.run(&dfg, 8).unwrap();
            r.schedule.validate(&r.dfg).unwrap();
        }
    }

    #[test]
    fn measure_produces_consistent_report() {
        let dfg = hlts_benchmarks::tseng();
        std::env::set_var("HLTS_QUICK", "1");
        let m = measure(Flow::Ours, &dfg, 4).unwrap();
        assert!(m.gates > 0);
        assert!(m.report.coverage() > 30.0);
        std::env::remove_var("HLTS_QUICK");
    }
}
