//! The benchmarks the paper evaluated but omitted "due to the space
//! limitation": EWF, Paulin and Tseng, measured at 8 bit in the same
//! row format as Tables 1–3.

use hlts_atpg::TestGenerator;
use hlts_bench::{table_atpg_config, Flow};
use hlts_etpn::Etpn;
use hlts_netlist::elaborate;

fn main() {
    let bits = 8;
    println!("Unprinted benchmarks (EWF, Paulin, Tseng) at {bits}-bit");
    println!(
        "{:<8} {:<11} {:>3} {:>4} {:>4} {:>5} {:>9} {:>9} {:>7} {:>8}",
        "bench", "flow", "E", "mod", "reg", "mux", "coverage", "effort", "cycles", "area"
    );
    for (name, dfg) in [
        ("ewf", hlts_benchmarks::ewf()),
        ("paulin", hlts_benchmarks::paulin()),
        ("tseng", hlts_benchmarks::tseng()),
    ] {
        for flow in Flow::all() {
            let r = flow.run(&dfg, bits).expect("synthesis succeeds");
            let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation).expect("lowerable");
            let nl =
                elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, bits).expect("elaborates");
            let cfg = table_atpg_config(r.schedule.num_steps(), bits);
            let rep = TestGenerator::new(cfg).run(&nl);
            println!(
                "{:<8} {:<11} {:>3} {:>4} {:>4} {:>5} {:>8.2}% {:>9.0} {:>7} {:>8.3}",
                name,
                flow.label(),
                r.metrics.execution_time,
                r.metrics.num_modules,
                r.metrics.num_registers,
                r.metrics.mux_count,
                rep.coverage(),
                rep.effort(),
                rep.test_cycles,
                r.metrics.hardware.total(),
            );
        }
    }
}
