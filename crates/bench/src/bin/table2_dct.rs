//! Regenerates **Table 2**: experimental results on the area-optimized
//! Dct benchmark (Table 1's columns plus area).

fn main() {
    let dfg = hlts_benchmarks::dct();
    hlts_bench::print_table(
        "Table 2: experimental results on the area-optimized Dct benchmark",
        &dfg,
        true,
    );
}
