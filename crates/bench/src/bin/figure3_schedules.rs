//! Regenerates **Figure 3**: the schedules the integrated synthesis
//! algorithm produces for the Dct (3a) and Diffeq (3b) benchmarks.

use hlts_bench::Flow;

fn main() {
    for (fig, name, dfg) in [
        ("Figure 3(a)", "Dct", hlts_benchmarks::dct()),
        ("Figure 3(b)", "Diffeq", hlts_benchmarks::diffeq()),
    ] {
        let r = Flow::Ours.run(&dfg, 8).expect("synthesis succeeds");
        println!("{fig}: the schedule for the {name} benchmark");
        println!();
        print!("{}", r.schedule.render(&r.dfg));
        println!();
        println!("sharing groups:");
        print!("{}", r.allocation.render(&r.dfg));
        println!();
    }
}
