//! Regenerates **Table 3**: experimental results on the area-optimized
//! Diffeq benchmark (Table 1's columns plus area).

fn main() {
    let dfg = hlts_benchmarks::diffeq();
    hlts_bench::print_table(
        "Table 3: experimental results on the area-optimized Diffeq benchmark",
        &dfg,
        true,
    );
}
