//! Ablation: the paper's parameter-insensitivity observation — "it
//! seems that the chosen parameters do not influence so much the final
//! results" — checked by sweeping k ∈ {1, 3, 5} and (α, β) ∈
//! {(2,1), (10,1), (1,10)} on the three table benchmarks and reporting
//! the resulting design shapes.

use hlts_core::{IntegratedSynthesizer, SynthesisParams};

fn main() {
    println!("Parameter sweep: k x (alpha, beta) -> design shape (8-bit costing)");
    for (name, dfg) in [
        ("ex", hlts_benchmarks::ex()),
        ("dct", hlts_benchmarks::dct()),
        ("diffeq", hlts_benchmarks::diffeq()),
    ] {
        println!("\n== {name} ==");
        println!(
            "{:>3} {:>7} {:>6} {:>5} {:>5} {:>5} {:>8} {:>7}",
            "k", "alpha", "beta", "E", "mod", "reg", "mux", "H"
        );
        for k in [1usize, 3, 5] {
            for (alpha, beta) in [(2.0, 1.0), (10.0, 1.0), (1.0, 10.0)] {
                let params = SynthesisParams {
                    k,
                    alpha,
                    beta,
                    ..SynthesisParams::default()
                };
                let r = IntegratedSynthesizer::new(params)
                    .run(&dfg)
                    .expect("synthesis succeeds");
                println!(
                    "{:>3} {:>7.1} {:>6.1} {:>5} {:>5} {:>5} {:>8} {:>7.3}",
                    k,
                    alpha,
                    beta,
                    r.metrics.execution_time,
                    r.metrics.num_modules,
                    r.metrics.num_registers,
                    r.metrics.mux_count,
                    r.metrics.hardware.total(),
                );
            }
        }
    }
}
