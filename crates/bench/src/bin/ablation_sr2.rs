//! Ablation (beyond the paper's tables): how much do the paper's two
//! testability mechanisms contribute? Four arms per benchmark:
//! the full algorithm ("paper"), SR2 ordering replaced by critical-path
//! ordering ("no-SR2", ablating §4.3), balance-ranked candidate
//! selection replaced by arbitrary order ("no-balance", ablating §3),
//! and both ablated ("neither"). Every arm is elaborated and
//! fault-graded.

use hlts_atpg::TestGenerator;
use hlts_bench::table_atpg_config;
use hlts_core::{IntegratedSynthesizer, OrderStrategy, SelectionPolicy, SynthesisParams};
use hlts_etpn::Etpn;
use hlts_netlist::elaborate;

fn main() {
    let bits = 8;
    println!("SR2 ablation at {bits}-bit (paper parameters)");
    println!(
        "{:<8} {:<14} {:>2} {:>4} {:>4} {:>9} {:>9} {:>8}",
        "bench", "ordering", "E", "mod", "reg", "depth", "coverage", "effort"
    );
    for (name, dfg) in [
        ("ex", hlts_benchmarks::ex()),
        ("dct", hlts_benchmarks::dct()),
        ("diffeq", hlts_benchmarks::diffeq()),
        ("tseng", hlts_benchmarks::tseng()),
    ] {
        for (label, strategy, selection) in [
            (
                "paper",
                OrderStrategy::CoEnhancement,
                SelectionPolicy::CoBalance,
            ),
            (
                "no-SR2",
                OrderStrategy::CriticalPath,
                SelectionPolicy::CoBalance,
            ),
            (
                "no-balance",
                OrderStrategy::CoEnhancement,
                SelectionPolicy::Arbitrary,
            ),
            (
                "neither",
                OrderStrategy::CriticalPath,
                SelectionPolicy::Arbitrary,
            ),
        ] {
            let params = SynthesisParams {
                order_strategy: strategy,
                selection_policy: selection,
                ..SynthesisParams::paper_defaults(bits)
            };
            let r = IntegratedSynthesizer::new(params)
                .run(&dfg)
                .expect("synthesis succeeds");
            let etpn = Etpn::from_parts(&r.dfg, &r.schedule, &r.allocation).expect("lowerable");
            let nl =
                elaborate(&r.dfg, &r.schedule, &r.allocation, &etpn, bits).expect("elaborates");
            let cfg = table_atpg_config(r.schedule.num_steps(), bits);
            let rep = TestGenerator::new(cfg).run(&nl);
            println!(
                "{:<8} {:<14} {:>2} {:>4} {:>4} {:>9.1} {:>8.2}% {:>8.0}",
                name,
                label,
                r.metrics.execution_time,
                r.metrics.num_modules,
                r.metrics.num_registers,
                r.metrics.co_depth,
                rep.coverage(),
                rep.effort(),
            );
        }
    }
}
