//! Regenerates **Table 1**: experimental results on the area-optimized
//! Ex benchmark — four synthesis flows × {4, 8, 16}-bit implementations,
//! reporting module/register allocation, #Mux, fault coverage, test
//! generation effort and test cycles.

fn main() {
    let dfg = hlts_benchmarks::ex();
    hlts_bench::print_table(
        "Table 1: experimental results on the area-optimized Ex benchmark",
        &dfg,
        false,
    );
}
