//! Regenerates **Figure 2**: the schedule the integrated synthesis
//! algorithm produces for the Ex benchmark, with the module and
//! register sharing groups the paper annotates.

use hlts_bench::Flow;

fn main() {
    let dfg = hlts_benchmarks::ex();
    let r = Flow::Ours.run(&dfg, 8).expect("synthesis succeeds");
    println!("Figure 2: the schedule for the Ex benchmark (integrated synthesis)");
    println!();
    print!("{}", r.schedule.render(&r.dfg));
    println!();
    println!("sharing groups (cf. the paper's annotation):");
    print!("{}", r.allocation.render(&r.dfg));
    println!();
    println!("merge decisions taken:");
    for m in &r.merge_log {
        println!("  {m}");
    }
}
