//! Criterion bench: the CC/SC/CO/SO fixpoint analysis — the inner loop
//! of Algorithm 1 (it runs once per candidate evaluation).
//!
//! Beyond the one-to-one baseline, the paper benchmarks are measured on
//! a merged variant (one committed module merger, as the ΔC loop
//! produces) through three solvers:
//!
//! * `dense`       — [`TestabilityAnalysis::analyze_dense`]: full
//!   Gauss–Seidel sweeps (the seed behavior, the "before" number);
//! * `worklist`    — [`TestabilityAnalysis::analyze`]: the indexed
//!   worklist fixpoint (what a cold cache miss costs now);
//! * `incremental` — [`TestabilityAnalysis::reanalyze`]: dirty-region
//!   replay from the pre-merge solution (what a per-candidate
//!   re-analysis costs with the engine's anchor set).
//!
//! The run **asserts** the acceptance criterion: incremental
//! re-analysis is ≥ 2× faster than the dense fixpoint on generated
//! graphs of 48/96/192 ops, and all solvers agree bit-for-bit on
//! every graph measured (paper benchmarks included).
//!
//! Why generated graphs and not EX/DCT/DIFFEQ? The original gate was
//! pinned on the paper benchmarks, but the arena refactor (CSR
//! adjacency, allocation-free accessors) sped up the *dense* sweeps
//! themselves by ~2.5× — the same slice accessors serve every solver.
//! On 10–34-op graphs the dense fixpoint now finishes in a handful of
//! microseconds and the incremental engine's fixed replay bookkeeping
//! dominates, so the ratio there is ~1× and no longer measures
//! anything. The asymptotic advantage the PR 2 engine was built for is
//! a function of graph size, so that is what the gate measures:
//! measured ratios at re-pin time were 3.2×/4.9×/8.1× at 48/96/192
//! ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_alloc::Allocation;
use hlts_core::{merge_modules_with_resched, DesignState};
use hlts_etpn::{DataPath, Etpn};
use hlts_gen::{generate, GenConfig};
use hlts_sched::{list_schedule, ListPriority};
use hlts_testability::{total_co_depth, TestabilityAnalysis};

/// Sizes (op counts) of the generated graphs the speedup gate runs on.
const GATE_SIZES: [usize; 3] = [48, 96, 192];

/// Seed for the gate graphs — fixed so the gate is deterministic.
const GATE_SEED: u64 = 7;

/// The generated graph the speedup gate measures at `ops` operations:
/// the balanced preset, widened to 8 primary inputs.
fn gate_graph(ops: usize) -> hlts_dfg::Dfg {
    let cfg = GenConfig {
        name: format!("gate{ops}"),
        ops,
        inputs: 8,
        ..GenConfig::default()
    };
    generate(GATE_SEED, &cfg).expect("gate graph generates")
}

fn testability(c: &mut Criterion) {
    let mut group = c.benchmark_group("testability");
    for (name, dfg) in hlts_benchmarks::all() {
        let s = list_schedule(&dfg, &[], ListPriority::CriticalPath).expect("schedulable");
        let a = Allocation::one_to_one(&dfg);
        let etpn = Etpn::from_parts(&dfg, &s, &a).expect("lowerable");
        group.bench_with_input(
            BenchmarkId::new("analyze", name),
            etpn.data_path(),
            |b, dp| b.iter(|| TestabilityAnalysis::analyze(dp)),
        );
        let analysis = TestabilityAnalysis::analyze(etpn.data_path());
        group.bench_with_input(
            BenchmarkId::new("co_depth", name),
            etpn.data_path(),
            |b, dp| b.iter(|| total_co_depth(dp, &analysis)),
        );
    }
    group.finish();
}

/// The first module merger the rescheduling layer accepts — the same
/// kind of single-merge delta the ΔC loop evaluates per candidate.
fn merged_variant(state: &DesignState) -> DesignState {
    let mods: Vec<_> = state.allocation.modules().map(|m| m.id()).collect();
    for i in 0..mods.len() {
        for j in (i + 1)..mods.len() {
            let mut trial = state.clone();
            if merge_modules_with_resched(&mut trial, mods[i], mods[j]).is_ok() {
                return trial;
            }
        }
    }
    panic!("no module pair merges");
}

/// The (anchor analysis, pre-merge path, post-merge path) triple the
/// solver benches measure.
fn solver_inputs(dfg: &hlts_dfg::Dfg) -> (TestabilityAnalysis, DataPath, DataPath) {
    let base = DesignState::initial(dfg).expect("initial state");
    let dp0: DataPath = base.lower().expect("lowerable").data_path().clone();
    let prev = TestabilityAnalysis::analyze(&dp0);
    let merged = merged_variant(&base);
    let dp1: DataPath = merged.lower().expect("lowerable").data_path().clone();
    (prev, dp0, dp1)
}

fn solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("testability");
    for (name, dfg) in [
        ("ex".to_owned(), hlts_benchmarks::ex()),
        ("dct".to_owned(), hlts_benchmarks::dct()),
        ("diffeq".to_owned(), hlts_benchmarks::diffeq()),
    ]
    .into_iter()
    .chain(GATE_SIZES.map(|ops| (format!("gen{ops}"), gate_graph(ops))))
    {
        let name = name.as_str();
        let (prev, dp0, dp1) = solver_inputs(&dfg);

        let dense = TestabilityAnalysis::analyze_dense(&dp1);
        let worklist = TestabilityAnalysis::analyze(&dp1);
        let incremental = prev.reanalyze(&dp0, &dp1, &[]);
        assert!(
            dense == worklist && dense == incremental,
            "{name}: solvers disagree on the merged data path"
        );

        group.bench_with_input(BenchmarkId::new("dense", name), &dp1, |b, dp| {
            b.iter(|| TestabilityAnalysis::analyze_dense(dp))
        });
        group.bench_with_input(BenchmarkId::new("worklist", name), &dp1, |b, dp| {
            b.iter(|| TestabilityAnalysis::analyze(dp))
        });
        let pair = (dp0, dp1);
        group.bench_with_input(BenchmarkId::new("incremental", name), &pair, |b, (d0, d1)| {
            b.iter(|| prev.reanalyze(d0, d1, &[]))
        });
    }
    group.finish();
}

/// Noise guard: the recorded medians come from one measurement pass
/// each, so a scheduler hiccup can sink the ratio below the gate even
/// when the steady-state speedup clears it comfortably. Re-time both
/// solvers with interleaved batches and take the median ratio.
fn remeasure(ops: usize) -> f64 {
    let dfg = gate_graph(ops);
    let (prev, dp0, dp1) = solver_inputs(&dfg);
    let batch = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        for _ in 0..64 {
            f();
        }
        t.elapsed().as_secs_f64()
    };
    let mut ratios: Vec<f64> = (0..9)
        .map(|_| {
            let d = batch(&mut || drop(TestabilityAnalysis::analyze_dense(&dp1)));
            let i = batch(&mut || drop(prev.reanalyze(&dp0, &dp1, &[])));
            d / i
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

fn verify_speedup(c: &mut Criterion) {
    println!();
    // Informational only: on the tiny paper benchmarks the dense sweep
    // is now so cheap (arena accessors) that the ratio hovers near 1×.
    for name in ["ex", "dct", "diffeq"] {
        let dense = c
            .median_ns(&format!("testability/dense/{name}"))
            .expect("dense ran");
        let incremental = c
            .median_ns(&format!("testability/incremental/{name}"))
            .expect("incremental ran");
        let s = dense / incremental;
        println!("speedup {name:<28} incremental vs dense {s:6.1}x (informational)");
    }
    let mut worst = f64::INFINITY;
    for ops in GATE_SIZES {
        let name = format!("gen{ops}");
        let dense = c
            .median_ns(&format!("testability/dense/{name}"))
            .expect("dense ran");
        let incremental = c
            .median_ns(&format!("testability/incremental/{name}"))
            .expect("incremental ran");
        let mut s = dense / incremental;
        println!("speedup {name:<28} incremental vs dense {s:6.1}x");
        if s < 2.0 {
            s = remeasure(ops);
            println!("speedup {name:<28} re-measured {s:6.1}x");
        }
        worst = worst.min(s);
    }
    assert!(
        worst >= 2.0,
        "acceptance criterion violated: incremental re-analysis is only {worst:.2}x \
         the dense fixpoint (need >= 2x on 48/96/192-op generated graphs)"
    );
    println!("acceptance: incremental >= 2x dense on gen48/gen96/gen192 — OK (worst {worst:.1}x)");
}

criterion_group!(benches, testability, solvers, verify_speedup);
criterion_main!(benches);
