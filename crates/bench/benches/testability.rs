//! Criterion bench: the CC/SC/CO/SO fixpoint analysis — the inner loop
//! of Algorithm 1 (it runs once per candidate evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlts_alloc::Allocation;
use hlts_etpn::Etpn;
use hlts_sched::{list_schedule, ListPriority};
use hlts_testability::{total_co_depth, TestabilityAnalysis};

fn testability(c: &mut Criterion) {
    let mut group = c.benchmark_group("testability");
    for (name, dfg) in hlts_benchmarks::all() {
        let s = list_schedule(&dfg, &[], ListPriority::CriticalPath).expect("schedulable");
        let a = Allocation::one_to_one(&dfg);
        let etpn = Etpn::from_parts(&dfg, &s, &a).expect("lowerable");
        group.bench_with_input(
            BenchmarkId::new("analyze", name),
            etpn.data_path(),
            |b, dp| b.iter(|| TestabilityAnalysis::analyze(dp)),
        );
        let analysis = TestabilityAnalysis::analyze(etpn.data_path());
        group.bench_with_input(
            BenchmarkId::new("co_depth", name),
            etpn.data_path(),
            |b, dp| b.iter(|| total_co_depth(dp, &analysis)),
        );
    }
    group.finish();
}

criterion_group!(benches, testability);
criterion_main!(benches);
